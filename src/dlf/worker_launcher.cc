#include "src/dlf/worker_launcher.h"

#include <atomic>
#include <chrono>
#include <memory>

#include "src/common/strings.h"
#include "src/common/telemetry.h"
#include "src/dlf/rank_plan.h"

namespace maya {
namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Lowers `current` to `rank` if it is smaller (lock-free running minimum).
void FetchMin(std::atomic<int>& current, int rank) {
  int observed = current.load(std::memory_order_relaxed);
  while (rank < observed &&
         !current.compare_exchange_weak(observed, rank, std::memory_order_relaxed)) {
  }
}

}  // namespace

Result<LaunchResult> EmulateJob(const ModelConfig& model, const TrainConfig& config,
                                const ClusterSpec& cluster, const LaunchOptions& options) {
  MAYA_RETURN_IF_ERROR(config.Validate(model, cluster));
  const auto start = std::chrono::steady_clock::now();

  JobEmulation emulation(EmulationSpec{cluster});
  JobCommRegistry registry(&emulation.bootstrap());
  LaunchResult result;
  const int world = cluster.total_gpus();

  // Engines are const after construction; one instance drives every rank
  // (concurrently under a parallel launch).
  const bool is_megatron = config.framework == ParallelFramework::kMegatron &&
                           model.family != ModelFamily::kResNet;
  std::unique_ptr<MegatronEngine> megatron;
  std::unique_ptr<FsdpEngine> fsdp;
  std::unique_ptr<VisionEngine> vision;
  if (model.family == ModelFamily::kResNet) {
    vision = std::make_unique<VisionEngine>(model, config, cluster);
  } else if (is_megatron) {
    megatron = std::make_unique<MegatronEngine>(model, config, cluster);
  } else {
    fsdp = std::make_unique<FsdpEngine>(model, config, cluster);
  }

  auto register_comms = [&](int rank) {
    if (megatron != nullptr) {
      megatron->RegisterComms(rank, &registry);
    } else if (vision != nullptr) {
      vision->RegisterComms(rank, &registry);
    } else {
      fsdp->RegisterComms(rank, &registry);
    }
  };
  auto run_full_worker = [&](int rank, WorkerEmulator* worker, VirtualHostClock* clock) {
    // Per-rank cancellation checkpoint: a pending cancel/deadline aborts the
    // launch before this rank's emulation, propagating through the same
    // first-failure path an emulation error takes.
    if (Status cancelled = CheckCancel(options.cancel); !cancelled.ok()) {
      return cancelled;
    }
    if (vision != nullptr) {
      return vision->RunWorker(rank, worker, clock, &registry);
    }
    if (megatron != nullptr) {
      return megatron->RunWorker(rank, worker, clock, &registry);
    }
    return fsdp->RunWorker(rank, worker, clock, &registry);
  };
  // The pool only engages above the adaptive threshold: fan-out overhead
  // beats the work itself on small worlds (BENCH_emulation's 0.87x arm).
  ThreadPool* pool = options.emulation_pool;
  const int parallel_floor = std::max(options.min_parallel_ranks, 2);

  if (options.virtual_folds) {
    // ---- Hyperscale mode: O(unique classes) end to end -----------------------
    //
    // No per-rank plan walk, no stub emulation, no per-rank clocks: the
    // engine's analytic equivalence classes drive everything, and folded
    // ranks exist only as RankSet spans on the representative traces.
    std::vector<RankClass> classes;
    if (vision != nullptr) {
      classes = vision->EquivalenceClasses();
    } else if (megatron != nullptr) {
      classes = megatron->EquivalenceClasses();
    } else {
      classes = fsdp->EquivalenceClasses();
    }
    const int class_count = static_cast<int>(classes.size());

    // Pin communicator unique ids representative-major (ascending), the
    // order sequential emulation of the representatives would first use
    // them — so a parallel fan-out records identical comm_uids.
    for (const RankClass& cls : classes) {
      register_comms(cls.representative);
    }

    std::vector<std::unique_ptr<VirtualHostClock>> clocks;
    clocks.reserve(classes.size());
    std::vector<WorkerEmulator*> workers;
    workers.reserve(classes.size());
    for (const RankClass& cls : classes) {
      clocks.push_back(std::make_unique<VirtualHostClock>());
      workers.push_back(&emulation.CreateWorker(cls.representative, clocks.back().get(),
                                                /*full=*/true));
    }

    std::vector<Status> statuses(classes.size());
    std::atomic<int> first_failed{class_count};
    if (pool != nullptr && class_count >= parallel_floor) {
      pool->ParallelFor(classes.size(), [&](size_t index) {
        ScopedSpan span("emulate_rank", "dlf");
        if (static_cast<int>(index) > first_failed.load(std::memory_order_relaxed)) {
          return;  // a lower class already failed; sequential order is authoritative
        }
        Status status = run_full_worker(classes[index].representative, workers[index],
                                        clocks[index].get());
        if (!status.ok()) {
          FetchMin(first_failed, static_cast<int>(index));
        }
        statuses[index] = std::move(status);
      });
    } else {
      for (int index = 0; index < class_count; ++index) {
        Status status = run_full_worker(classes[static_cast<size_t>(index)].representative,
                                        workers[static_cast<size_t>(index)],
                                        clocks[static_cast<size_t>(index)].get());
        const bool failed = !status.ok();
        statuses[static_cast<size_t>(index)] = std::move(status);
        if (failed) {
          first_failed.store(index, std::memory_order_relaxed);
          break;
        }
      }
    }

    const int failed_index = first_failed.load(std::memory_order_relaxed);
    if (failed_index < class_count) {
      const Status& status = statuses[static_cast<size_t>(failed_index)];
      if (status.code() == StatusCode::kOutOfMemory) {
        // Identical outcome to the materialized path: the failing class
        // representative is the lowest full rank a sequential all-rank run
        // would have stopped at (twins OOM identically, stubs never OOM).
        result.oom = true;
        result.oom_detail =
            StrFormat("rank %d: %s", classes[static_cast<size_t>(failed_index)].representative,
                      status.message().c_str());
        for (int index = 0; index < failed_index; ++index) {
          result.total_api_calls += workers[static_cast<size_t>(index)]->stats().api_calls;
          ++result.full_workers_emulated;
        }
        result.emulation_wall_ms = WallMs(start);
        return result;
      }
      return status;
    }

    for (int index = 0; index < class_count; ++index) {
      result.total_api_calls += workers[static_cast<size_t>(index)]->stats().api_calls;
      ++result.full_workers_emulated;
    }
    result.traces = emulation.TakeTraces();
    for (WorkerTrace& trace : result.traces) {
      for (const RankClass& cls : classes) {
        if (cls.representative == trace.rank) {
          trace.represented_ranks = cls.members;
          break;
        }
      }
    }
    // Analytic communicator resolution: membership of every communicator
    // the representatives initialized, in closed form from the layout. The
    // registry maps each logical name to the uid the emulation assigned.
    for (const RankClass& cls : classes) {
      std::vector<CommSpec> specs;
      if (vision != nullptr) {
        specs = vision->DescribeComms(cls.representative);
      } else if (megatron != nullptr) {
        specs = megatron->DescribeComms(cls.representative);
      } else {
        specs = fsdp->DescribeComms(cls.representative);
      }
      for (CommSpec& spec : specs) {
        const uint64_t uid = registry.IdFor(spec.name).value;
        auto [it, inserted] = result.resolved_comms.try_emplace(uid);
        if (inserted) {
          it->second.uid = uid;
          it->second.nranks = static_cast<int32_t>(spec.members.size());
          it->second.members = std::move(spec.members);
        }
      }
    }
    result.emulation_wall_ms = WallMs(start);
    return result;
  }

  // ---- Materialized path (legacy selective launch / full emulation) ----------

  // Rank-equivalence plan: representative[r] is the fully-emulated rank
  // whose trace rank r duplicates. Computed once, reused for launch
  // selection, stub tagging and accounting.
  std::vector<int> representative(static_cast<size_t>(world), 0);
  if (is_megatron) {
    for (int rank = 0; rank < world; ++rank) {
      representative[static_cast<size_t>(rank)] = megatron->layout().RepresentativeOf(rank);
    }
  }
  std::vector<bool> full_rank(static_cast<size_t>(world), true);
  if (options.selective_launch) {
    for (int rank = 0; rank < world; ++rank) {
      full_rank[static_cast<size_t>(rank)] = representative[static_cast<size_t>(rank)] == rank;
    }
  }

  // Pre-assign communicator unique ids by replaying, rank-major, the order
  // in which sequential emulation would first use each logical group name.
  // This pins uid assignment independently of execution interleaving, so the
  // parallel fan-out below records the same comm_uids as a sequential run.
  for (int rank = 0; rank < world; ++rank) {
    register_comms(rank);
  }

  // Host clocks must outlive the emulators that reference them. Workers are
  // created up front (CreateWorker is not thread-safe); after this loop each
  // rank's emulator + clock are touched only by that rank's task.
  std::vector<std::unique_ptr<VirtualHostClock>> clocks;
  clocks.reserve(static_cast<size_t>(world));
  std::vector<WorkerEmulator*> workers;
  workers.reserve(static_cast<size_t>(world));
  for (int rank = 0; rank < world; ++rank) {
    clocks.push_back(std::make_unique<VirtualHostClock>());
    workers.push_back(&emulation.CreateWorker(rank, clocks.back().get(),
                                              full_rank[static_cast<size_t>(rank)]));
  }

  auto run_rank = [&](int rank) -> Status {
    WorkerEmulator* worker = workers[static_cast<size_t>(rank)];
    VirtualHostClock* clock = clocks[static_cast<size_t>(rank)].get();
    if (!full_rank[static_cast<size_t>(rank)]) {
      if (megatron != nullptr) {
        return megatron->RunCommInitOnly(rank, worker, clock, &registry);
      }
      if (vision != nullptr) {
        return vision->RunCommInitOnly(rank, worker, clock, &registry);
      }
      return fsdp->RunCommInitOnly(rank, worker, clock, &registry);
    }
    return run_full_worker(rank, worker, clock);
  };

  // `first_failed` is the lowest rank whose emulation returned non-OK — the
  // rank sequential execution would have stopped at.
  std::vector<Status> statuses(static_cast<size_t>(world));
  std::atomic<int> first_failed{world};

  if (pool != nullptr && world >= parallel_floor) {
    pool->ParallelFor(static_cast<size_t>(world), [&](size_t index) {
      ScopedSpan span("emulate_rank", "dlf");
      const int rank = static_cast<int>(index);
      // A lower rank already failed: sequential execution would never have
      // reached this rank, so its outcome cannot affect the result. Skipped
      // ranks keep an OK status; `first_failed` is the sole authority on
      // where the job stopped.
      if (rank > first_failed.load(std::memory_order_relaxed)) {
        return;
      }
      Status status = run_rank(rank);
      if (!status.ok()) {
        FetchMin(first_failed, rank);
      }
      statuses[index] = std::move(status);
    });
  } else {
    for (int rank = 0; rank < world; ++rank) {
      Status status = run_rank(rank);
      const bool failed = !status.ok();
      statuses[static_cast<size_t>(rank)] = std::move(status);
      if (failed) {
        first_failed.store(rank, std::memory_order_relaxed);
        break;  // sequential early exit, as in the seed
      }
    }
  }

  const int failed_rank = first_failed.load(std::memory_order_relaxed);
  if (failed_rank < world) {
    const Status& status = statuses[static_cast<size_t>(failed_rank)];
    if (status.code() == StatusCode::kOutOfMemory) {
      // The configuration does not fit: a first-class outcome (search
      // pruning, Fig. 2b OOM cells). Twin ranks would OOM identically.
      // Counters cover the ranks a sequential run completed before the OOM.
      result.oom = true;
      result.oom_detail = StrFormat("rank %d: %s", failed_rank, status.message().c_str());
      for (int rank = 0; rank < failed_rank; ++rank) {
        result.total_api_calls += workers[static_cast<size_t>(rank)]->stats().api_calls;
        if (full_rank[static_cast<size_t>(rank)]) {
          ++result.full_workers_emulated;
        }
      }
      result.emulation_wall_ms = WallMs(start);
      return result;
    }
    return status;
  }

  for (int rank = 0; rank < world; ++rank) {
    result.total_api_calls += workers[static_cast<size_t>(rank)]->stats().api_calls;
    if (full_rank[static_cast<size_t>(rank)]) {
      ++result.full_workers_emulated;
    }
  }
  result.traces = emulation.TakeTraces();
  if (options.selective_launch) {
    for (WorkerTrace& trace : result.traces) {
      if (!full_rank[static_cast<size_t>(trace.rank)]) {
        trace.comm_init_only = true;
        trace.duplicate_of = representative[static_cast<size_t>(trace.rank)];
        trace.ops.clear();  // bootstrap host noise is not part of the job trace
      }
    }
  }
  result.emulation_wall_ms = WallMs(start);
  return result;
}

}  // namespace maya
