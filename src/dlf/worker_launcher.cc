#include "src/dlf/worker_launcher.h"

#include <chrono>
#include <memory>

#include "src/common/strings.h"

namespace maya {
namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<LaunchResult> EmulateJob(const ModelConfig& model, const TrainConfig& config,
                                const ClusterSpec& cluster, const LaunchOptions& options) {
  MAYA_RETURN_IF_ERROR(config.Validate(model, cluster));
  const auto start = std::chrono::steady_clock::now();

  JobEmulation emulation(EmulationSpec{cluster});
  JobCommRegistry registry(&emulation.bootstrap());
  LaunchResult result;

  const bool is_megatron = config.framework == ParallelFramework::kMegatron &&
                           model.family != ModelFamily::kResNet;
  if (options.selective_launch && !is_megatron) {
    return Status::InvalidArgument("selective launch requires the Megatron engine");
  }

  // Engines are stateless across workers; one instance drives every rank.
  std::unique_ptr<MegatronEngine> megatron;
  std::unique_ptr<FsdpEngine> fsdp;
  std::unique_ptr<VisionEngine> vision;
  if (model.family == ModelFamily::kResNet) {
    vision = std::make_unique<VisionEngine>(model, config, cluster);
  } else if (config.framework == ParallelFramework::kMegatron) {
    megatron = std::make_unique<MegatronEngine>(model, config, cluster);
  } else {
    fsdp = std::make_unique<FsdpEngine>(model, config, cluster);
  }

  std::vector<bool> full_rank(static_cast<size_t>(cluster.total_gpus()), true);
  if (options.selective_launch) {
    full_rank.assign(static_cast<size_t>(cluster.total_gpus()), false);
    for (int rank : megatron->layout().UniqueRanks()) {
      full_rank[static_cast<size_t>(rank)] = true;
    }
  }

  // Host clocks must outlive the emulators that reference them.
  std::vector<std::unique_ptr<VirtualHostClock>> clocks;
  std::vector<WorkerEmulator*> workers;
  for (int rank = 0; rank < cluster.total_gpus(); ++rank) {
    clocks.push_back(std::make_unique<VirtualHostClock>());
    WorkerEmulator& worker = emulation.CreateWorker(rank, clocks.back().get());
    workers.push_back(&worker);

    Status status;
    if (!full_rank[static_cast<size_t>(rank)]) {
      status = megatron->RunCommInitOnly(rank, &worker, clocks.back().get(), &registry);
    } else if (vision != nullptr) {
      status = vision->RunWorker(rank, &worker, clocks.back().get(), &registry);
    } else if (megatron != nullptr) {
      status = megatron->RunWorker(rank, &worker, clocks.back().get(), &registry);
    } else {
      status = fsdp->RunWorker(rank, &worker, clocks.back().get(), &registry);
    }

    if (status.code() == StatusCode::kOutOfMemory) {
      // The configuration does not fit: a first-class outcome (search
      // pruning, Fig. 2b OOM cells). Twin ranks would OOM identically.
      result.oom = true;
      result.oom_detail = StrFormat("rank %d: %s", rank, status.message().c_str());
      result.emulation_wall_ms = WallMs(start);
      return result;
    }
    MAYA_RETURN_IF_ERROR(status);
    result.total_api_calls += worker.stats().api_calls;
    if (full_rank[static_cast<size_t>(rank)]) {
      ++result.full_workers_emulated;
    }
  }

  result.traces = emulation.TakeTraces();
  if (options.selective_launch) {
    for (WorkerTrace& trace : result.traces) {
      if (!full_rank[static_cast<size_t>(trace.rank)]) {
        trace.comm_init_only = true;
        trace.duplicate_of = megatron->layout().RepresentativeOf(trace.rank);
        trace.ops.clear();  // bootstrap host noise is not part of the job trace
      }
    }
  }
  result.emulation_wall_ms = WallMs(start);
  return result;
}

}  // namespace maya
