// Maya's public prediction API: the four-stage pipeline of Fig. 5 —
// (1) trace collection via emulation, (2) trace collation (+ dedup),
// (3) kernel runtime estimation, (4) event-driven cluster simulation —
// producing the simulation report and MFU for a training configuration
// without touching accelerator hardware.
#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <string>

#include "src/dlf/worker_launcher.h"
#include "src/estimator/collective_estimator.h"
#include "src/estimator/kernel_estimator.h"
#include "src/groundtruth/executor.h"
#include "src/sim/simulator.h"

namespace maya {

struct PredictionRequest {
  ModelConfig model;
  TrainConfig config;

  // Pipeline knobs.
  bool deduplicate_workers = true;   // dynamic worker dedup (§4.2)
  bool selective_launch = false;     // hyperscale unique-rank launch (§7.4)
  // Oracle mode (Table 3): annotate with the profiled *actual* per-instance
  // runtimes from this executor instead of learned estimates. Must be the
  // same executor (seed) that produced the "actual" measurement.
  const GroundTruthExecutor* oracle = nullptr;
};

// Wall-clock cost of each Maya stage (Fig. 13 / Table 6).
struct StageTimings {
  double emulation_ms = 0.0;
  double collation_ms = 0.0;
  double estimation_ms = 0.0;
  double simulation_ms = 0.0;
  double total_ms() const {
    return emulation_ms + collation_ms + estimation_ms + simulation_ms;
  }
};

struct PredictionReport {
  bool oom = false;
  std::string oom_detail;

  SimReport sim;
  double iteration_time_us = 0.0;
  double mfu = 0.0;  // model FLOPs / (time x GPUs x peak)

  StageTimings timings;
  CollationStats collation;
  int full_workers_emulated = 0;

  std::string Summary() const;
};

class MayaPipeline {
 public:
  // Estimators are borrowed and must outlive the pipeline. The collective
  // estimator is pluggable (profiled interpolation by default; an
  // ASTRA-sim-like analytical model for hyperscale runs).
  MayaPipeline(const ClusterSpec& cluster, const KernelRuntimeEstimator* kernel_estimator,
               const CollectiveEstimator* collective_estimator);

  // Full pipeline: emulate -> collate -> estimate -> simulate.
  Result<PredictionReport> Predict(const PredictionRequest& request) const;

  // Stage 3 alone: annotates kernel + collective durations in place.
  void AnnotateDurations(JobTrace& job, const GroundTruthExecutor* oracle) const;

  const ClusterSpec& cluster() const { return cluster_; }

 private:
  ClusterSpec cluster_;
  const KernelRuntimeEstimator* kernel_estimator_;
  const CollectiveEstimator* collective_estimator_;
};

// MFU given a measured/predicted iteration time.
double ComputeMfu(const ModelConfig& model, int64_t global_batch, const ClusterSpec& cluster,
                  double iteration_time_us);

}  // namespace maya

#endif  // SRC_CORE_PIPELINE_H_
