// Maya's public prediction API: the four-stage pipeline of Fig. 5 —
// (1) trace collection via emulation, (2) trace collation (+ dedup),
// (3) kernel runtime estimation, (4) event-driven cluster simulation —
// producing the simulation report and MFU for a training configuration
// without touching accelerator hardware.
#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/sharded_cache.h"
#include "src/common/thread_pool.h"
#include "src/core/execution_context.h"
#include "src/dlf/worker_launcher.h"
#include "src/estimator/collective_estimator.h"
#include "src/estimator/kernel_estimator.h"
#include "src/groundtruth/executor.h"
#include "src/sim/simulator.h"

namespace maya {

// Estimation-stage knobs. The estimate cache applies the paper's dedup lever
// (Fig. 14) to stage 3: a kernel/collective estimate is computed once per
// unique key and reused within a trace, across Predict calls, and across the
// thousands of trials of a config search. Estimators are pure functions of
// their inputs, so caching is output-preserving (bit-identical on vs. off).
struct MayaPipelineOptions {
  bool enable_estimate_cache = true;
  // Entry bound / lock-stripe count per estimate cache (kernel, collective).
  size_t estimate_cache_entries = 1u << 20;
  size_t estimate_cache_shards = 32;
  // The shared execution context: one pool borrowed by per-rank emulation
  // (stage 1), the collator's fingerprint pass (stage 2) and batched kernel
  // estimation (stage 3). Null keeps every stage sequential — the right
  // default inside a concurrent search, which parallelizes across trials
  // instead. Many pipelines (e.g. every deployment of a registry) may share
  // one context; each stage is bit-identical to its sequential path.
  std::shared_ptr<ExecutionContext> context;
  // Minimum unique kernels before the context's pool engages for estimation.
  size_t parallel_estimation_threshold = 1024;
  // Memoize collated traces across Predict calls keyed by
  // (model, config, pipeline knobs) — stages 1+2 are deterministic functions
  // of that key for a fixed cluster, so a repeated configuration (across
  // RunSearch invocations or service sweeps) skips emulation + collation and
  // re-annotates a copy of the cached trace. Off by default: entries hold
  // full JobTraces, so this trades memory for wall-clock.
  bool enable_trace_cache = false;
  size_t trace_cache_entries = 128;
  // Stage-4 knobs (all output-preserving — bit-identical to the sequential
  // whole-cluster replay). Partitioning splits the annotated trace into
  // independent comm components, replayed concurrently on the shared
  // context's pool; the sim cache memoizes per-component results across
  // Predict calls and search trials, keyed by the annotated component
  // fingerprint (ops + durations + comm topology modulo rank renumbering).
  bool partition_simulation = true;
  bool enable_sim_cache = true;
  size_t sim_cache_entries = 1u << 16;
  size_t sim_cache_shards = 16;
  // Adaptive small-N fallbacks (forwarded to LaunchOptions::min_parallel_ranks
  // and SimOptions::min_parallel_components): below these counts the pool
  // fan-out costs more than the work and the stages run sequentially.
  // Bit-identical either way; 1 forces the parallel arms (used in tests).
  int min_parallel_emulation_ranks = 16;
  size_t min_parallel_simulation_components = 4;
};

// Per-Predict estimation-stage counters (plumbed into PredictionReport and
// aggregated across trials in SearchOutcome).
struct EstimationStats {
  uint64_t kernel_ops = 0;          // kernel-launch ops annotated
  uint64_t unique_kernels = 0;      // distinct KernelDescs among them
  uint64_t collective_ops = 0;      // collective ops annotated
  uint64_t unique_collectives = 0;  // distinct (kind, bytes, group) keys
  // Unique keys served from / missing in the cross-trial estimate cache.
  // With the cache disabled every unique key counts as a miss.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  uint64_t unique_ops() const { return unique_kernels + unique_collectives; }
  double hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
  void Accumulate(const EstimationStats& other) {
    kernel_ops += other.kernel_ops;
    unique_kernels += other.unique_kernels;
    collective_ops += other.collective_ops;
    unique_collectives += other.unique_collectives;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }
};

struct PredictionRequest {
  ModelConfig model;
  TrainConfig config;

  // Pipeline knobs.
  bool deduplicate_workers = true;   // dynamic worker dedup (§4.2)
  // Hyperscale unique-rank launch (§7.4), generalized to every engine:
  // Megatron emulates one rank per pipeline stage; FSDP/DeepSpeed/DDP and
  // vision jobs emulate rank 0 only, twins become comm-init stubs.
  bool selective_launch = false;
  // Hyperscale virtual folding: emulate one representative per analytic
  // rank-equivalence class and carry twin membership as RankSet spans — no
  // stub emulation, no O(world) materialization anywhere in the pipeline.
  // Takes precedence over selective_launch. Reports are bit-identical to the
  // materialized path under estimator-based annotation; oracle mode seeds
  // per-instance noise by communicator uid, which depends on launch mode.
  bool virtual_folds = false;
  // Oracle mode (Table 3): annotate with the profiled *actual* per-instance
  // runtimes from this executor instead of learned estimates. Must be the
  // same executor (seed) that produced the "actual" measurement.
  const GroundTruthExecutor* oracle = nullptr;
  // Cooperative cancellation: Predict probes this token at stage boundaries
  // (per-rank emulation, the collator fingerprint pass, estimation batches,
  // per-component sim replays) and unwinds with CANCELLED/DEADLINE_EXCEEDED
  // before any shared-cache publish — a cancelled request leaves the trace /
  // estimate / sim caches byte-identical to never having run. Null = not
  // cancellable (direct library use, benches).
  const CancelToken* cancel = nullptr;
};

// Wall-clock cost of each Maya stage (Fig. 13 / Table 6).
struct StageTimings {
  double emulation_ms = 0.0;
  double collation_ms = 0.0;
  double estimation_ms = 0.0;
  double simulation_ms = 0.0;
  double total_ms() const {
    return emulation_ms + collation_ms + estimation_ms + simulation_ms;
  }
};

struct PredictionReport {
  bool oom = false;
  std::string oom_detail;

  SimReport sim;
  double iteration_time_us = 0.0;
  double mfu = 0.0;  // model FLOPs / (time x GPUs x peak)

  StageTimings timings;
  CollationStats collation;
  EstimationStats estimation;
  // Stage-4 counters: components, folded replicas, sim-cache hits (a copy of
  // sim.stats, hoisted for symmetry with `estimation`).
  SimulationStats simulation;
  int full_workers_emulated = 0;
  // True when stages 1+2 were served from the collated-trace cache.
  bool trace_cache_hit = false;

  std::string Summary() const;
};

class MayaPipeline {
 public:
  // Estimators are borrowed and must outlive the pipeline. The collective
  // estimator is pluggable (profiled interpolation by default; an
  // ASTRA-sim-like analytical model for hyperscale runs).
  MayaPipeline(const ClusterSpec& cluster, const KernelRuntimeEstimator* kernel_estimator,
               const CollectiveEstimator* collective_estimator,
               MayaPipelineOptions options = {});

  // Full pipeline: emulate -> collate -> estimate -> simulate. Thread-safe:
  // search trials call this concurrently against one pipeline.
  Result<PredictionReport> Predict(const PredictionRequest& request) const;

  // Stage 3 alone: annotates kernel + collective durations in place.
  // Deduplicates the trace's ops, predicts each unique key once (through the
  // cross-trial estimate cache, in parallel when configured), and broadcasts
  // durations to all matching ops. Oracle mode bypasses the cache: oracle
  // durations are per-instance noisy, not functions of the key.
  // The cancellable variant probes `cancel` between the dedup, prediction and
  // broadcast passes — always BEFORE inserting freshly predicted batches into
  // the estimate caches, so a cancelled annotation publishes nothing.
  EstimationStats AnnotateDurations(JobTrace& job, const GroundTruthExecutor* oracle) const;
  Result<EstimationStats> AnnotateDurations(JobTrace& job, const GroundTruthExecutor* oracle,
                                            const CancelToken* cancel) const;

  // Stage 4 alone: replays an annotated trace through the component-
  // partitioned simulator with the pipeline's knobs — the shared context's
  // pool for concurrent components and the cross-trial sim cache.
  // `deduplicate_replicas` applies the §4.2 worker-dedup lever at simulation
  // time (lockstep replicas replay once); pass the request's
  // `deduplicate_workers` so dedup-off predictions replay every worker.
  Result<SimReport> Simulate(const JobTrace& job, bool deduplicate_replicas = true,
                             const CancelToken* cancel = nullptr) const;

  const ClusterSpec& cluster() const { return cluster_; }
  const MayaPipelineOptions& options() const { return options_; }

  // Lifetime counters of the cross-trial estimate caches.
  ShardedCacheStats KernelCacheStats() const { return kernel_estimate_cache_.stats(); }
  ShardedCacheStats CollectiveCacheStats() const { return collective_estimate_cache_.stats(); }
  ShardedCacheStats TraceCacheStats() const { return trace_cache_.stats(); }
  ShardedCacheStats SimCacheStats() const { return sim_cache_.stats(); }
  void ClearEstimateCache() {
    kernel_estimate_cache_.Clear();
    collective_estimate_cache_.Clear();
  }

  // Estimate-cache export/import for cross-process persistence (the service
  // layer's ArtifactStore): Snapshot* copies out every resident entry;
  // Import* seeds the cache so a fresh process warm-starts with the previous
  // process's hit rate. Imported values must come from identical estimators
  // (the ArtifactStore bundles both), or predictions will silently diverge
  // from fresh computation. Thread-safe, like all cache access.
  std::vector<std::pair<KernelDesc, double>> SnapshotKernelEstimates() const {
    return kernel_estimate_cache_.Snapshot();
  }
  std::vector<std::pair<CollectiveRequest, double>> SnapshotCollectiveEstimates() const {
    return collective_estimate_cache_.Snapshot();
  }
  void ImportKernelEstimates(const std::vector<std::pair<KernelDesc, double>>& entries) {
    for (const auto& [kernel, duration_us] : entries) {
      kernel_estimate_cache_.Insert(kernel, duration_us);
    }
  }
  void ImportCollectiveEstimates(
      const std::vector<std::pair<CollectiveRequest, double>>& entries) {
    for (const auto& [request, duration_us] : entries) {
      collective_estimate_cache_.Insert(request, duration_us);
    }
  }

  // Sim-cache export/import, mirroring the estimate caches: per-component
  // replay results keyed by canonical component fingerprint. Imported values
  // must come from the same estimators and cluster (the ArtifactStore bundles
  // all three), or replays would silently diverge from fresh simulation.
  std::vector<std::pair<uint64_t, std::shared_ptr<const ComponentSimResult>>>
  SnapshotSimCache() const {
    return sim_cache_.Snapshot();
  }
  void ImportSimCache(
      const std::vector<std::pair<uint64_t, std::shared_ptr<const ComponentSimResult>>>&
          entries) {
    for (const auto& [key, result] : entries) {
      sim_cache_.Insert(key, result);
    }
  }

 private:
  // Cached outcome of stages 1+2 (emulation + collation) for one request key.
  // OOM outcomes are cached too: a repeated infeasible config answers without
  // re-emulating. Shared-ptr values: hits copy the (immutable) entry's trace
  // before annotation mutates durations in place.
  struct CollatedTrace {
    bool oom = false;
    std::string oom_detail;
    JobTrace job;
    CollationStats collation;
    int full_workers_emulated = 0;
  };

  // Predicts unique kernels, fanning out over the estimation pool when the
  // batch is large enough; writes predictions to out[i].
  void PredictKernels(const std::vector<const KernelDesc*>& kernels, double* out) const;

  ClusterSpec cluster_;
  const KernelRuntimeEstimator* kernel_estimator_;
  const CollectiveEstimator* collective_estimator_;
  MayaPipelineOptions options_;
  // Cross-trial estimate memoization; mutable because annotation is
  // observably const (cached values are bit-identical to fresh predictions).
  mutable ShardedCache<KernelDesc, double, KernelDescHash> kernel_estimate_cache_;
  mutable ShardedCache<CollectiveRequest, double, CollectiveRequestHash>
      collective_estimate_cache_;
  mutable ShardedCache<std::string, std::shared_ptr<const CollatedTrace>> trace_cache_;
  mutable SimulationCache sim_cache_;
  // The shared stage pool (see MayaPipelineOptions::context); null when the
  // pipeline runs every stage sequentially.
  ThreadPool* stage_pool_ = nullptr;
};

// MFU given a measured/predicted iteration time.
double ComputeMfu(const ModelConfig& model, int64_t global_batch, const ClusterSpec& cluster,
                  double iteration_time_us);

}  // namespace maya

#endif  // SRC_CORE_PIPELINE_H_
