// Trains Maya's default estimators for a target cluster from profiling-mode
// data: per-kernel-kind random forests (80:20 split retained for the
// Appendix B MAPE tables) and the interpolating collective estimator.
#ifndef SRC_CORE_ESTIMATOR_BANK_H_
#define SRC_CORE_ESTIMATOR_BANK_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/estimator/profiler_repository.h"
#include "src/groundtruth/executor.h"

namespace maya {

struct EstimatorBank {
  std::unique_ptr<RandomForestKernelEstimator> kernel;
  std::unique_ptr<ProfiledCollectiveEstimator> collective;
  // Held-out validation split (never seen in training) for MAPE evaluation.
  KernelDataset kernel_validation;

  EstimatorBank() = default;
  EstimatorBank(EstimatorBank&&) = default;
  EstimatorBank& operator=(EstimatorBank&&) = default;
};

// Runs the profiling sweeps against the cluster's ground-truth executor
// ("dispatch on hardware, log runtimes"), splits 80:20, and fits the models.
EstimatorBank TrainEstimators(const ClusterSpec& cluster, const GroundTruthExecutor& executor,
                              const ProfileSweepOptions& sweep = {}, uint64_t seed = 404);

// Named sweep presets shared by `maya_serve --sweep` and the
// `add_deployment` protocol kind: "full" (paper-scale defaults), "small"
// (CI-scale), "tiny" (smoke-scale). Unknown names fail kInvalidArgument.
Result<ProfileSweepOptions> ProfileSweepPreset(const std::string& name);

}  // namespace maya

#endif  // SRC_CORE_ESTIMATOR_BANK_H_
