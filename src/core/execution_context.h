// One execution context per process (or per tenant): the single thread pool
// that every Maya stage borrows — per-rank emulation (stage 1), the
// collator's fingerprint pass (stage 2) and batched kernel estimation
// (stage 3) all fan out on the same workers instead of each component owning
// a private pool. One context serves many pipelines: a ServiceEngine shares
// its context across every registered deployment, so thread count scales
// with the machine, not with the number of what-if targets.
//
// Every stage that uses the pool is output-preserving (bit-identical to its
// sequential path), so the context is purely a throughput knob.
#ifndef SRC_CORE_EXECUTION_CONTEXT_H_
#define SRC_CORE_EXECUTION_CONTEXT_H_

#include <memory>

#include "src/common/thread_pool.h"

namespace maya {

class ExecutionContext {
 public:
  // threads <= 1 keeps every stage sequential (no pool is created) — the
  // right choice inside a concurrent search, which parallelizes across
  // trials instead of within stages.
  explicit ExecutionContext(int threads);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // Null when the context is sequential. Borrowers must not outlive the
  // context (pipelines hold the context via shared_ptr for exactly this).
  ThreadPool* pool() const { return pool_.get(); }
  int threads() const { return threads_; }

  // Convenience: a shared context with `threads` workers, or nullptr when
  // threads <= 1 — callers can pass the result straight into
  // MayaPipelineOptions::context either way.
  static std::shared_ptr<ExecutionContext> Create(int threads);

 private:
  int threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace maya

#endif  // SRC_CORE_EXECUTION_CONTEXT_H_
