#include "src/core/execution_context.h"

#include "src/common/telemetry.h"

namespace maya {

ExecutionContext::ExecutionContext(int threads) : threads_(threads) {
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads_));
  }
  // Stage fan-out (and therefore pool-task span volume) is bounded by this
  // gauge; exporting it makes per-stage trace density interpretable.
  MetricsRegistry::Instance()
      .GetGauge("maya_execution_context_threads",
                "Worker threads in the shared stage-execution context")
      .Set(static_cast<double>(pool_ ? threads_ : 1));
}

std::shared_ptr<ExecutionContext> ExecutionContext::Create(int threads) {
  if (threads <= 1) {
    return nullptr;
  }
  return std::make_shared<ExecutionContext>(threads);
}

}  // namespace maya
