#include "src/core/execution_context.h"

namespace maya {

ExecutionContext::ExecutionContext(int threads) : threads_(threads) {
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads_));
  }
}

std::shared_ptr<ExecutionContext> ExecutionContext::Create(int threads) {
  if (threads <= 1) {
    return nullptr;
  }
  return std::make_shared<ExecutionContext>(threads);
}

}  // namespace maya
