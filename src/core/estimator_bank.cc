#include "src/core/estimator_bank.h"

namespace maya {

EstimatorBank TrainEstimators(const ClusterSpec& cluster, const GroundTruthExecutor& executor,
                              const ProfileSweepOptions& sweep, uint64_t seed) {
  EstimatorBank bank;

  const KernelDataset all =
      GenerateKernelDataset(cluster.gpu.arch, executor.MakeKernelProfiler(), sweep);
  KernelDataset train;
  Rng rng(seed);
  SplitKernelDataset(all, /*train_fraction=*/0.8, rng, &train, &bank.kernel_validation);

  bank.kernel = std::make_unique<RandomForestKernelEstimator>();
  bank.kernel->Fit(train);

  const std::vector<CollectiveSample> collective_samples =
      GenerateCollectiveDataset(cluster, executor.MakeCollectiveProfiler(), sweep);
  bank.collective = std::make_unique<ProfiledCollectiveEstimator>();
  bank.collective->Fit(collective_samples, cluster);
  return bank;
}

Result<ProfileSweepOptions> ProfileSweepPreset(const std::string& name) {
  ProfileSweepOptions sweep;
  if (name == "full") {
    return sweep;  // paper-scale defaults
  }
  if (name == "small") {
    sweep.gemm_samples = 5000;
    sweep.conv_samples = 400;
    sweep.generic_samples = 150;
    sweep.collective_sizes = 16;
    return sweep;
  }
  if (name == "tiny") {
    sweep.gemm_samples = 1500;
    sweep.conv_samples = 100;
    sweep.generic_samples = 30;
    sweep.collective_sizes = 8;
    return sweep;
  }
  return Status::InvalidArgument("unknown sweep preset '" + name +
                                 "' (expected full, small, or tiny)");
}

}  // namespace maya
