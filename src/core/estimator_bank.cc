#include "src/core/estimator_bank.h"

namespace maya {

EstimatorBank TrainEstimators(const ClusterSpec& cluster, const GroundTruthExecutor& executor,
                              const ProfileSweepOptions& sweep, uint64_t seed) {
  EstimatorBank bank;

  const KernelDataset all =
      GenerateKernelDataset(cluster.gpu.arch, executor.MakeKernelProfiler(), sweep);
  KernelDataset train;
  Rng rng(seed);
  SplitKernelDataset(all, /*train_fraction=*/0.8, rng, &train, &bank.kernel_validation);

  bank.kernel = std::make_unique<RandomForestKernelEstimator>();
  bank.kernel->Fit(train);

  const std::vector<CollectiveSample> collective_samples =
      GenerateCollectiveDataset(cluster, executor.MakeCollectiveProfiler(), sweep);
  bank.collective = std::make_unique<ProfiledCollectiveEstimator>();
  bank.collective->Fit(collective_samples, cluster);
  return bank;
}

}  // namespace maya
