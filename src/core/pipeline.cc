#include "src/core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/common/telemetry.h"
#include "src/trace/collator.h"

namespace maya {
namespace {

class StageClock {
 public:
  StageClock() : last_(std::chrono::steady_clock::now()) {}
  double LapMs() {
    const auto now = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(now - last_).count();
    last_ = now;
    return ms;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

// Dedup map keyed by pointers into the trace (ops are not mutated structurally
// during annotation, so the pointers stay valid) — avoids copying KernelDescs.
struct KernelPtrHash {
  size_t operator()(const KernelDesc* kernel) const {
    return static_cast<size_t>(kernel->Hash());
  }
};
struct KernelPtrEq {
  bool operator()(const KernelDesc* a, const KernelDesc* b) const { return *a == *b; }
};

// Within one JobTrace a communicator uid pins the member list, so
// (kind, bytes, comm_uid) identifies a collective without copying the group's
// rank vector per op. The cross-trial cache key is the canonical
// CollectiveRequest, built once per unique local key.
struct LocalCollectiveKey {
  CollectiveKind kind;
  uint64_t bytes;
  uint64_t comm_uid;
  bool operator==(const LocalCollectiveKey& other) const = default;
};
struct LocalCollectiveKeyHash {
  size_t operator()(const LocalCollectiveKey& key) const {
    uint64_t h = HashCombine(kFnvOffsetBasis, static_cast<uint64_t>(key.kind));
    h = HashCombine(h, key.bytes);
    return static_cast<size_t>(HashCombine(h, key.comm_uid));
  }
};

// Identity of stages 1+2 for one request on a fixed cluster: the training
// configuration, the pipeline knobs that shape the trace, and every
// ModelConfig field the engines read (names alone are not identity — callers
// mutate preset configs).
std::string TraceCacheKey(const PredictionRequest& request) {
  const ModelConfig& model = request.model;
  std::string key = request.config.CacheKey();
  key += request.deduplicate_workers ? "|d1" : "|d0";
  key += request.selective_launch ? "s1" : "s0";
  key += request.virtual_folds ? "v1" : "v0";
  key += StrFormat("|%d|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld",
                   static_cast<int>(model.family), static_cast<long long>(model.num_layers),
                   static_cast<long long>(model.hidden_size),
                   static_cast<long long>(model.num_heads),
                   static_cast<long long>(model.vocab_size),
                   static_cast<long long>(model.seq_length),
                   static_cast<long long>(model.ffn_multiplier),
                   static_cast<long long>(model.image_size),
                   static_cast<long long>(model.stem_channels),
                   static_cast<long long>(model.num_classes));
  for (const ConvStageConfig& stage : model.conv_stages) {
    key += StrFormat(",%d:%lld:%lld", stage.blocks, static_cast<long long>(stage.channels),
                     static_cast<long long>(stage.stride));
  }
  return key;
}

}  // namespace

std::string PredictionReport::Summary() const {
  if (oom) {
    return "OOM: " + oom_detail;
  }
  return StrFormat("iteration %s | MFU %.1f%% | %s | stages %.0f/%.0f/%.0f/%.0f ms",
                   HumanDuration(iteration_time_us).c_str(), mfu * 100.0, sim.Summary().c_str(),
                   timings.emulation_ms, timings.collation_ms, timings.estimation_ms,
                   timings.simulation_ms);
}

MayaPipeline::MayaPipeline(const ClusterSpec& cluster,
                           const KernelRuntimeEstimator* kernel_estimator,
                           const CollectiveEstimator* collective_estimator,
                           MayaPipelineOptions options)
    : cluster_(cluster),
      kernel_estimator_(kernel_estimator),
      collective_estimator_(collective_estimator),
      options_(options),
      kernel_estimate_cache_(
          ShardedCacheOptions{options.estimate_cache_shards, options.estimate_cache_entries}),
      collective_estimate_cache_(
          ShardedCacheOptions{options.estimate_cache_shards, options.estimate_cache_entries}),
      trace_cache_(ShardedCacheOptions{8, options.trace_cache_entries}),
      sim_cache_(ShardedCacheOptions{options.sim_cache_shards, options.sim_cache_entries}) {
  // Constructor contract, not a request-reachable path: pipelines are built
  // by the deployment registry, which refuses untrained banks with a Status.
  DCHECK(kernel_estimator_ != nullptr);
  DCHECK(collective_estimator_ != nullptr);
  // options_ owns the context (shared with sibling pipelines); the raw pool
  // pointer is just the per-call shortcut.
  stage_pool_ = options_.context != nullptr ? options_.context->pool() : nullptr;
}

void MayaPipeline::PredictKernels(const std::vector<const KernelDesc*>& kernels,
                                  double* out) const {
  const size_t count = kernels.size();
  if (stage_pool_ == nullptr || count < options_.parallel_estimation_threshold) {
    kernel_estimator_->PredictUsBatch(kernels.data(), count, out);
    return;
  }
  // Fan the unique batch out in contiguous chunks; slots are disjoint, so
  // workers write without synchronization. ParallelFor's per-call latch keeps
  // concurrent callers (search trials annotating at once) isolated: each
  // waits for its own chunks only.
  const size_t chunk =
      std::max<size_t>(256, count / (stage_pool_->num_threads() * 4));
  const size_t num_chunks = (count + chunk - 1) / chunk;
  stage_pool_->ParallelFor(num_chunks, [&](size_t c) {
    ScopedSpan span("estimate_chunk", "pipeline");
    const size_t begin = c * chunk;
    const size_t len = std::min(chunk, count - begin);
    kernel_estimator_->PredictUsBatch(kernels.data() + begin, len, out + begin);
  });
}

EstimationStats MayaPipeline::AnnotateDurations(JobTrace& job,
                                                const GroundTruthExecutor* oracle) const {
  // A null token can never fail, so the cancellable variant's Result always
  // holds a value here.
  return *AnnotateDurations(job, oracle, nullptr);
}

Result<EstimationStats> MayaPipeline::AnnotateDurations(JobTrace& job,
                                                        const GroundTruthExecutor* oracle,
                                                        const CancelToken* cancel) const {
  MAYA_RETURN_IF_ERROR(CheckCancel(cancel));
  EstimationStats stats;
  if (oracle != nullptr) {
    // Profiled actual runtime of each exact execution instance: per-instance
    // noise makes oracle durations non-memoizable by design (Table 3).
    for (WorkerTrace& worker : job.workers) {
      for (size_t i = 0; i < worker.ops.size(); ++i) {
        TraceOp& op = worker.ops[i];
        if (op.type == TraceOpType::kKernelLaunch) {
          ++stats.kernel_ops;
          op.duration_us = oracle->kernel_model().NoisyUs(
              op.kernel, HashCombine(static_cast<uint64_t>(worker.rank), i));
        } else if (op.type == TraceOpType::kCollective) {
          ++stats.collective_ops;
          const CommGroup& group = job.comm(op.collective.comm_uid);
          CollectiveRequest request{op.collective.kind, op.collective.bytes, group.members};
          op.duration_us = oracle->collective_model().NoisyUs(
              request, HashCombine(op.collective.comm_uid, op.collective.seq));
        }
      }
    }
    return stats;
  }

  // Pass 1: dedup. Collect the unique kernels / collectives and record, in
  // op-walk order, which unique slot each op resolves to.
  size_t total_ops = 0;
  for (const WorkerTrace& worker : job.workers) {
    total_ops += worker.ops.size();
  }
  std::unordered_map<const KernelDesc*, uint32_t, KernelPtrHash, KernelPtrEq> kernel_slots;
  std::vector<const KernelDesc*> unique_kernels;
  std::vector<uint32_t> kernel_op_slots;
  kernel_op_slots.reserve(total_ops);
  std::unordered_map<LocalCollectiveKey, uint32_t, LocalCollectiveKeyHash> collective_slots;
  std::vector<LocalCollectiveKey> unique_collectives;
  std::vector<uint32_t> collective_op_slots;
  collective_op_slots.reserve(total_ops / 4);
  for (WorkerTrace& worker : job.workers) {
    for (TraceOp& op : worker.ops) {
      if (op.type == TraceOpType::kKernelLaunch) {
        auto [it, inserted] =
            kernel_slots.try_emplace(&op.kernel, static_cast<uint32_t>(unique_kernels.size()));
        if (inserted) {
          unique_kernels.push_back(&op.kernel);
        }
        kernel_op_slots.push_back(it->second);
      } else if (op.type == TraceOpType::kCollective) {
        const LocalCollectiveKey key{op.collective.kind, op.collective.bytes,
                                     op.collective.comm_uid};
        auto [it, inserted] =
            collective_slots.try_emplace(key, static_cast<uint32_t>(unique_collectives.size()));
        if (inserted) {
          unique_collectives.push_back(key);
        }
        collective_op_slots.push_back(it->second);
      }
    }
  }
  stats.kernel_ops = kernel_op_slots.size();
  stats.unique_kernels = unique_kernels.size();
  stats.collective_ops = collective_op_slots.size();
  stats.unique_collectives = unique_collectives.size();
  // Checkpoint between dedup and prediction: nothing published yet.
  MAYA_RETURN_IF_ERROR(CheckCancel(cancel));

  // Pass 2: resolve each unique kernel once — from the cross-trial cache
  // when possible, otherwise through batched (optionally parallel) inference.
  std::vector<double> kernel_durations(unique_kernels.size());
  if (options_.enable_estimate_cache) {
    std::vector<uint32_t> miss_slots;
    std::vector<const KernelDesc*> miss_kernels;
    for (size_t i = 0; i < unique_kernels.size(); ++i) {
      if (std::optional<double> hit = kernel_estimate_cache_.Lookup(*unique_kernels[i])) {
        kernel_durations[i] = *hit;
        ++stats.cache_hits;
      } else {
        miss_slots.push_back(static_cast<uint32_t>(i));
        miss_kernels.push_back(unique_kernels[i]);
      }
    }
    if (!miss_kernels.empty()) {
      std::vector<double> predicted(miss_kernels.size());
      PredictKernels(miss_kernels, predicted.data());
      // Checkpoint between the (possibly parallel) prediction batch and the
      // cache publish: a cancelled annotation inserts none of the fresh
      // predictions, leaving the kernel estimate cache untouched.
      MAYA_RETURN_IF_ERROR(CheckCancel(cancel));
      for (size_t j = 0; j < miss_kernels.size(); ++j) {
        kernel_durations[miss_slots[j]] = predicted[j];
        kernel_estimate_cache_.Insert(*miss_kernels[j], predicted[j]);
      }
      stats.cache_misses += miss_kernels.size();
    }
  } else {
    PredictKernels(unique_kernels, kernel_durations.data());
    stats.cache_misses += unique_kernels.size();
  }

  // Unique collectives (few per trace): canonical request built once each.
  // Checkpoint before the collective batch (and its cache inserts).
  MAYA_RETURN_IF_ERROR(CheckCancel(cancel));
  std::vector<double> collective_durations(unique_collectives.size());
  for (size_t i = 0; i < unique_collectives.size(); ++i) {
    const LocalCollectiveKey& key = unique_collectives[i];
    CollectiveRequest request{key.kind, key.bytes, job.comm(key.comm_uid).members};
    if (options_.enable_estimate_cache) {
      if (std::optional<double> hit = collective_estimate_cache_.Lookup(request)) {
        collective_durations[i] = *hit;
        ++stats.cache_hits;
        continue;
      }
      ++stats.cache_misses;
      collective_durations[i] = collective_estimator_->PredictUs(request, cluster_);
      collective_estimate_cache_.Insert(request, collective_durations[i]);
    } else {
      ++stats.cache_misses;
      collective_durations[i] = collective_estimator_->PredictUs(request, cluster_);
    }
  }

  // Pass 3: broadcast durations to every matching op, consuming the slot
  // streams in the same walk order as pass 1.
  size_t kernel_cursor = 0;
  size_t collective_cursor = 0;
  for (WorkerTrace& worker : job.workers) {
    for (TraceOp& op : worker.ops) {
      if (op.type == TraceOpType::kKernelLaunch) {
        op.duration_us = kernel_durations[kernel_op_slots[kernel_cursor++]];
      } else if (op.type == TraceOpType::kCollective) {
        op.duration_us = collective_durations[collective_op_slots[collective_cursor++]];
      }
    }
  }
  return stats;
}

Result<SimReport> MayaPipeline::Simulate(const JobTrace& job, bool deduplicate_replicas,
                                         const CancelToken* cancel) const {
  SimOptions sim_options;
  sim_options.partition_components = options_.partition_simulation;
  sim_options.deduplicate_replicas = deduplicate_replicas;
  sim_options.pool = stage_pool_;
  sim_options.min_parallel_components = options_.min_parallel_simulation_components;
  sim_options.cache = options_.enable_sim_cache ? &sim_cache_ : nullptr;
  sim_options.cancel = cancel;
  Simulator simulator(job, cluster_, sim_options);
  return simulator.Run();
}

Result<PredictionReport> MayaPipeline::Predict(const PredictionRequest& request) const {
  PredictionReport report;
  StageClock clock;
  // Injection sites fire BEFORE their stage touches any shared cache, so a
  // faulted request leaves the pipeline's cross-trial state exactly as it
  // found it (chaos tests assert bit-identity of the surviving requests).
  FaultInjection& faults = FaultInjection::Instance();

  std::string trace_key;
  std::shared_ptr<const CollatedTrace> cached;
  if (options_.enable_trace_cache) {
    trace_key = TraceCacheKey(request);
    if (std::optional<std::shared_ptr<const CollatedTrace>> hit =
            trace_cache_.Lookup(trace_key)) {
      cached = *std::move(hit);
      report.trace_cache_hit = true;
    }
  }

  JobTrace job;
  if (cached != nullptr) {
    // Stages 1+2 served from the collated-trace cache. The copy is required:
    // annotation writes durations into the trace in place.
    if (cached->oom) {
      report.oom = true;
      report.oom_detail = cached->oom_detail;
      report.timings.emulation_ms = clock.LapMs();
      return report;
    }
    job = cached->job;
    report.collation = cached->collation;
    report.full_workers_emulated = cached->full_workers_emulated;
    report.timings.collation_ms = clock.LapMs();
  } else {
    // (1) Trace collection via emulation. The shared pool is safe for
    // concurrent Predict calls: ParallelFor isolates each caller's ranks
    // behind a per-call latch.
    MAYA_RETURN_IF_ERROR(faults.MaybeFail("pipeline.emulate"));
    MAYA_RETURN_IF_ERROR(CheckCancel(request.cancel));
    LaunchOptions launch;
    launch.selective_launch = request.selective_launch;
    launch.virtual_folds = request.virtual_folds;
    launch.emulation_pool = stage_pool_;
    launch.min_parallel_ranks = options_.min_parallel_emulation_ranks;
    launch.cancel = request.cancel;
    Result<LaunchResult> launched = [&] {
      ScopedSpan span("emulate", "pipeline");
      return EmulateJob(request.model, request.config, cluster_, launch);
    }();
    if (!launched.ok()) {
      return launched.status();
    }
    report.timings.emulation_ms = launched->emulation_wall_ms;
    clock.LapMs();
    if (launched->oom) {
      report.oom = true;
      report.oom_detail = launched->oom_detail;
      // A cancelled request publishes nothing — not even the (correct) OOM
      // outcome — so the trace cache stays byte-identical to never running.
      MAYA_RETURN_IF_ERROR(CheckCancel(request.cancel));
      if (options_.enable_trace_cache) {
        auto entry = std::make_shared<CollatedTrace>();
        entry->oom = true;
        entry->oom_detail = launched->oom_detail;
        trace_cache_.Insert(trace_key, std::move(entry));
      }
      return report;
    }
    report.full_workers_emulated = launched->full_workers_emulated;

    // (2) Trace collation + worker deduplication (fingerprints fan out on
    // the shared pool; grouping stays bit-identical to the sequential pass).
    MAYA_RETURN_IF_ERROR(faults.MaybeFail("pipeline.collate"));
    MAYA_RETURN_IF_ERROR(CheckCancel(request.cancel));
    CollationOptions collation;
    collation.deduplicate = request.deduplicate_workers;
    collation.pool = stage_pool_;
    collation.cancel = request.cancel;
    TraceCollator collator(collation);
    Result<JobTrace> collated = [&] {
      ScopedSpan span("collate", "pipeline");
      return collator.Collate(std::move(launched->traces), std::move(launched->resolved_comms));
    }();
    if (!collated.ok()) {
      return collated.status();
    }
    job = *std::move(collated);
    report.collation = collator.stats();
    report.timings.collation_ms = clock.LapMs();

    // Checkpoint before the trace-cache publish (see OOM branch above).
    MAYA_RETURN_IF_ERROR(CheckCancel(request.cancel));
    if (options_.enable_trace_cache) {
      auto entry = std::make_shared<CollatedTrace>();
      entry->job = job;  // pre-annotation copy (durations still zero)
      entry->collation = report.collation;
      entry->full_workers_emulated = report.full_workers_emulated;
      trace_cache_.Insert(trace_key, std::move(entry));
    }
  }

  // (3) Kernel runtime estimation.
  MAYA_RETURN_IF_ERROR(faults.MaybeFail("pipeline.estimate"));
  {
    ScopedSpan span("estimate", "pipeline");
    Result<EstimationStats> annotated = AnnotateDurations(job, request.oracle, request.cancel);
    MAYA_RETURN_IF_ERROR(annotated.status());
    report.estimation = *annotated;
  }
  report.timings.estimation_ms = clock.LapMs();

  // (4) End-to-end simulation (no SM contention: Maya's model, §8). The
  // request's dedup knob extends to stage 4: dedup-off predictions replay
  // every simulated worker individually.
  MAYA_RETURN_IF_ERROR(faults.MaybeFail("pipeline.simulate"));
  Result<SimReport> sim = [&] {
    ScopedSpan span("simulate", "pipeline");
    return Simulate(job, request.deduplicate_workers, request.cancel);
  }();
  if (!sim.ok()) {
    return sim.status();
  }
  report.sim = *std::move(sim);
  report.simulation = report.sim.stats;
  report.timings.simulation_ms = clock.LapMs();

  MAYA_RETURN_IF_ERROR(faults.MaybeFail("pipeline.finalize"));
  MAYA_RETURN_IF_ERROR(CheckCancel(request.cancel));
  report.iteration_time_us = report.sim.total_time_us;
  report.mfu = ComputeMfu(request.model, request.config.global_batch_size, cluster_,
                          report.iteration_time_us);
  return report;
}

double ComputeMfu(const ModelConfig& model, int64_t global_batch, const ClusterSpec& cluster,
                  double iteration_time_us) {
  // Request-reachable (iteration time flows out of a simulation of an
  // arbitrary wire config; the batch comes straight off the wire): degenerate
  // inputs mean "no useful utilization number", never an abort.
  if (iteration_time_us <= 0.0) {
    return 0.0;
  }
  const double model_flops = model.FlopsPerIteration(global_batch);
  const double peak = model.family == ModelFamily::kResNet ? cluster.gpu.peak_fp32_flops
                                                           : cluster.gpu.peak_tensor_flops;
  const double cluster_flops =
      peak * cluster.total_gpus() * (iteration_time_us / 1e6);
  return cluster_flops > 0.0 ? model_flops / cluster_flops : 0.0;
}

}  // namespace maya
