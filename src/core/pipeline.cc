#include "src/core/pipeline.h"

#include <chrono>

#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/trace/collator.h"

namespace maya {
namespace {

class StageClock {
 public:
  StageClock() : last_(std::chrono::steady_clock::now()) {}
  double LapMs() {
    const auto now = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(now - last_).count();
    last_ = now;
    return ms;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

}  // namespace

std::string PredictionReport::Summary() const {
  if (oom) {
    return "OOM: " + oom_detail;
  }
  return StrFormat("iteration %s | MFU %.1f%% | %s | stages %.0f/%.0f/%.0f/%.0f ms",
                   HumanDuration(iteration_time_us).c_str(), mfu * 100.0, sim.Summary().c_str(),
                   timings.emulation_ms, timings.collation_ms, timings.estimation_ms,
                   timings.simulation_ms);
}

MayaPipeline::MayaPipeline(const ClusterSpec& cluster,
                           const KernelRuntimeEstimator* kernel_estimator,
                           const CollectiveEstimator* collective_estimator)
    : cluster_(cluster),
      kernel_estimator_(kernel_estimator),
      collective_estimator_(collective_estimator) {
  CHECK(kernel_estimator_ != nullptr);
  CHECK(collective_estimator_ != nullptr);
}

void MayaPipeline::AnnotateDurations(JobTrace& job, const GroundTruthExecutor* oracle) const {
  for (WorkerTrace& worker : job.workers) {
    for (size_t i = 0; i < worker.ops.size(); ++i) {
      TraceOp& op = worker.ops[i];
      if (op.type == TraceOpType::kKernelLaunch) {
        if (oracle != nullptr) {
          // Profiled actual runtime of this exact execution instance.
          op.duration_us = oracle->kernel_model().NoisyUs(
              op.kernel, HashCombine(static_cast<uint64_t>(worker.rank), i));
        } else {
          op.duration_us = kernel_estimator_->PredictUs(op.kernel);
        }
      } else if (op.type == TraceOpType::kCollective) {
        const CommGroup& group = job.comm(op.collective.comm_uid);
        CollectiveRequest request{op.collective.kind, op.collective.bytes, group.members};
        if (oracle != nullptr) {
          op.duration_us = oracle->collective_model().NoisyUs(
              request, HashCombine(op.collective.comm_uid, op.collective.seq));
        } else {
          op.duration_us = collective_estimator_->PredictUs(request, cluster_);
        }
      }
    }
  }
}

Result<PredictionReport> MayaPipeline::Predict(const PredictionRequest& request) const {
  PredictionReport report;
  StageClock clock;

  // (1) Trace collection via emulation.
  LaunchOptions launch;
  launch.selective_launch = request.selective_launch;
  Result<LaunchResult> launched = EmulateJob(request.model, request.config, cluster_, launch);
  if (!launched.ok()) {
    return launched.status();
  }
  report.timings.emulation_ms = launched->emulation_wall_ms;
  clock.LapMs();
  if (launched->oom) {
    report.oom = true;
    report.oom_detail = launched->oom_detail;
    return report;
  }
  report.full_workers_emulated = launched->full_workers_emulated;

  // (2) Trace collation + worker deduplication.
  TraceCollator collator(CollationOptions{request.deduplicate_workers});
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  if (!job.ok()) {
    return job.status();
  }
  report.collation = collator.stats();
  report.timings.collation_ms = clock.LapMs();

  // (3) Kernel runtime estimation.
  AnnotateDurations(*job, request.oracle);
  report.timings.estimation_ms = clock.LapMs();

  // (4) End-to-end simulation (no SM contention: Maya's model, §8).
  Simulator simulator(*job, cluster_, SimOptions{});
  Result<SimReport> sim = simulator.Run();
  if (!sim.ok()) {
    return sim.status();
  }
  report.sim = *std::move(sim);
  report.timings.simulation_ms = clock.LapMs();

  report.iteration_time_us = report.sim.total_time_us;
  report.mfu = ComputeMfu(request.model, request.config.global_batch_size, cluster_,
                          report.iteration_time_us);
  return report;
}

double ComputeMfu(const ModelConfig& model, int64_t global_batch, const ClusterSpec& cluster,
                  double iteration_time_us) {
  CHECK_GT(iteration_time_us, 0.0);
  const double model_flops = model.FlopsPerIteration(global_batch);
  const double peak = model.family == ModelFamily::kResNet ? cluster.gpu.peak_fp32_flops
                                                           : cluster.gpu.peak_tensor_flops;
  const double cluster_flops =
      peak * cluster.total_gpus() * (iteration_time_us / 1e6);
  return model_flops / cluster_flops;
}

}  // namespace maya
