// The fleet-of-deployments surface behind Maya's "many what-ifs per profiled
// estimator" usage (§5, Fig. 2): a named, bounded, thread-safe map of
// Deployments — each a ClusterSpec plus the per-arch estimator bank trained
// for it and a warm MayaPipeline over that bank — so one server answers
// predictions against any registered architecture, not just the cluster it
// was trained on.
//
// Two entry classes:
//   * registered deployments (Register / RegisterBorrowed) are pinned: they
//     carry their own trained bank and are never evicted;
//   * derived deployments materialize on demand when a request targets a
//     cluster name ("h100x32") with no registered entry — the registry
//     parses the name, finds a pinned deployment with the same GPU arch, and
//     builds a pipeline over that deployment's estimators for the target
//     cluster shape. Derived entries are bounded and evicted
//     least-recently-used (names are client-supplied, so an unbounded map
//     would let one caller grow the server without limit).
//
// A what-if against a different arch therefore works exactly when a bank for
// that arch is registered; otherwise Resolve reports which archs are
// available. All pipelines share the registry's ExecutionContext (one stage
// pool for the whole fleet) and pipeline knobs.
#ifndef SRC_CORE_DEPLOYMENT_REGISTRY_H_
#define SRC_CORE_DEPLOYMENT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/hw/cluster_spec.h"

namespace maya {

// The conventional name of the deployment an engine was constructed for —
// requests with no `deployment` field answer here.
inline constexpr const char* kDefaultDeploymentName = "default";

// One serving target: a cluster shape plus the estimators (and warm
// pipeline) that answer predictions for it. Immutable once published —
// in-flight requests hold it via shared_ptr, so eviction never invalidates a
// running prediction.
struct Deployment {
  std::string name;
  ClusterSpec cluster;
  // The trained per-arch bank. Null for borrowed-estimator deployments
  // (test fixtures, benches); derived deployments share their base
  // deployment's bank so it outlives them.
  std::shared_ptr<const EstimatorBank> bank;
  const KernelRuntimeEstimator* kernel_estimator = nullptr;
  const CollectiveEstimator* collective_estimator = nullptr;
  // Non-const pointee: Predict is const, but warm-starting imports cache
  // entries into the pipeline after the deployment is published.
  std::shared_ptr<MayaPipeline> pipeline;
  // Name of the registered deployment whose estimators this entry borrows;
  // empty for registered (pinned) deployments.
  std::string derived_from;
};

struct DeploymentRegistryOptions {
  // Bound on derived (unpinned) deployments; beyond it the least-recently-
  // resolved derived entry is evicted. Registered deployments don't count.
  size_t max_derived = 8;
  // Pipeline knobs (including the shared ExecutionContext) applied to every
  // deployment's pipeline.
  MayaPipelineOptions pipeline;
};

class DeploymentRegistry {
 public:
  explicit DeploymentRegistry(DeploymentRegistryOptions options = {});

  DeploymentRegistry(const DeploymentRegistry&) = delete;
  DeploymentRegistry& operator=(const DeploymentRegistry&) = delete;

  // Registers a pinned deployment owning its trained bank; builds the warm
  // pipeline over it. Fails on duplicate names and untrained banks.
  Result<std::shared_ptr<const Deployment>> Register(const std::string& name,
                                                     const ClusterSpec& cluster,
                                                     EstimatorBank bank);

  // Borrowed-estimator variant (estimators must outlive the registry) — for
  // callers that already own a trained bank.
  Result<std::shared_ptr<const Deployment>> RegisterBorrowed(
      const std::string& name, const ClusterSpec& cluster,
      const KernelRuntimeEstimator* kernel_estimator,
      const CollectiveEstimator* collective_estimator);

  // Unregisters pinned deployment `name`. Fails kNotFound for unknown or
  // derived names. In-flight holders of the Deployment shared_ptr (and
  // derived entries that borrowed its estimators — they share the bank via
  // shared_ptr) stay valid; later resolutions of the name fail, or re-derive
  // it as a cluster-name what-if when another same-arch bank is registered.
  Status Remove(const std::string& name);

  // Looks a deployment up by name, bumping its recency. Unknown names are
  // treated as evaluation-cluster names ("h100x32", "v100x16", "a40"): the
  // registry derives a deployment over the estimators of a registered
  // same-arch entry, inserting it as an evictable derived entry. Fails when
  // the name is neither registered nor a parseable cluster name, or when no
  // registered bank matches the target architecture.
  Result<std::shared_ptr<const Deployment>> Resolve(const std::string& name) const;

  // Registered (pinned) deployments, in registration order — the save set
  // for artifact bundles.
  std::vector<std::shared_ptr<const Deployment>> Registered() const;

  // True when `name` is resident (registered or currently-cached derived) —
  // lets tests pin the eviction policy without touching recency.
  bool IsResident(const std::string& name) const;

  // Every resident name: registered deployments in registration order, then
  // derived entries in name order.
  std::vector<std::string> ResidentNames() const;

  // Every resident deployment, in ResidentNames() order, without bumping
  // derived-entry recency — the observability walk for per-deployment stats.
  std::vector<std::shared_ptr<const Deployment>> ResidentDeployments() const;

  size_t registered_count() const;
  size_t derived_count() const;
  const DeploymentRegistryOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const Deployment> deployment;
    bool pinned = false;
    uint64_t last_used = 0;  // recency stamp; 0 = never resolved
  };

  Result<std::shared_ptr<const Deployment>> Insert(const std::string& name, Entry entry);

  std::shared_ptr<MayaPipeline> BuildPipeline(const ClusterSpec& cluster,
                                              const Deployment& estimator_source) const;

  DeploymentRegistryOptions options_;
  mutable std::mutex mutex_;
  mutable std::map<std::string, Entry> entries_;
  std::vector<std::string> registration_order_;
  mutable uint64_t clock_ = 0;
};

}  // namespace maya

#endif  // SRC_CORE_DEPLOYMENT_REGISTRY_H_
