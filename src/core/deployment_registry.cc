#include "src/core/deployment_registry.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"
#include "src/hw/gpu_spec.h"

namespace maya {

DeploymentRegistry::DeploymentRegistry(DeploymentRegistryOptions options)
    : options_(std::move(options)) {
  options_.max_derived = std::max<size_t>(1, options_.max_derived);
}

std::shared_ptr<MayaPipeline> DeploymentRegistry::BuildPipeline(
    const ClusterSpec& cluster, const Deployment& estimator_source) const {
  return std::make_shared<MayaPipeline>(cluster, estimator_source.kernel_estimator,
                                        estimator_source.collective_estimator,
                                        options_.pipeline);
}

Result<std::shared_ptr<const Deployment>> DeploymentRegistry::Insert(const std::string& name,
                                                                     Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("deployment '" + name + "' is already registered");
  }
  std::shared_ptr<const Deployment> deployment = entry.deployment;
  entries_.emplace(name, std::move(entry));
  registration_order_.push_back(name);
  return deployment;
}

Status DeploymentRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.pinned) {
    return Status::NotFound("no registered deployment named '" + name + "'");
  }
  entries_.erase(it);
  // Insert records every entry (pinned and derived) in registration_order_;
  // a stale name left behind would leak one slot per add/remove cycle.
  registration_order_.erase(
      std::remove(registration_order_.begin(), registration_order_.end(), name),
      registration_order_.end());
  return Status::Ok();
}

Result<std::shared_ptr<const Deployment>> DeploymentRegistry::Register(const std::string& name,
                                                                       const ClusterSpec& cluster,
                                                                       EstimatorBank bank) {
  if (bank.kernel == nullptr || bank.collective == nullptr) {
    return Status::FailedPrecondition("deployment '" + name + "': estimator bank is not trained");
  }
  auto deployment = std::make_shared<Deployment>();
  deployment->name = name;
  deployment->cluster = cluster;
  auto owned = std::make_shared<const EstimatorBank>(std::move(bank));
  deployment->bank = owned;
  deployment->kernel_estimator = owned->kernel.get();
  deployment->collective_estimator = owned->collective.get();
  deployment->pipeline = BuildPipeline(cluster, *deployment);
  Entry entry;
  entry.deployment = std::move(deployment);
  entry.pinned = true;
  return Insert(name, std::move(entry));
}

Result<std::shared_ptr<const Deployment>> DeploymentRegistry::RegisterBorrowed(
    const std::string& name, const ClusterSpec& cluster,
    const KernelRuntimeEstimator* kernel_estimator,
    const CollectiveEstimator* collective_estimator) {
  if (kernel_estimator == nullptr || collective_estimator == nullptr) {
    return Status::InvalidArgument("deployment '" + name + "': null borrowed estimator");
  }
  auto deployment = std::make_shared<Deployment>();
  deployment->name = name;
  deployment->cluster = cluster;
  deployment->kernel_estimator = kernel_estimator;
  deployment->collective_estimator = collective_estimator;
  deployment->pipeline = BuildPipeline(cluster, *deployment);
  Entry entry;
  entry.deployment = std::move(deployment);
  entry.pinned = true;
  return Insert(name, std::move(entry));
}

Result<std::shared_ptr<const Deployment>> DeploymentRegistry::Resolve(
    const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    it->second.last_used = ++clock_;
    return it->second.deployment;
  }

  // Unknown name: derive a deployment for the named evaluation cluster from
  // a registered same-arch bank. The pipeline build happens outside the lock
  // (it touches no registry state), so concurrent resolves of registered
  // deployments never wait on it; the race of two threads deriving the same
  // name at once resolves by second-insert-wins-nothing (re-lookup below).
  Result<ClusterSpec> cluster = ClusterSpecByName(name);
  if (!cluster.ok()) {
    return Status::NotFound("deployment '" + name +
                            "' is not registered and is not an evaluation cluster name: " +
                            cluster.status().message());
  }
  std::shared_ptr<const Deployment> base;
  std::string available;
  for (const std::string& registered : registration_order_) {
    const Entry& entry = entries_.at(registered);
    if (!entry.pinned) {
      continue;
    }
    if (!available.empty()) {
      available += ", ";
    }
    available += registered + " (" + GpuArchName(entry.deployment->cluster.gpu.arch) + ")";
    if (base == nullptr && entry.deployment->cluster.gpu.arch == cluster->gpu.arch) {
      base = entry.deployment;
    }
  }
  if (base == nullptr) {
    return Status::FailedPrecondition(
        "what-if cluster '" + name + "' needs a " + GpuArchName(cluster->gpu.arch) +
        " estimator bank, but none is registered (registered deployments: " +
        (available.empty() ? "none" : available) + "); kernel forests do not transfer across archs");
  }

  lock.unlock();
  auto derived = std::make_shared<Deployment>();
  derived->name = name;
  derived->cluster = *cluster;
  derived->bank = base->bank;  // keeps an owned base bank alive past base eviction
  derived->kernel_estimator = base->kernel_estimator;
  derived->collective_estimator = base->collective_estimator;
  derived->pipeline = BuildPipeline(*cluster, *base);
  derived->derived_from = base->name;
  lock.lock();

  auto again = entries_.find(name);
  if (again != entries_.end()) {
    // Another resolver derived it while we built ours; use the resident one
    // so every caller shares a single warm pipeline (and its caches).
    again->second.last_used = ++clock_;
    return again->second.deployment;
  }
  // Bound the derived set: evict the least-recently-resolved derived entry.
  size_t derived_count = 0;
  for (const auto& [entry_name, entry] : entries_) {
    (void)entry_name;
    derived_count += entry.pinned ? 0 : 1;
  }
  if (derived_count >= options_.max_derived) {
    auto victim = entries_.end();
    for (auto candidate = entries_.begin(); candidate != entries_.end(); ++candidate) {
      if (candidate->second.pinned) {
        continue;
      }
      if (victim == entries_.end() || candidate->second.last_used < victim->second.last_used) {
        victim = candidate;
      }
    }
    if (victim != entries_.end()) {
      entries_.erase(victim);  // in-flight users keep it alive via shared_ptr
    }
  }
  Entry entry;
  entry.deployment = derived;
  entry.pinned = false;
  entry.last_used = ++clock_;
  entries_.emplace(name, std::move(entry));
  return std::shared_ptr<const Deployment>(std::move(derived));
}

std::vector<std::shared_ptr<const Deployment>> DeploymentRegistry::Registered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const Deployment>> registered;
  registered.reserve(registration_order_.size());
  for (const std::string& name : registration_order_) {
    auto it = entries_.find(name);
    if (it != entries_.end() && it->second.pinned) {
      registered.push_back(it->second.deployment);
    }
  }
  return registered;
}

std::vector<std::string> DeploymentRegistry::ResidentNames() const {
  std::vector<std::string> names;
  for (const std::shared_ptr<const Deployment>& deployment : ResidentDeployments()) {
    names.push_back(deployment->name);
  }
  return names;
}

std::vector<std::shared_ptr<const Deployment>> DeploymentRegistry::ResidentDeployments() const {
  // THE resident-order walk (registered in registration order, then derived
  // in name order) — ResidentNames() and the stats `per_deployment` contract
  // both derive from it.
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const Deployment>> deployments;
  deployments.reserve(entries_.size());
  for (const std::string& name : registration_order_) {
    auto it = entries_.find(name);
    if (it != entries_.end() && it->second.pinned) {
      deployments.push_back(it->second.deployment);
    }
  }
  for (const auto& [name, entry] : entries_) {
    (void)name;
    if (!entry.pinned) {
      deployments.push_back(entry.deployment);  // std::map: name-ordered
    }
  }
  return deployments;
}

bool DeploymentRegistry::IsResident(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

size_t DeploymentRegistry::registered_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const auto& [name, entry] : entries_) {
    (void)name;
    count += entry.pinned ? 1 : 0;
  }
  return count;
}

size_t DeploymentRegistry::derived_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const auto& [name, entry] : entries_) {
    (void)name;
    count += entry.pinned ? 0 : 1;
  }
  return count;
}

}  // namespace maya
