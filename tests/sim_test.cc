// Discrete-event simulator tests (Appendix A semantics): host dispatch,
// stream serialization, CUDA-event waitmaps with versioning, collective
// rendezvous, folded-worker lockstep, overlap accounting, contention and
// deadlock detection.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/sim/simulator.h"

namespace maya {
namespace {

// Builds a worker trace op-by-op with explicit timing fields.
class TraceBuilder {
 public:
  explicit TraceBuilder(int rank) { trace_.rank = rank; }

  TraceBuilder& Kernel(uint64_t stream, double host_delay, double duration) {
    TraceOp op;
    op.type = TraceOpType::kKernelLaunch;
    op.stream = stream;
    op.host_delay_us = host_delay;
    op.duration_us = duration;
    op.kernel = MakeElementwise(1024, DType::kBf16);
    trace_.ops.push_back(op);
    return *this;
  }

  TraceBuilder& Collective(uint64_t stream, double host_delay, double duration, uint64_t uid,
                           uint32_t seq, int nranks, int rank_in_comm,
                           CollectiveKind kind = CollectiveKind::kAllReduce) {
    TraceOp op;
    op.type = TraceOpType::kCollective;
    op.stream = stream;
    op.host_delay_us = host_delay;
    op.duration_us = duration;
    op.collective = {kind, 4096, uid, seq, nranks, rank_in_comm, -1};
    trace_.ops.push_back(op);
    comm_inits_.insert({uid, nranks, rank_in_comm});
    return *this;
  }

  TraceBuilder& Record(uint64_t stream, double host_delay, uint32_t event, uint32_t version) {
    TraceOp op;
    op.type = TraceOpType::kEventRecord;
    op.stream = stream;
    op.host_delay_us = host_delay;
    op.event = {event, version};
    trace_.ops.push_back(op);
    return *this;
  }

  TraceBuilder& WaitEvent(uint64_t stream, double host_delay, uint32_t event, uint32_t version) {
    TraceOp op;
    op.type = TraceOpType::kStreamWaitEvent;
    op.stream = stream;
    op.host_delay_us = host_delay;
    op.event = {event, version};
    trace_.ops.push_back(op);
    return *this;
  }

  TraceBuilder& HostSync(TraceOpType type, uint64_t stream, double host_delay,
                         uint32_t event = 0, uint32_t version = 0) {
    TraceOp op;
    op.type = type;
    op.stream = stream;
    op.host_delay_us = host_delay;
    op.event = {event, version};
    trace_.ops.push_back(op);
    return *this;
  }

  TraceBuilder& Malloc(double host_delay, uint64_t bytes) {
    TraceOp op;
    op.type = TraceOpType::kMalloc;
    op.host_delay_us = host_delay;
    op.memory = {bytes, 0x1};
    trace_.ops.push_back(op);
    return *this;
  }

  WorkerTrace Build() const { return trace_; }
  // Communicator evidence accumulated from Collective() calls.
  std::set<std::tuple<uint64_t, int, int>> comm_inits_;

 private:
  WorkerTrace trace_;
};

JobTrace MakeJob(std::vector<WorkerTrace> workers,
                 std::vector<std::vector<int>> folded = {},
                 std::vector<CommGroup> comms = {}) {
  JobTrace job;
  job.world_size = 0;
  for (const auto& worker : workers) {
    job.world_size = std::max(job.world_size, worker.rank + 1);
  }
  if (folded.empty()) {
    for (const auto& worker : workers) {
      folded.push_back({worker.rank});
    }
  }
  job.workers = std::move(workers);
  for (std::vector<int>& ranks : folded) {
    std::sort(ranks.begin(), ranks.end());
    RankSet set;
    for (int rank : ranks) {
      set.Add(rank);
    }
    job.folded_ranks.push_back(std::move(set));
  }
  for (auto& group : comms) {
    job.comms[group.uid] = group;
  }
  return job;
}

SimOptions NoLatency() {
  SimOptions options;
  options.dispatch_latency_us = 0.0;
  return options;
}

// The sequential whole-cluster reference: one event heap, no fold, no dedup.
SimOptions Sequential() {
  SimOptions options = NoLatency();
  options.partition_components = false;
  options.deduplicate_replicas = false;
  return options;
}

// Every per-worker field and every total must be EXPECT_EQ (not NEAR): the
// component-partitioned/deduped/cached replay is bit-identical to the
// sequential whole-cluster replay by construction.
void ExpectSameReport(const SimReport& expected, const SimReport& actual) {
  EXPECT_EQ(expected.total_time_us, actual.total_time_us);
  EXPECT_EQ(expected.comm_time_us, actual.comm_time_us);
  EXPECT_EQ(expected.exposed_comm_us, actual.exposed_comm_us);
  EXPECT_EQ(expected.host_time_us, actual.host_time_us);
  EXPECT_EQ(expected.peak_memory_bytes, actual.peak_memory_bytes);
  EXPECT_EQ(expected.events_processed, actual.events_processed);
  ASSERT_EQ(expected.workers.size(), actual.workers.size());
  for (size_t w = 0; w < expected.workers.size(); ++w) {
    EXPECT_EQ(expected.workers[w], actual.workers[w]) << "worker " << w;
  }
}

// Two disjoint comm islands with different timings: {0,1} on comm 100 and
// {2,3} on comm 200.
JobTrace TwoIslandJob() {
  CommGroup left{100, 2, {0, 1}};
  CommGroup right{200, 2, {2, 3}};
  return MakeJob(
      {TraceBuilder(0).Kernel(1, 1.0, 5.0).Collective(1, 0.0, 7.0, 100, 0, 2, 0).Build(),
       TraceBuilder(1).Kernel(1, 1.0, 20.0).Collective(1, 0.0, 7.0, 100, 0, 2, 1).Build(),
       TraceBuilder(2).Kernel(1, 1.0, 9.0).Collective(1, 0.0, 3.0, 200, 0, 2, 0).Build(),
       TraceBuilder(3).Kernel(1, 1.0, 31.0).Collective(1, 0.0, 3.0, 200, 0, 2, 1).Build()},
      {}, {left, right});
}

// ---- Stream serialization ------------------------------------------------------

TEST(SimulatorTest, SequentialKernelsOnOneStream) {
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Kernel(1, 1.0, 10.0)
                              .Kernel(1, 1.0, 10.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // op1: issue 1, runs [1, 11); op2: issue 2, waits for stream, runs [11, 21).
  EXPECT_DOUBLE_EQ(report->total_time_us, 21.0);
  EXPECT_DOUBLE_EQ(report->workers[0].compute_busy_us, 20.0);
  EXPECT_DOUBLE_EQ(report->workers[0].host_busy_us, 2.0);
}

TEST(SimulatorTest, IndependentStreamsOverlap) {
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Kernel(1, 1.0, 10.0)
                              .Kernel(2, 1.0, 10.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  // Stream 2's kernel starts at issue time 2, overlapping stream 1.
  EXPECT_DOUBLE_EQ(report->total_time_us, 12.0);
}

TEST(SimulatorTest, DispatchLatencyDelaysStart) {
  SimOptions options;
  options.dispatch_latency_us = 4.0;
  JobTrace job = MakeJob({TraceBuilder(0).Kernel(1, 1.0, 10.0).Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), options).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 15.0);  // 1 (host) + 4 (dispatch) + 10
}

TEST(SimulatorTest, HostOnlyOpsAdvanceHostClock) {
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Malloc(5.0, 1024)
                              .Kernel(1, 1.0, 10.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 16.0);  // 5 + 1 host, then 10 device
}

// ---- CUDA event waitmap -----------------------------------------------------------

TEST(SimulatorTest, StreamWaitEventOrdersCrossStreamWork) {
  // Stream 1: kernel [0,10) then record e1v1. Stream 2: wait(e1v1), kernel 5.
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Kernel(1, 0.0, 10.0)
                              .Record(1, 0.0, /*event=*/1, /*version=*/1)
                              .WaitEvent(2, 0.0, 1, 1)
                              .Kernel(2, 0.0, 5.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 15.0);
}

TEST(SimulatorTest, WaitOnAlreadyCompletedEventIsFree) {
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Kernel(1, 0.0, 2.0)
                              .Record(1, 0.0, 1, 1)
                              .Kernel(2, 10.0, 1.0)  // issued late: event long done
                              .WaitEvent(2, 0.0, 1, 1)
                              .Kernel(2, 0.0, 5.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 16.0);  // 10 + 1, then 5
}

TEST(SimulatorTest, WaitOnUnrecordedEventVersionZeroIsNoop) {
  JobTrace job = MakeJob({TraceBuilder(0)
                              .WaitEvent(1, 0.0, 7, 0)
                              .Kernel(1, 0.0, 5.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 5.0);
}

TEST(SimulatorTest, EventVersionsDisambiguateReuse) {
  // Wait on version 2 must see the *second* record, not the first.
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Kernel(1, 0.0, 3.0)
                              .Record(1, 0.0, 1, 1)
                              .Kernel(1, 0.0, 7.0)
                              .Record(1, 0.0, 1, 2)
                              .WaitEvent(2, 0.0, 1, 2)
                              .Kernel(2, 0.0, 1.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 11.0);  // 3 + 7, then 1
}

// ---- Host blocking synchronization ---------------------------------------------------

TEST(SimulatorTest, EventSynchronizeBlocksHost) {
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Kernel(1, 0.0, 10.0)
                              .Record(1, 0.0, 1, 1)
                              .HostSync(TraceOpType::kEventSynchronize, 0, 0.0, 1, 1)
                              .Kernel(2, 1.0, 2.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 13.0);  // host resumes at 10, +1 +2
}

TEST(SimulatorTest, StreamSynchronizeDrainsOneStream) {
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Kernel(1, 0.0, 10.0)
                              .Kernel(2, 0.0, 3.0)
                              .HostSync(TraceOpType::kStreamSynchronize, 2, 0.0)
                              .Kernel(3, 0.0, 1.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  // Host resumes when stream 2 drains (t=3); stream 1 still runs to 10.
  EXPECT_DOUBLE_EQ(report->total_time_us, 10.0);
  EXPECT_DOUBLE_EQ(report->workers[0].finish_us, 10.0);
}

TEST(SimulatorTest, DeviceSynchronizeDrainsAllStreams) {
  JobTrace job = MakeJob({TraceBuilder(0)
                              .Kernel(1, 0.0, 10.0)
                              .Kernel(2, 0.0, 3.0)
                              .HostSync(TraceOpType::kDeviceSynchronize, 0, 0.0)
                              .Kernel(3, 0.0, 1.0)
                              .Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 11.0);  // resume at 10, + 1
}

// ---- Collectives ------------------------------------------------------------------------

TEST(SimulatorTest, CollectiveWaitsForLastParticipant) {
  CommGroup group{77, 2, {0, 1}};
  JobTrace job = MakeJob(
      {TraceBuilder(0).Kernel(1, 0.0, 5.0).Collective(1, 0.0, 7.0, 77, 0, 2, 0).Build(),
       TraceBuilder(1).Kernel(1, 0.0, 20.0).Collective(1, 0.0, 7.0, 77, 0, 2, 1).Build()},
      {}, {group});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Fires when rank 1 joins at 20; all complete at 27 (lockstep release).
  EXPECT_DOUBLE_EQ(report->total_time_us, 27.0);
  EXPECT_DOUBLE_EQ(report->workers[0].comm_busy_us, 22.0);  // stalled from 5 to 27
  EXPECT_DOUBLE_EQ(report->workers[1].comm_busy_us, 7.0);
}

TEST(SimulatorTest, CollectiveSequenceNumbersPairInOrder) {
  // Two consecutive collectives on the same comm must pair 0-0 and 1-1.
  CommGroup group{5, 2, {0, 1}};
  JobTrace job = MakeJob(
      {TraceBuilder(0)
           .Collective(1, 1.0, 10.0, 5, 0, 2, 0)
           .Collective(1, 1.0, 10.0, 5, 1, 2, 0)
           .Build(),
       TraceBuilder(1)
           .Collective(1, 2.0, 10.0, 5, 0, 2, 1)
           .Collective(1, 2.0, 10.0, 5, 1, 2, 1)
           .Build()},
      {}, {group});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  // First joins at 1 and 2 -> fires 2, done 12. Second joins at 12 -> done 22.
  EXPECT_DOUBLE_EQ(report->total_time_us, 22.0);
}

TEST(SimulatorTest, FoldedWorkersJoinOnceForWholeGroup) {
  // One simulated worker represents both ranks of the communicator: the
  // collective fires on its single join (§4.2 dedup).
  CommGroup group{9, 2, {0, 1}};
  JobTrace job = MakeJob({TraceBuilder(0).Collective(1, 1.0, 6.0, 9, 0, 2, 0).Build()},
                         {{0, 1}}, {group});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_DOUBLE_EQ(report->total_time_us, 7.0);
  EXPECT_EQ(report->workers[0].folded_multiplicity, 2);
}

TEST(SimulatorTest, CollectiveOverlapsIndependentComputeStream) {
  CommGroup group{3, 2, {0, 1}};
  JobTrace job = MakeJob(
      {TraceBuilder(0)
           .Collective(2, 0.0, 50.0, 3, 0, 2, 0)  // comm stream
           .Kernel(1, 1.0, 30.0)                  // compute proceeds concurrently
           .Build(),
       TraceBuilder(1).Collective(2, 0.0, 50.0, 3, 0, 2, 1).Build()},
      {}, {group});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 50.0);
  // Exposed communication is reduced by the overlapped compute window.
  EXPECT_NEAR(report->workers[0].exposed_comm_us, 20.0, 1e-9);
}

TEST(SimulatorTest, MismatchedCollectiveIsDeadlockNotHang) {
  CommGroup group{4, 2, {0, 1}};
  JobTrace job = MakeJob(
      {TraceBuilder(0).Collective(1, 0.0, 5.0, 4, 0, 2, 0).Build(),
       TraceBuilder(1).Kernel(1, 0.0, 5.0).Build()},  // rank 1 never joins
      {}, {group});
  // Rank 1's trace has no comm init for uid 4; provide evidence anyway.
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("deadlock"), std::string::npos);
}

// ---- Contention (ground-truth mode) -----------------------------------------------------

TEST(SimulatorTest, ContentionStretchesOverlappedCompute) {
  CommGroup group{6, 2, {0, 1}};
  SimOptions options = NoLatency();
  options.compute_contention_factor = 2.0;
  JobTrace job = MakeJob(
      {TraceBuilder(0)
           .Collective(2, 0.0, 100.0, 6, 0, 2, 0)
           .Kernel(1, 1.0, 60.0)  // starts inside the collective window
           .Build(),
       TraceBuilder(1).Collective(2, 0.0, 100.0, 6, 0, 2, 1).Build()},
      {}, {group});
  Result<SimReport> report = Simulator(job, H100Cluster(8), options).Run();
  ASSERT_TRUE(report.ok());
  // The kernel is stretched to 120us and now dominates the makespan.
  EXPECT_DOUBLE_EQ(report->total_time_us, 121.0);
}

TEST(SimulatorTest, NoContentionWithoutActiveCollective) {
  SimOptions options = NoLatency();
  options.compute_contention_factor = 2.0;
  JobTrace job = MakeJob({TraceBuilder(0).Kernel(1, 0.0, 60.0).Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), options).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->total_time_us, 60.0);
}

// ---- Pipeline bubble emergence ------------------------------------------------------------

TEST(SimulatorTest, TwoStagePipelineShowsBubble) {
  // Stage 0 sends after compute; stage 1 receives, computes. The stage-1
  // makespan includes the stage-0 fill time — a pipeline bubble emerging
  // purely from p2p rendezvous, with no explicit bubble modeling.
  CommGroup fwd{11, 2, {0, 1}};
  TraceBuilder stage0(0);
  TraceBuilder stage1(1);
  for (uint32_t mb = 0; mb < 3; ++mb) {
    stage0.Kernel(1, 0.0, 10.0).Collective(1, 0.0, 1.0, 11, mb, 2, 0, CollectiveKind::kSend);
    stage1.Collective(1, 0.0, 1.0, 11, mb, 2, 1, CollectiveKind::kRecv).Kernel(1, 0.0, 10.0);
  }
  JobTrace job = MakeJob({stage0.Build(), stage1.Build()}, {}, {fwd});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Stage 0: mb at [0,10),[11,21),[22,32) + sends. Stage 1 finishes its last
  // compute 10us after receiving the last send.
  EXPECT_DOUBLE_EQ(report->total_time_us, 43.0);
}

// ---- Component partitioning / replica dedup / sim cache --------------------------

TEST(SimulatorTest, PartitionedComponentsMatchSequential) {
  JobTrace job = TwoIslandJob();
  Result<SimReport> sequential = Simulator(job, H100Cluster(8), Sequential()).Run();
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  SimOptions partitioned = NoLatency();
  partitioned.deduplicate_replicas = false;  // isolate the partitioning lever
  Result<SimReport> report = Simulator(job, H100Cluster(8), partitioned).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stats.components, 2u);
  EXPECT_EQ(report->stats.simulated_components, 2u);
  EXPECT_EQ(report->stats.folded_workers, 0u);
  ExpectSameReport(*sequential, *report);
}

TEST(SimulatorTest, ParallelComponentReplayMatchesSequential) {
  JobTrace job = TwoIslandJob();
  Result<SimReport> sequential = Simulator(job, H100Cluster(8), Sequential()).Run();
  ASSERT_TRUE(sequential.ok());

  ThreadPool pool(4);
  SimOptions parallel = NoLatency();
  parallel.deduplicate_replicas = false;
  parallel.pool = &pool;
  parallel.min_parallel_components = 1;  // force the parallel arm below the adaptive floor
  Result<SimReport> report = Simulator(job, H100Cluster(8), parallel).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stats.components, 2u);
  ExpectSameReport(*sequential, *report);
}

TEST(SimulatorTest, LockstepReplicasFoldOntoOneRepresentative) {
  // Four identical workers sharing one all-reduce: the §7.4 symmetry at
  // simulation time — one representative replays, three timelines replicate.
  CommGroup group{9, 4, {0, 1, 2, 3}};
  std::vector<WorkerTrace> workers;
  for (int rank = 0; rank < 4; ++rank) {
    workers.push_back(TraceBuilder(rank)
                          .Kernel(1, 1.0, 10.0)
                          .Collective(1, 0.0, 6.0, 9, 0, 4, rank)
                          .Kernel(1, 0.0, 4.0)
                          .Build());
  }
  JobTrace job = MakeJob(std::move(workers), {}, {group});
  Result<SimReport> sequential = Simulator(job, H100Cluster(8), Sequential()).Run();
  ASSERT_TRUE(sequential.ok());

  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stats.workers, 4u);
  EXPECT_EQ(report->stats.folded_workers, 3u);
  EXPECT_EQ(report->stats.components, 1u);
  EXPECT_EQ(report->stats.simulated_components, 1u);
  ExpectSameReport(*sequential, *report);
}

TEST(SimulatorTest, IdenticalComponentsReplayOnce) {
  // Two isomorphic islands whose workers differ within each island (no
  // worker-level fold) but match across islands modulo communicator
  // renumbering: component-level replica dedup replays one island.
  CommGroup left{100, 2, {0, 1}};
  CommGroup right{200, 2, {2, 3}};
  JobTrace job = MakeJob(
      {TraceBuilder(0).Kernel(1, 1.0, 5.0).Collective(1, 0.0, 7.0, 100, 0, 2, 0).Build(),
       TraceBuilder(1).Kernel(1, 1.0, 20.0).Collective(1, 0.0, 7.0, 100, 0, 2, 1).Build(),
       TraceBuilder(2).Kernel(1, 1.0, 5.0).Collective(1, 0.0, 7.0, 200, 0, 2, 0).Build(),
       TraceBuilder(3).Kernel(1, 1.0, 20.0).Collective(1, 0.0, 7.0, 200, 0, 2, 1).Build()},
      {}, {left, right});
  Result<SimReport> sequential = Simulator(job, H100Cluster(8), Sequential()).Run();
  ASSERT_TRUE(sequential.ok());

  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stats.folded_workers, 0u);
  EXPECT_EQ(report->stats.components, 2u);
  EXPECT_EQ(report->stats.replicated_components, 1u);
  EXPECT_EQ(report->stats.simulated_components, 1u);
  ExpectSameReport(*sequential, *report);
}

TEST(SimulatorTest, P2pEndpointsNeverFold) {
  // Both ring endpoints record identical op sequences (send then recv on the
  // same link): folding them would collapse the rendezvous. The p2p guard
  // keeps them distinct and the replay bit-identical.
  CommGroup ring{7, 2, {0, 1}};
  JobTrace job = MakeJob(
      {TraceBuilder(0)
           .Collective(1, 1.0, 5.0, 7, 0, 2, 0, CollectiveKind::kSend)
           .Collective(1, 0.0, 5.0, 7, 1, 2, 0, CollectiveKind::kRecv)
           .Build(),
       TraceBuilder(1)
           .Collective(1, 1.0, 5.0, 7, 0, 2, 1, CollectiveKind::kSend)
           .Collective(1, 0.0, 5.0, 7, 1, 2, 1, CollectiveKind::kRecv)
           .Build()},
      {}, {ring});
  Result<SimReport> sequential = Simulator(job, H100Cluster(8), Sequential()).Run();
  ASSERT_TRUE(sequential.ok());

  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stats.folded_workers, 0u);
  ExpectSameReport(*sequential, *report);
}

TEST(SimulatorTest, SimCacheReplaysBitIdentical) {
  JobTrace job = TwoIslandJob();
  Result<SimReport> sequential = Simulator(job, H100Cluster(8), Sequential()).Run();
  ASSERT_TRUE(sequential.ok());

  SimulationCache cache;
  SimOptions cached = NoLatency();
  cached.cache = &cache;
  Result<SimReport> cold = Simulator(job, H100Cluster(8), cached).Run();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->stats.cache_hits, 0u);
  EXPECT_EQ(cold->stats.cache_misses, 2u);
  ExpectSameReport(*sequential, *cold);

  Result<SimReport> warm = Simulator(job, H100Cluster(8), cached).Run();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->stats.cache_hits, 2u);
  EXPECT_EQ(warm->stats.simulated_components, 0u);
  ExpectSameReport(*sequential, *warm);
}

TEST(SimulatorTest, SimCacheKeyedBySimOptions) {
  // The same annotated trace under different resolved options must not share
  // cache entries.
  JobTrace job = TwoIslandJob();
  SimulationCache cache;
  SimOptions no_latency = NoLatency();
  no_latency.cache = &cache;
  Result<SimReport> fast = Simulator(job, H100Cluster(8), no_latency).Run();
  ASSERT_TRUE(fast.ok());

  SimOptions with_latency = no_latency;
  with_latency.dispatch_latency_us = 4.0;
  Result<SimReport> slow = Simulator(job, H100Cluster(8), with_latency).Run();
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->stats.cache_hits, 0u);  // different key despite same trace
  EXPECT_GT(slow->total_time_us, fast->total_time_us);
}

TEST(SimulatorTest, StuckWorkerDiagnosticUnderBothModes) {
  // Mismatched collective (rank 1 never joins): the deadlock diagnostic must
  // fire — and name the stuck rank and communicator — under the sequential
  // AND the component-partitioned/deduped execution.
  CommGroup group{4, 2, {0, 1}};
  JobTrace job = MakeJob(
      {TraceBuilder(0)
           .Collective(1, 0.0, 5.0, 4, 0, 2, 0)
           .HostSync(TraceOpType::kDeviceSynchronize, 0, 0.0)
           .Build(),
       TraceBuilder(1).Kernel(1, 0.0, 5.0).Build()},
      {}, {group});
  for (const SimOptions& options : {Sequential(), NoLatency()}) {
    Result<SimReport> report = Simulator(job, H100Cluster(8), options).Run();
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.status().message().find("deadlock"), std::string::npos);
    EXPECT_NE(report.status().message().find("rank 0"), std::string::npos);
    EXPECT_NE(report.status().message().find("cudaDeviceSynchronize"), std::string::npos);
  }
  // Without the host block the same mismatch drains the event queue with the
  // rendezvous still pending — the collective-waits diagnostic, again under
  // both modes.
  JobTrace async_job = MakeJob(
      {TraceBuilder(0).Collective(1, 0.0, 5.0, 4, 0, 2, 0).Build(),
       TraceBuilder(1).Kernel(1, 0.0, 5.0).Build()},
      {}, {group});
  for (const SimOptions& options : {Sequential(), NoLatency()}) {
    Result<SimReport> report = Simulator(async_job, H100Cluster(8), options).Run();
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.status().message().find("collectives left waiting"), std::string::npos);
  }
}

TEST(SimulatorTest, NegativeDispatchLatencyRejectedAtConstruction) {
  JobTrace job = MakeJob({TraceBuilder(0).Kernel(1, 0.0, 1.0).Build()});
  SimOptions options;
  options.dispatch_latency_us = -1.0;
  EXPECT_DEATH_IF_SUPPORTED(Simulator(job, H100Cluster(8), options),
                            "dispatch latency must be non-negative");
}

// ---- Misc ------------------------------------------------------------------------------------

TEST(SimulatorTest, EmptyJobRejected) {
  JobTrace job;
  Result<SimReport> report = Simulator(job, H100Cluster(8)).Run();
  EXPECT_FALSE(report.ok());
}

TEST(SimulatorTest, PeakMemoryTakenFromTraces) {
  WorkerTrace worker = TraceBuilder(0).Kernel(1, 0.0, 1.0).Build();
  worker.peak_device_bytes = 123456;
  JobTrace job = MakeJob({worker});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->peak_memory_bytes, 123456u);
}

TEST(SimulatorTest, ReportSummaryMentionsWorkers) {
  JobTrace job = MakeJob({TraceBuilder(0).Kernel(1, 0.0, 1.0).Build()});
  Result<SimReport> report = Simulator(job, H100Cluster(8), NoLatency()).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->Summary().find("1 workers"), std::string::npos);
  EXPECT_GT(report->events_processed, 0u);
}

}  // namespace
}  // namespace maya
