// Tests for Maya's transparent device emulator: resource tracking, OOM
// detection, misuse flagging, context-aware stateful protocols, collective
// lifecycle, and host-delay measurement (§4.1-4.2).
#include <gtest/gtest.h>

#include "src/dlf/host_cost_model.h"
#include "src/emulator/emulator.h"

namespace maya {
namespace {

class EmulatorTest : public ::testing::Test {
 protected:
  EmulatorTest()
      : emulation_(EmulationSpec{H100Cluster(8)}),
        worker_(emulation_.CreateWorker(0, &clock_)) {}

  VirtualHostClock clock_;
  JobEmulation emulation_;
  WorkerEmulator& worker_;
};

// ---- Device management --------------------------------------------------------

TEST_F(EmulatorTest, DeviceCountMatchesNodeShape) {
  int count = 0;
  EXPECT_EQ(worker_.cudaGetDeviceCount(&count), CudaError::kSuccess);
  EXPECT_EQ(count, 8);
}

TEST_F(EmulatorTest, SetGetDevice) {
  EXPECT_EQ(worker_.cudaSetDevice(3), CudaError::kSuccess);
  int device = -1;
  EXPECT_EQ(worker_.cudaGetDevice(&device), CudaError::kSuccess);
  EXPECT_EQ(device, 3);
  EXPECT_EQ(worker_.cudaSetDevice(8), CudaError::kErrorInvalidValue);
}

TEST_F(EmulatorTest, MemGetInfoMimicsDevice) {
  uint64_t free_bytes = 0;
  uint64_t total_bytes = 0;
  ASSERT_EQ(worker_.cudaMemGetInfo(&free_bytes, &total_bytes), CudaError::kSuccess);
  EXPECT_EQ(total_bytes, H100Spec().hbm_bytes);
  EXPECT_EQ(free_bytes, total_bytes);

  DevPtr ptr = 0;
  ASSERT_EQ(worker_.cudaMalloc(&ptr, 1ULL << 30), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudaMemGetInfo(&free_bytes, &total_bytes), CudaError::kSuccess);
  EXPECT_EQ(free_bytes, total_bytes - (1ULL << 30));
}

// ---- Memory tracking -----------------------------------------------------------

TEST_F(EmulatorTest, MallocFreeTracksUsage) {
  DevPtr a = 0;
  DevPtr b = 0;
  ASSERT_EQ(worker_.cudaMalloc(&a, 1000), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudaMalloc(&b, 2000), CudaError::kSuccess);
  EXPECT_NE(a, b);
  // Sizes round up to the 512-byte allocator granule.
  EXPECT_EQ(worker_.used_device_bytes(), 1024u + 2048u);
  EXPECT_EQ(worker_.cudaFree(a), CudaError::kSuccess);
  EXPECT_EQ(worker_.used_device_bytes(), 2048u);
  EXPECT_EQ(worker_.peak_device_bytes(), 1024u + 2048u);
}

TEST_F(EmulatorTest, OutOfMemoryDetected) {
  DevPtr ptr = 0;
  EXPECT_EQ(worker_.cudaMalloc(&ptr, H100Spec().hbm_bytes + 1), CudaError::kErrorMemoryAllocation);
  EXPECT_EQ(ptr, 0u);
  // Allocation up to capacity succeeds.
  EXPECT_EQ(worker_.cudaMalloc(&ptr, H100Spec().hbm_bytes / 2), CudaError::kSuccess);
  // And a second over-the-limit allocation fails without corrupting state.
  DevPtr second = 0;
  EXPECT_EQ(worker_.cudaMalloc(&second, H100Spec().hbm_bytes), CudaError::kErrorMemoryAllocation);
  EXPECT_EQ(worker_.used_device_bytes(), worker_.peak_device_bytes());
}

TEST_F(EmulatorTest, InvalidFreeFlagged) {
  EXPECT_EQ(worker_.cudaFree(0xdead), CudaError::kErrorInvalidDevicePointer);
  EXPECT_EQ(worker_.cudaFree(0), CudaError::kSuccess);  // freeing null is legal
  DevPtr ptr = 0;
  ASSERT_EQ(worker_.cudaMalloc(&ptr, 64), CudaError::kSuccess);
  EXPECT_EQ(worker_.cudaFree(ptr), CudaError::kSuccess);
  EXPECT_EQ(worker_.cudaFree(ptr), CudaError::kErrorInvalidDevicePointer);  // double free
  EXPECT_GE(worker_.stats().errors_flagged, 2u);
}

TEST_F(EmulatorTest, HostAllocSeparateFromDevice) {
  DevPtr host = 0;
  ASSERT_EQ(worker_.cudaHostAlloc(&host, 4096), CudaError::kSuccess);
  EXPECT_EQ(worker_.used_device_bytes(), 0u);
  EXPECT_EQ(worker_.cudaFreeHost(host), CudaError::kSuccess);
  EXPECT_EQ(worker_.cudaFreeHost(host), CudaError::kErrorInvalidValue);
}

// ---- Memcpy validation ------------------------------------------------------------

TEST_F(EmulatorTest, MemcpyValidatesDevicePointers) {
  DevPtr device = 0;
  ASSERT_EQ(worker_.cudaMalloc(&device, 4096), CudaError::kSuccess);
  // Valid H2D (host side unvalidated).
  EXPECT_EQ(worker_.cudaMemcpyAsync(device, 0x1000, 4096, MemcpyKind::kHostToDevice,
                                    StreamHandle{0}),
            CudaError::kSuccess);
  // Bad destination device pointer.
  EXPECT_EQ(worker_.cudaMemcpyAsync(0xbad, 0x1000, 16, MemcpyKind::kHostToDevice,
                                    StreamHandle{0}),
            CudaError::kErrorInvalidDevicePointer);
  // Bad source device pointer.
  EXPECT_EQ(worker_.cudaMemcpyAsync(0x1000, 0xbad, 16, MemcpyKind::kDeviceToHost,
                                    StreamHandle{0}),
            CudaError::kErrorInvalidDevicePointer);
}

TEST_F(EmulatorTest, SmallD2hCopiesAreMocked) {
  DevPtr device = 0;
  ASSERT_EQ(worker_.cudaMalloc(&device, 1 << 20), CudaError::kSuccess);
  EXPECT_EQ(worker_.cudaMemcpyAsync(0x1000, device, 128, MemcpyKind::kDeviceToHost,
                                    StreamHandle{0}),
            CudaError::kSuccess);
  EXPECT_EQ(worker_.stats().mocked_small_copies, 1u);
  // Large copies are not mocked.
  EXPECT_EQ(worker_.cudaMemcpyAsync(0x1000, device, 1 << 20, MemcpyKind::kDeviceToHost,
                                    StreamHandle{0}),
            CudaError::kSuccess);
  EXPECT_EQ(worker_.stats().mocked_small_copies, 1u);
}

TEST_F(EmulatorTest, SyncMemcpyAppendsStreamSynchronize) {
  DevPtr device = 0;
  ASSERT_EQ(worker_.cudaMalloc(&device, 4096), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudaMemcpy(device, 0x1000, 4096, MemcpyKind::kHostToDevice),
            CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  ASSERT_GE(trace.ops.size(), 3u);  // malloc + copy kernel + sync
  EXPECT_EQ(trace.ops.back().type, TraceOpType::kStreamSynchronize);
}

// ---- Streams and events --------------------------------------------------------------

TEST_F(EmulatorTest, StreamLifecycle) {
  StreamHandle stream;
  ASSERT_EQ(worker_.cudaStreamCreate(&stream), CudaError::kSuccess);
  EXPECT_NE(stream.id, 0u);
  EXPECT_EQ(worker_.cudaStreamSynchronize(stream), CudaError::kSuccess);
  EXPECT_EQ(worker_.cudaStreamDestroy(stream), CudaError::kSuccess);
  // Using a destroyed stream is flagged.
  EXPECT_EQ(worker_.cudaStreamSynchronize(stream), CudaError::kErrorInvalidResourceHandle);
  // The default stream cannot be destroyed.
  EXPECT_EQ(worker_.cudaStreamDestroy(StreamHandle{0}), CudaError::kErrorInvalidResourceHandle);
}

TEST_F(EmulatorTest, EventVersioningTracksReuse) {
  EventHandle event;
  ASSERT_EQ(worker_.cudaEventCreate(&event), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudaEventRecord(event, StreamHandle{0}), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudaEventRecord(event, StreamHandle{0}), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudaStreamWaitEvent(StreamHandle{0}, event), CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  ASSERT_EQ(trace.ops.size(), 3u);
  EXPECT_EQ(trace.ops[0].event.version, 1u);
  EXPECT_EQ(trace.ops[1].event.version, 2u);
  // The wait binds to the most recent record.
  EXPECT_EQ(trace.ops[2].event.version, 2u);
}

TEST_F(EmulatorTest, WaitOnUnrecordedEventIsVersionZero) {
  EventHandle event;
  ASSERT_EQ(worker_.cudaEventCreate(&event), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudaStreamWaitEvent(StreamHandle{0}, event), CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  EXPECT_EQ(trace.ops.back().event.version, 0u);
}

TEST_F(EmulatorTest, InvalidEventHandleFlagged) {
  EXPECT_EQ(worker_.cudaEventRecord(EventHandle{999}, StreamHandle{0}),
            CudaError::kErrorInvalidResourceHandle);
  EXPECT_EQ(worker_.cudaEventSynchronize(EventHandle{999}),
            CudaError::kErrorInvalidResourceHandle);
}

// ---- Context-aware library protocols ---------------------------------------------------

TEST_F(EmulatorTest, CublasInheritsBoundStream) {
  CublasHandle cublas;
  ASSERT_EQ(worker_.cublasCreate(&cublas), CudaError::kSuccess);
  StreamHandle stream;
  ASSERT_EQ(worker_.cudaStreamCreate(&stream), CudaError::kSuccess);
  ASSERT_EQ(worker_.cublasSetStream(cublas, stream), CudaError::kSuccess);
  ASSERT_EQ(worker_.cublasGemmEx(cublas, 128, 128, 128, DType::kBf16), CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  ASSERT_EQ(trace.ops.size(), 1u);
  EXPECT_EQ(trace.ops[0].type, TraceOpType::kKernelLaunch);
  EXPECT_EQ(trace.ops[0].stream, stream.id);  // context-aware modeling (§4.1)
  EXPECT_EQ(trace.ops[0].kernel.kind, KernelKind::kGemm);
}

TEST_F(EmulatorTest, GemmWithInvalidHandleFlagged) {
  EXPECT_EQ(worker_.cublasGemmEx(CublasHandle{404}, 8, 8, 8, DType::kFp32),
            CudaError::kErrorInvalidResourceHandle);
}

TEST_F(EmulatorTest, CudnnDescriptorProtocolBuildsConvMetadata) {
  CudnnHandle cudnn;
  ASSERT_EQ(worker_.cudnnCreate(&cudnn), CudaError::kSuccess);
  CudnnTensorDesc x_desc;
  CudnnFilterDesc w_desc;
  CudnnConvDesc conv_desc;
  ASSERT_EQ(worker_.cudnnCreateTensorDescriptor(&x_desc), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudnnCreateFilterDescriptor(&w_desc), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudnnCreateConvolutionDescriptor(&conv_desc), CudaError::kSuccess);
  // Calling the convolution before descriptors are configured is an error
  // the emulator detects (§4.1 "Resource Tracking").
  EXPECT_EQ(worker_.cudnnConvolutionForward(cudnn, x_desc, w_desc, conv_desc),
            CudaError::kErrorInvalidValue);
  ASSERT_EQ(worker_.cudnnSetTensor4dDescriptor(x_desc, 8, 64, 56, 56, DType::kFp32),
            CudaError::kSuccess);
  ASSERT_EQ(worker_.cudnnSetFilter4dDescriptor(w_desc, 128, 64, 3, 3, DType::kFp32),
            CudaError::kSuccess);
  ASSERT_EQ(worker_.cudnnSetConvolution2dDescriptor(conv_desc, 1, 1), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudnnConvolutionForward(cudnn, x_desc, w_desc, conv_desc),
            CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  ASSERT_EQ(trace.ops.size(), 1u);
  const KernelDesc& kernel = trace.ops[0].kernel;
  EXPECT_EQ(kernel.kind, KernelKind::kConvForward);
  EXPECT_EQ(kernel.params[0], 8);    // N assembled from the tensor descriptor
  EXPECT_EQ(kernel.params[4], 128);  // K from the filter descriptor
}

// ---- NCCL ------------------------------------------------------------------------------

TEST_F(EmulatorTest, CommInitRecordsMembershipEvidence) {
  NcclUniqueId id;
  ASSERT_EQ(worker_.ncclGetUniqueId(&id), CudaError::kSuccess);
  NcclComm comm;
  ASSERT_EQ(worker_.ncclCommInitRank(&comm, 4, id, 2), CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  ASSERT_EQ(trace.comm_inits.size(), 1u);
  EXPECT_EQ(trace.comm_inits[0].comm_uid, id.value);
  EXPECT_EQ(trace.comm_inits[0].nranks, 4);
  EXPECT_EQ(trace.comm_inits[0].rank_in_comm, 2);
}

TEST_F(EmulatorTest, CommInitRejectsBadArguments) {
  NcclUniqueId id{77};
  NcclComm comm;
  EXPECT_EQ(worker_.ncclCommInitRank(&comm, 0, id, 0), CudaError::kErrorInvalidValue);
  EXPECT_EQ(worker_.ncclCommInitRank(&comm, 4, id, 4), CudaError::kErrorInvalidValue);
  EXPECT_EQ(worker_.ncclCommInitRank(&comm, 4, NcclUniqueId{0}, 1),
            CudaError::kErrorInvalidValue);
}

TEST_F(EmulatorTest, CollectivesCarrySequenceNumbers) {
  NcclUniqueId id;
  ASSERT_EQ(worker_.ncclGetUniqueId(&id), CudaError::kSuccess);
  NcclComm comm;
  ASSERT_EQ(worker_.ncclCommInitRank(&comm, 2, id, 0), CudaError::kSuccess);
  ASSERT_EQ(worker_.ncclAllReduce(1000, DType::kBf16, NcclRedOp::kSum, comm, StreamHandle{0}),
            CudaError::kSuccess);
  ASSERT_EQ(worker_.ncclAllReduce(1000, DType::kBf16, NcclRedOp::kSum, comm, StreamHandle{0}),
            CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  ASSERT_EQ(trace.ops.size(), 2u);
  EXPECT_EQ(trace.ops[0].collective.seq, 0u);
  EXPECT_EQ(trace.ops[1].collective.seq, 1u);
  EXPECT_EQ(trace.ops[0].collective.bytes, 2000u);  // count * sizeof(bf16)
  EXPECT_EQ(trace.ops[0].collective.comm_uid, id.value);
}

TEST_F(EmulatorTest, AllGatherPayloadIsFullBuffer) {
  NcclUniqueId id;
  ASSERT_EQ(worker_.ncclGetUniqueId(&id), CudaError::kSuccess);
  NcclComm comm;
  ASSERT_EQ(worker_.ncclCommInitRank(&comm, 4, id, 0), CudaError::kSuccess);
  ASSERT_EQ(worker_.ncclAllGather(100, DType::kFp32, comm, StreamHandle{0}),
            CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  EXPECT_EQ(trace.ops[0].collective.bytes, 100u * 4 * 4);
}

TEST_F(EmulatorTest, GroupedP2pFlushedAtGroupEnd) {
  NcclUniqueId id;
  ASSERT_EQ(worker_.ncclGetUniqueId(&id), CudaError::kSuccess);
  NcclComm comm;
  ASSERT_EQ(worker_.ncclCommInitRank(&comm, 2, id, 0), CudaError::kSuccess);
  ASSERT_EQ(worker_.ncclGroupStart(), CudaError::kSuccess);
  ASSERT_EQ(worker_.ncclSend(10, DType::kBf16, 1, comm, StreamHandle{0}), CudaError::kSuccess);
  ASSERT_EQ(worker_.ncclRecv(10, DType::kBf16, 1, comm, StreamHandle{0}), CudaError::kSuccess);
  EXPECT_EQ(worker_.TakeTrace().ops.size(), 0u);  // still batched
  ASSERT_EQ(worker_.ncclGroupEnd(), CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  ASSERT_EQ(trace.ops.size(), 2u);
  EXPECT_EQ(trace.ops[0].collective.kind, CollectiveKind::kSend);
  EXPECT_EQ(trace.ops[1].collective.kind, CollectiveKind::kRecv);
}

TEST_F(EmulatorTest, GroupEndWithoutStartFlagged) {
  EXPECT_EQ(worker_.ncclGroupEnd(), CudaError::kErrorInvalidValue);
}

// ---- Host delay measurement ----------------------------------------------------------

TEST_F(EmulatorTest, HostDelaysMeasuredFromClock) {
  clock_.Advance(5.0);
  ASSERT_EQ(worker_.cudaLaunchKernel(MakeElementwise(128, DType::kBf16), StreamHandle{0}),
            CudaError::kSuccess);
  clock_.Advance(11.0);
  ASSERT_EQ(worker_.cudaLaunchKernel(MakeElementwise(128, DType::kBf16), StreamHandle{0}),
            CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  ASSERT_EQ(trace.ops.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.ops[0].host_delay_us, 5.0);
  EXPECT_DOUBLE_EQ(trace.ops[1].host_delay_us, 11.0);
}

TEST_F(EmulatorTest, TakeTraceRecordsPeakMemory) {
  DevPtr ptr = 0;
  ASSERT_EQ(worker_.cudaMalloc(&ptr, 1 << 20), CudaError::kSuccess);
  ASSERT_EQ(worker_.cudaFree(ptr), CudaError::kSuccess);
  const WorkerTrace trace = worker_.TakeTrace();
  EXPECT_EQ(trace.peak_device_bytes, 1u << 20);
  EXPECT_EQ(trace.final_device_bytes, 0u);
  EXPECT_EQ(trace.rank, 0);
}

TEST(JobEmulationTest, BootstrapIdsAreUniqueAndShared) {
  JobEmulation emulation(EmulationSpec{H100Cluster(8)});
  const NcclUniqueId a = emulation.bootstrap().CreateUniqueId();
  const NcclUniqueId b = emulation.bootstrap().CreateUniqueId();
  EXPECT_NE(a.value, b.value);
  EXPECT_NE(a.value, 0u);
}

TEST(JobEmulationTest, TracesReturnedInRankOrder) {
  JobEmulation emulation(EmulationSpec{H100Cluster(8)});
  VirtualHostClock clock;
  emulation.CreateWorker(2, &clock);
  emulation.CreateWorker(0, &clock);
  emulation.CreateWorker(1, &clock);
  const std::vector<WorkerTrace> traces = emulation.TakeTraces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].rank, 0);
  EXPECT_EQ(traces[1].rank, 1);
  EXPECT_EQ(traces[2].rank, 2);
}

}  // namespace
}  // namespace maya
