// Estimator serialization + ArtifactStore bundle tests: bit-identical
// round-trips of forests, estimators, datasets and estimate caches, plus
// version/cluster guard rails on load.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "src/common/fault_injection.h"
#include "src/core/estimator_bank.h"
#include "src/estimator/profiler_repository.h"
#include "src/estimator/serialization.h"
#include "src/groundtruth/executor.h"
#include "src/service/artifact_store.h"
#include "src/service/service_engine.h"

namespace maya {
namespace {

std::string TempBundleDir(const char* name) {
  const std::string dir = (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);  // stale bundles from earlier runs
  return dir;
}

TEST(DoubleBitsTest, RoundTripsExactBitPatterns) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           3.14159265358979,
                           1e-308,   // subnormal territory
                           1.7976931348623157e308,
                           0.1};     // classic non-terminating binary fraction
  for (double value : values) {
    Result<double> round = DoubleFromBits(DoubleBits(value));
    ASSERT_TRUE(round.ok());
    EXPECT_EQ(std::bit_cast<uint64_t>(*round), std::bit_cast<uint64_t>(value));
  }
}

TEST(DoubleBitsTest, RejectsMalformedPatterns) {
  EXPECT_FALSE(DoubleFromBits("").ok());
  EXPECT_FALSE(DoubleFromBits("12345").ok());
  EXPECT_FALSE(DoubleFromBits("zzzzzzzzzzzzzzzz").ok());
}

TEST(KernelDescExactTest, RoundTripPreservesIdentity) {
  const KernelDesc kernel = MakeGemm(4096, 1024, 333, DType::kBf16, 7);
  JsonWriter w;
  WriteKernelDescExact(w, kernel);
  Result<JsonValue> value = ParseJson(w.str());
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  Result<KernelDesc> parsed = ParseKernelDescExact(*value);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Full equality, including the derived flop/byte doubles: the desc is an
  // estimate-cache key, so any lost bit would demote hits to misses.
  EXPECT_TRUE(*parsed == kernel);
  EXPECT_EQ(parsed->Hash(), kernel.Hash());
}

TEST(ForestSerializationTest, RoundTripPredictsBitIdentically) {
  Dataset data;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.NextDouble() * 10.0;
    const double b = rng.NextDouble() * 4.0;
    data.Add({a, b, a * b}, std::sin(a) + b * b);
  }
  RandomForestOptions options;
  options.num_trees = 8;
  RandomForestRegressor forest(options);
  forest.Fit(data);

  JsonWriter w;
  WriteRandomForest(w, forest);
  Result<JsonValue> value = ParseJson(w.str());
  ASSERT_TRUE(value.ok());
  Result<RandomForestRegressor> restored = ParseRandomForest(*value);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_TRUE(restored->trained());
  for (int i = 0; i < 50; ++i) {
    const double a = rng.NextDouble() * 12.0 - 1.0;  // includes out-of-range
    const double b = rng.NextDouble() * 5.0;
    const std::vector<double> features = {a, b, a * b};
    EXPECT_EQ(forest.Predict(features), restored->Predict(features));
  }
}

TEST(ForestSerializationTest, RejectsCorruptTrees) {
  EXPECT_FALSE(ParseRandomForest(JsonValue()).ok());
  Result<JsonValue> missing_trees = ParseJson(
      R"({"options":{"num_trees":1,"max_depth":1,"min_samples_leaf":1,)"
      R"("feature_fraction":"3fe8000000000000","sample_fraction":"3feb333333333333",)"
      R"("seed":17},"trees":[]})");
  ASSERT_TRUE(missing_trees.ok());
  EXPECT_FALSE(ParseRandomForest(*missing_trees).ok());
  // A branch node pointing outside the node array must be rejected.
  Result<JsonValue> bad_child = ParseJson(
      R"({"options":{"num_trees":1,"max_depth":1,"min_samples_leaf":1,)"
      R"("feature_fraction":"3fe8000000000000","sample_fraction":"3feb333333333333",)"
      R"("seed":17},"trees":[{"feature":[0],"threshold":["3ff0000000000000"],)"
      R"("left":[5],"right":[1],"value":["3ff0000000000000"]}]})");
  ASSERT_TRUE(bad_child.ok());
  EXPECT_FALSE(ParseRandomForest(*bad_child).ok());
}

TEST(DatasetSerializationTest, RoundTripsExactly) {
  Dataset data;
  data.Add({1.0, 0.25, 1e-9}, 42.0);
  data.Add({2.0, 0.1, 3.0}, -7.5);
  JsonWriter w;
  WriteDataset(w, data);
  Result<JsonValue> value = ParseJson(w.str());
  ASSERT_TRUE(value.ok());
  Result<Dataset> restored = ParseDataset(*value);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), data.size());
  EXPECT_EQ(restored->x, data.x);
  EXPECT_EQ(restored->y, data.y);
}

// Shared trained bank for the estimator/bundle tests (training dominates the
// test runtime, so do it once).
class ArtifactStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 42);
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, sweep));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  static std::vector<KernelDesc> ProbeKernels() {
    std::vector<KernelDesc> kernels;
    for (int64_t m : {64, 512, 2048}) {
      kernels.push_back(MakeGemm(m, 1024, 512, DType::kBf16));
      kernels.push_back(MakeLayerNorm(KernelKind::kLayerNormForward, m * 8, 1024, DType::kBf16));
      kernels.push_back(MakeElementwise(m * 4096, DType::kBf16, 2));
    }
    return kernels;
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
};

ClusterSpec* ArtifactStoreTest::cluster_ = nullptr;
GroundTruthExecutor* ArtifactStoreTest::executor_ = nullptr;
EstimatorBank* ArtifactStoreTest::bank_ = nullptr;

TEST_F(ArtifactStoreTest, KernelEstimatorRoundTripBitIdentical) {
  JsonWriter w;
  WriteKernelEstimator(w, *bank_->kernel);
  Result<JsonValue> value = ParseJson(w.str());
  ASSERT_TRUE(value.ok());
  Result<std::unique_ptr<RandomForestKernelEstimator>> restored = ParseKernelEstimator(*value);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const KernelDesc& kernel : ProbeKernels()) {
    EXPECT_EQ(bank_->kernel->PredictUs(kernel), (*restored)->PredictUs(kernel))
        << kernel.ToString();
  }
  // The validation split round-trips through the bundle too.
  JsonWriter dataset_writer;
  WriteKernelDataset(dataset_writer, bank_->kernel_validation);
  Result<JsonValue> dataset_value = ParseJson(dataset_writer.str());
  ASSERT_TRUE(dataset_value.ok());
  Result<KernelDataset> dataset = ParseKernelDataset(*dataset_value);
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->size(), bank_->kernel_validation.size());
  for (size_t i = 0; i < dataset->size(); ++i) {
    EXPECT_TRUE((*dataset)[i].kernel == bank_->kernel_validation[i].kernel);
    EXPECT_EQ((*dataset)[i].runtime_us, bank_->kernel_validation[i].runtime_us);
  }
}

TEST_F(ArtifactStoreTest, CollectiveEstimatorRoundTripBitIdentical) {
  JsonWriter w;
  WriteCollectiveEstimator(w, *bank_->collective);
  Result<JsonValue> value = ParseJson(w.str());
  ASSERT_TRUE(value.ok());
  Result<std::unique_ptr<ProfiledCollectiveEstimator>> restored =
      ParseCollectiveEstimator(*value);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->group_count(), bank_->collective->group_count());
  for (uint64_t bytes : {1u << 12, 1u << 20, 1u << 26}) {
    for (int nranks : {2, 4, 8}) {
      CollectiveRequest request;
      request.kind = CollectiveKind::kAllReduce;
      request.bytes = bytes;
      for (int rank = 0; rank < nranks; ++rank) {
        request.ranks.push_back(rank);
      }
      EXPECT_EQ(bank_->collective->PredictUs(request, *cluster_),
                (*restored)->PredictUs(request, *cluster_));
    }
  }
}

TEST_F(ArtifactStoreTest, BundleSaveLoadWarmsCaches) {
  const std::string dir = TempBundleDir("bundle_warm");
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  // Populate the caches with a few estimates.
  for (const KernelDesc& kernel : ProbeKernels()) {
    JobTrace job;
    job.world_size = 1;
    WorkerTrace worker;
    worker.rank = 0;
    TraceOp op;
    op.type = TraceOpType::kKernelLaunch;
    op.kernel = kernel;
    worker.ops.push_back(op);
    job.workers.push_back(worker);
    pipeline.AnnotateDurations(job, nullptr);
  }
  const uint64_t resident = pipeline.KernelCacheStats().entries;
  ASSERT_GT(resident, 0u);

  ArtifactStore store(dir);
  EXPECT_FALSE(store.Exists());
  ASSERT_TRUE(store.Save(*cluster_, *bank_, pipeline).ok());
  EXPECT_TRUE(store.Exists());

  Result<ArtifactManifest> manifest = store.ReadManifest();
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->version, kArtifactBundleVersion);
  EXPECT_EQ(manifest->kernel_cache_entries, resident);

  Result<EstimatorBank> loaded = store.LoadEstimators(*cluster_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  MayaPipeline warm(*cluster_, loaded->kernel.get(), loaded->collective.get());
  Result<uint64_t> imported = store.WarmPipeline(warm);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_GE(*imported, resident);
  EXPECT_EQ(warm.KernelCacheStats().entries, resident);

  // Every cached estimate answers identically to the original pipeline's.
  for (const auto& [kernel, duration_us] : pipeline.SnapshotKernelEstimates()) {
    bool found = false;
    for (const auto& [warm_kernel, warm_duration] : warm.SnapshotKernelEstimates()) {
      if (warm_kernel == kernel) {
        EXPECT_EQ(warm_duration, duration_us);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "cache entry missing after warm start";
  }
}

TEST_F(ArtifactStoreTest, SimCachePersistsAndReplaysBitIdentical) {
  // A warm-started server replays repeated components from the persisted
  // stage-4 cache with the saving process's exact timelines.
  const std::string dir = TempBundleDir("bundle_sim_cache");
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  PredictionRequest request{model, config};
  const Result<PredictionReport> cold = pipeline.Predict(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  const uint64_t resident = pipeline.SimCacheStats().entries;
  ASSERT_GT(resident, 0u);

  ArtifactStore store(dir);
  ASSERT_TRUE(store.Save(*cluster_, *bank_, pipeline).ok());
  Result<ArtifactManifest> manifest = store.ReadManifest();
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->deployments.front().sim_cache_entries, resident);

  Result<EstimatorBank> loaded = store.LoadEstimators(*cluster_);
  ASSERT_TRUE(loaded.ok());
  MayaPipeline warm(*cluster_, loaded->kernel.get(), loaded->collective.get());
  Result<uint64_t> imported = store.WarmPipeline(warm);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(warm.SimCacheStats().entries, resident);

  const Result<PredictionReport> replayed = warm.Predict(request);
  ASSERT_TRUE(replayed.ok());
  EXPECT_GT(replayed->simulation.cache_hits, 0u);
  EXPECT_EQ(replayed->simulation.simulated_components, 0u);
  EXPECT_EQ(replayed->iteration_time_us, cold->iteration_time_us);
  EXPECT_EQ(replayed->mfu, cold->mfu);
}

TEST_F(ArtifactStoreTest, LoadRejectsClusterMismatch) {
  const std::string dir = TempBundleDir("bundle_cluster_mismatch");
  ArtifactStore store(dir);
  ASSERT_TRUE(store.SaveEstimators(*cluster_, *bank_).ok());
  const Result<EstimatorBank> wrong = store.LoadEstimators(H100Cluster(16));
  EXPECT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ArtifactStoreTest, LoadRejectsVersionMismatch) {
  const std::string dir = TempBundleDir("bundle_version_mismatch");
  ArtifactStore store(dir);
  ASSERT_TRUE(store.SaveEstimators(*cluster_, *bank_).ok());
  // Corrupt the version in place.
  const std::string manifest_path =
      (std::filesystem::path(dir) / "manifest.json").string();
  std::ifstream in(manifest_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();
  const std::string needle = "\"version\":1";
  const size_t pos = contents.find(needle);
  ASSERT_NE(pos, std::string::npos);
  contents.replace(pos, needle.size(), "\"version\":999");
  std::ofstream out(manifest_path, std::ios::trunc);
  out << contents;
  out.close();
  const Result<EstimatorBank> wrong = store.LoadEstimators(*cluster_);
  EXPECT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ArtifactStoreTest, MissingBundleReportsNotFound) {
  ArtifactStore store(TempBundleDir("bundle_absent"));
  EXPECT_FALSE(store.Exists());
  EXPECT_FALSE(store.ReadManifest().ok());
  EXPECT_FALSE(store.LoadEstimators(*cluster_).ok());
}

// ---- v2 multi-deployment bundles -------------------------------------------

TEST_F(ArtifactStoreTest, V1BundleLoadsAsSingleDefaultDeployment) {
  const std::string dir = TempBundleDir("bundle_v1_compat");
  ArtifactStore store(dir);
  ASSERT_TRUE(store.SaveEstimators(*cluster_, *bank_).ok());

  Result<ArtifactManifest> manifest = store.ReadManifest();
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->version, kArtifactBundleVersion);
  ASSERT_EQ(manifest->deployments.size(), 1u);
  EXPECT_EQ(manifest->deployments[0].name, kDefaultDeploymentName);

  Result<std::vector<LoadedDeployment>> loaded = store.LoadDeployments();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].name, kDefaultDeploymentName);
  EXPECT_EQ(ArtifactStore::ClusterSignature((*loaded)[0].cluster),
            ArtifactStore::ClusterSignature(*cluster_));
  for (const KernelDesc& kernel : ProbeKernels()) {
    EXPECT_EQ(bank_->kernel->PredictUs(kernel), (*loaded)[0].bank.kernel->PredictUs(kernel));
  }
}

TEST_F(ArtifactStoreTest, V2RegistryRoundTripsBothBanksBitExact) {
  const std::string dir = TempBundleDir("bundle_v2_fleet");

  // A two-arch fleet: the shared H100 fixture bank re-trained (owned) plus a
  // V100 bank, each with a warmed pipeline so per-deployment caches persist.
  ProfileSweepOptions small_sweep;
  small_sweep.gemm_samples = 800;
  small_sweep.conv_samples = 60;
  small_sweep.generic_samples = 40;
  small_sweep.collective_sizes = 8;
  const ClusterSpec v100 = V100Cluster(8);
  GroundTruthExecutor h100_hardware(*cluster_, 42);
  GroundTruthExecutor v100_hardware(v100, 43);

  DeploymentRegistry registry;
  Result<std::shared_ptr<const Deployment>> h100_deployment = registry.Register(
      "h100x8", *cluster_, TrainEstimators(*cluster_, h100_hardware, small_sweep));
  ASSERT_TRUE(h100_deployment.ok());
  Result<std::shared_ptr<const Deployment>> v100_deployment =
      registry.Register("v100x8", v100, TrainEstimators(v100, v100_hardware, small_sweep));
  ASSERT_TRUE(v100_deployment.ok());
  // Warm both pipelines' estimate caches with a probe trace each.
  for (const std::shared_ptr<const Deployment>& deployment :
       {*h100_deployment, *v100_deployment}) {
    JobTrace job;
    job.world_size = 1;
    WorkerTrace worker;
    worker.rank = 0;
    for (const KernelDesc& kernel : ProbeKernels()) {
      TraceOp op;
      op.type = TraceOpType::kKernelLaunch;
      op.kernel = kernel;
      worker.ops.push_back(op);
    }
    job.workers.push_back(worker);
    deployment->pipeline->AnnotateDurations(job, nullptr);
  }

  ArtifactStore store(dir);
  ASSERT_TRUE(store.SaveRegistry(registry).ok());

  Result<ArtifactManifest> manifest = store.ReadManifest();
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->version, kArtifactBundleVersionMulti);
  ASSERT_EQ(manifest->deployments.size(), 2u);
  EXPECT_EQ(manifest->deployments[0].name, "h100x8");
  EXPECT_EQ(manifest->deployments[1].name, "v100x8");
  EXPECT_GT(manifest->deployments[0].kernel_cache_entries, 0u);

  Result<std::vector<LoadedDeployment>> loaded = store.LoadDeployments();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  const std::shared_ptr<const Deployment> sources[] = {*h100_deployment, *v100_deployment};
  for (size_t i = 0; i < loaded->size(); ++i) {
    const LoadedDeployment& restored = (*loaded)[i];
    const Deployment& source = *sources[i];
    EXPECT_EQ(restored.name, source.name);
    EXPECT_EQ(ArtifactStore::ClusterSignature(restored.cluster),
              ArtifactStore::ClusterSignature(source.cluster));
    // Hex-double identity: every probe prediction is bit-exact per bank.
    for (const KernelDesc& kernel : ProbeKernels()) {
      EXPECT_EQ(source.kernel_estimator->PredictUs(kernel),
                restored.bank.kernel->PredictUs(kernel))
          << restored.name << " " << kernel.ToString();
    }
    // Per-deployment caches warm a fresh pipeline with every saved entry.
    MayaPipeline warm(restored.cluster, restored.bank.kernel.get(),
                      restored.bank.collective.get());
    Result<uint64_t> imported = store.WarmPipeline(restored.name, warm);
    ASSERT_TRUE(imported.ok()) << imported.status().ToString();
    EXPECT_EQ(warm.KernelCacheStats().entries, source.pipeline->KernelCacheStats().entries);
    for (const auto& [kernel, duration_us] : source.pipeline->SnapshotKernelEstimates()) {
      bool found = false;
      for (const auto& [warm_kernel, warm_duration] : warm.SnapshotKernelEstimates()) {
        if (warm_kernel == kernel) {
          EXPECT_EQ(warm_duration, duration_us);
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "cache entry missing after v2 warm start";
    }
  }
  // The two banks answer differently (different arch + hardware): loading
  // must not have cross-wired the deployments.
  EXPECT_NE((*loaded)[0].bank.kernel->PredictUs(ProbeKernels()[0]),
            (*loaded)[1].bank.kernel->PredictUs(ProbeKernels()[0]));

  // A v1-style load against the v2 bundle picks the matching cluster...
  Result<EstimatorBank> by_cluster = store.LoadEstimators(v100);
  ASSERT_TRUE(by_cluster.ok()) << by_cluster.status().ToString();
  EXPECT_EQ(by_cluster->kernel->PredictUs(ProbeKernels()[0]),
            (*loaded)[1].bank.kernel->PredictUs(ProbeKernels()[0]));
  // ...and refuses clusters the fleet was not trained for.
  EXPECT_FALSE(store.LoadEstimators(A40Node()).ok());
  // Warm-pipeline lookups by unknown deployment name fail cleanly.
  MayaPipeline fresh(*cluster_, bank_->kernel.get(), bank_->collective.get());
  EXPECT_EQ(store.WarmPipeline("nope", fresh).status().code(), StatusCode::kNotFound);
}

// ---- Corruption and crash-mid-save robustness -------------------------------

namespace corruption {

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

}  // namespace corruption

// Every bundle file kind, truncated or bit-flipped on disk, must fail the
// full warm-start path with a clean Status — never an abort — after which a
// cold start still serves (the maya_serve fallback contract).
TEST_F(ArtifactStoreTest, CorruptionMatrixRejectsEveryFileKindCleanly) {
  const std::string dir = TempBundleDir("bundle_corruption_matrix");
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  PredictionRequest request{model, config};
  ASSERT_TRUE(pipeline.Predict(request).ok());  // populate all three caches
  ASSERT_GT(pipeline.KernelCacheStats().entries, 0u);
  ASSERT_GT(pipeline.CollectiveCacheStats().entries, 0u);
  ASSERT_GT(pipeline.SimCacheStats().entries, 0u);

  ArtifactStore store(dir);
  ASSERT_TRUE(store.Save(*cluster_, *bank_, pipeline).ok());

  const char* kFileKinds[] = {"manifest.json",         "kernel_estimator.json",
                              "collective_estimator.json", "kernel_validation.json",
                              "kernel_cache.json",     "collective_cache.json",
                              "sim_cache.json"};
  for (const char* file : kFileKinds) {
    const std::string path = (std::filesystem::path(dir) / file).string();
    const std::string pristine = corruption::ReadBytes(path);
    ASSERT_GT(pristine.size(), 64u) << file;

    // Torn write: only the first half of the file made it to disk.
    corruption::WriteBytes(path, pristine.substr(0, pristine.size() / 2));
    Result<std::unique_ptr<ServiceEngine>> truncated =
        ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{});
    EXPECT_FALSE(truncated.ok()) << file << " truncated";

    // Bit rot: a 16-byte span in the middle goes high-bit garbage.
    std::string flipped = pristine;
    const size_t middle = flipped.size() / 2;
    for (size_t i = middle; i < std::min(middle + 16, flipped.size()); ++i) {
      flipped[i] ^= 0x80;
    }
    corruption::WriteBytes(path, flipped);
    Result<std::unique_ptr<ServiceEngine>> rotted =
        ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{});
    EXPECT_FALSE(rotted.ok()) << file << " bit-flipped";

    corruption::WriteBytes(path, pristine);
  }

  // The restored pristine bundle still warm-starts...
  Result<std::unique_ptr<ServiceEngine>> healthy =
      ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{});
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  (*healthy)->Shutdown();
  // ...and a rejected bundle falls back to a cold start that serves.
  Result<std::unique_ptr<ServiceEngine>> cold = ServiceEngine::Create(
      *cluster_, bank_->kernel.get(), bank_->collective.get(), ServiceEngineOptions{});
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ServiceRequest predict;
  predict.id = 1;
  PredictPayload payload;
  payload.model = model;
  payload.config = config;
  predict.payload = std::move(payload);
  const ServiceResponse response = (*cold)->Submit(std::move(predict)).get();
  EXPECT_TRUE(response.ok) << response.error;
  (*cold)->Shutdown();
}

// Injected save-path faults (the same sites `maya_serve --fault_spec` arms):
// a short write or torn rename fails the save and never publishes a loadable
// bundle; silent corruption publishes but is caught at load time.
TEST_F(ArtifactStoreTest, SaveFaultsNeverPublishLoadableTornBundles) {
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  FaultInjection& faults = FaultInjection::Instance();

  {
    const std::string dir = TempBundleDir("bundle_fault_short_write");
    ArtifactStore store(dir);
    ASSERT_TRUE(faults.Configure("artifact.write_short=1@1", 3).ok());
    EXPECT_FALSE(store.Save(*cluster_, *bank_, pipeline).ok());
    faults.Disarm();
    // The manifest is written last, so a failed save is never loadable.
    EXPECT_FALSE(store.Exists());
    EXPECT_FALSE(ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{}).ok());
  }
  {
    const std::string dir = TempBundleDir("bundle_fault_rename_torn");
    ArtifactStore store(dir);
    ASSERT_TRUE(faults.Configure("artifact.rename_torn=1@1", 3).ok());
    EXPECT_FALSE(store.Save(*cluster_, *bank_, pipeline).ok());
    faults.Disarm();
    EXPECT_FALSE(store.Exists());
  }
  {
    // Silent corruption: every write's payload takes a mid-file bit flip.
    // The save itself reports success — only the load-side parse detects it.
    const std::string dir = TempBundleDir("bundle_fault_corrupt");
    ArtifactStore store(dir);
    ASSERT_TRUE(faults.Configure("artifact.corrupt=1", 3).ok());
    EXPECT_TRUE(store.Save(*cluster_, *bank_, pipeline).ok());
    faults.Disarm();
    EXPECT_TRUE(store.Exists());
    EXPECT_FALSE(ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{}).ok());
  }
  {
    // Read-side faults surface as clean load failures too.
    const std::string dir = TempBundleDir("bundle_fault_read");
    ArtifactStore store(dir);
    ASSERT_TRUE(store.Save(*cluster_, *bank_, pipeline).ok());
    ASSERT_TRUE(faults.Configure("artifact.read=1@1", 3).ok());
    EXPECT_FALSE(ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{}).ok());
    faults.Disarm();
    // With the fault gone the same bundle loads.
    Result<std::unique_ptr<ServiceEngine>> recovered =
        ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{});
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    (*recovered)->Shutdown();
  }
}

// ---- Stage-total persistence ------------------------------------------------

TEST_F(ArtifactStoreTest, StageTotalsRoundTripAcrossRestart) {
  const std::string dir = TempBundleDir("bundle_stage_totals");

  ProfileSweepOptions small_sweep;
  small_sweep.gemm_samples = 800;
  small_sweep.conv_samples = 60;
  small_sweep.generic_samples = 40;
  small_sweep.collective_sizes = 8;
  GroundTruthExecutor profiling(*cluster_, 42);

  // Process 1: serve a few predicts, persist the bundle with usage totals.
  Result<std::unique_ptr<ServiceEngine>> created = ServiceEngine::Create(
      *cluster_, TrainEstimators(*cluster_, profiling, small_sweep), ServiceEngineOptions{});
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ServiceEngine& original = **created;
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  for (int tp : {1, 2}) {
    ServiceRequest request;
    request.id = static_cast<uint64_t>(tp);
    PredictPayload payload;
    payload.model = model;
    payload.config.global_batch_size = 32;
    payload.config.tensor_parallel = tp;
    payload.config.pipeline_parallel = 2;
    payload.config.microbatch_multiplier = 2;
    request.payload = std::move(payload);
    const ServiceResponse response = original.Submit(std::move(request)).get();
    ASSERT_TRUE(response.ok) << response.error;
  }
  const ServiceStats before = original.stats();
  ASSERT_EQ(before.timed_requests, 2u);
  ASSERT_GT(before.stage_totals.total_ms(), 0.0);

  std::map<std::string, DeploymentUsage> usage;
  for (const DeploymentStats& entry : before.per_deployment) {
    DeploymentUsage& used = usage[entry.name];
    used.stage_totals = entry.stage_totals;
    used.timed_requests = entry.timed_requests;
  }
  ArtifactStore store(dir);
  ASSERT_TRUE(store.SaveRegistry(original.registry(), usage).ok());
  original.Shutdown();

  // Process 2 (simulated): the restart resumes the cumulative counters
  // bit-identically instead of zeroing operator history.
  Result<std::unique_ptr<ServiceEngine>> restarted =
      ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{});
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  const ServiceStats after = (*restarted)->stats();
  EXPECT_EQ(after.timed_requests, before.timed_requests);
  EXPECT_EQ(after.stage_totals.emulation_ms, before.stage_totals.emulation_ms);
  EXPECT_EQ(after.stage_totals.collation_ms, before.stage_totals.collation_ms);
  EXPECT_EQ(after.stage_totals.estimation_ms, before.stage_totals.estimation_ms);
  EXPECT_EQ(after.stage_totals.simulation_ms, before.stage_totals.simulation_ms);
  ASSERT_FALSE(after.per_deployment.empty());
  EXPECT_EQ(after.per_deployment[0].timed_requests, before.per_deployment[0].timed_requests);
  EXPECT_EQ(after.per_deployment[0].stage_totals.total_ms(),
            before.per_deployment[0].stage_totals.total_ms());

  // New work keeps accumulating on top of the restored base.
  ServiceRequest request;
  request.id = 9;
  PredictPayload payload;
  payload.model = model;
  payload.config.global_batch_size = 32;
  payload.config.tensor_parallel = 2;
  payload.config.pipeline_parallel = 2;
  payload.config.microbatch_multiplier = 2;
  request.payload = std::move(payload);
  ASSERT_TRUE((*restarted)->Submit(std::move(request)).get().ok);
  const ServiceStats grown = (*restarted)->stats();
  EXPECT_EQ(grown.timed_requests, before.timed_requests + 1);
  EXPECT_GT(grown.stage_totals.total_ms(), before.stage_totals.total_ms());
  (*restarted)->Shutdown();
}

}  // namespace
}  // namespace maya
