// Bundle merge tests: cache union with keep-first conflict resolution,
// byte-identical self-merge (hex doubles pass through verbatim), refusal to
// pool caches across differently trained estimators, and input validation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/estimator_bank.h"
#include "src/groundtruth/executor.h"
#include "src/service/artifact_store.h"
#include "src/service/bundle_merge.h"

namespace maya {
namespace {

std::string TempDir(const char* name) {
  const std::string dir = (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig Config(int tensor_parallel, int pipeline_parallel) {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = tensor_parallel;
  config.pipeline_parallel = pipeline_parallel;
  config.microbatch_multiplier = 2;
  return config;
}

class BundleMergeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 42);
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, sweep));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  // Warms the pipeline's kernel/collective estimate caches and its sim cache
  // by running a full prediction.
  static void Warm(MayaPipeline& pipeline, const TrainConfig& config) {
    PredictionRequest request;
    request.model = TinyGpt();
    request.config = config;
    Result<PredictionReport> report = pipeline.Predict(request);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
};

ClusterSpec* BundleMergeTest::cluster_ = nullptr;
GroundTruthExecutor* BundleMergeTest::executor_ = nullptr;
EstimatorBank* BundleMergeTest::bank_ = nullptr;

TEST_F(BundleMergeTest, UnionsCachesKeepFirstAndStaysLoadable) {
  const std::string dir_a = TempDir("merge_in_a");
  const std::string dir_b = TempDir("merge_in_b");
  const std::string out = TempDir("merge_out");

  // Same tensor-parallel degree, different pipeline depth: the two configs
  // share most kernel shapes (overlap for the conflict path) but produce
  // distinct traces (disjoint sim fingerprints).
  const TrainConfig config_a = Config(2, 1);
  const TrainConfig config_b = Config(2, 2);

  MayaPipeline pipeline_a(*cluster_, bank_->kernel.get(), bank_->collective.get());
  Warm(pipeline_a, config_a);
  ASSERT_TRUE(ArtifactStore(dir_a).Save(*cluster_, *bank_, pipeline_a).ok());

  MayaPipeline pipeline_b(*cluster_, bank_->kernel.get(), bank_->collective.get());
  Warm(pipeline_b, config_b);
  ASSERT_TRUE(ArtifactStore(dir_b).Save(*cluster_, *bank_, pipeline_b).ok());

  // The union size, measured by warming one pipeline with both configs.
  MayaPipeline pipeline_union(*cluster_, bank_->kernel.get(), bank_->collective.get());
  Warm(pipeline_union, config_a);
  Warm(pipeline_union, config_b);
  const uint64_t union_kernels = pipeline_union.KernelCacheStats().entries;
  const uint64_t union_collectives = pipeline_union.CollectiveCacheStats().entries;
  const uint64_t a_kernels = pipeline_a.KernelCacheStats().entries;
  const uint64_t b_kernels = pipeline_b.KernelCacheStats().entries;
  ASSERT_GT(a_kernels, 0u);
  ASSERT_LT(union_kernels, a_kernels + b_kernels);  // the kernel sets overlap

  Result<BundleMergeReport> report = MergeBundles({dir_a, dir_b}, out);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->deployments.size(), 1u);
  const BundleMergeReport::DeploymentReport& merged = report->deployments[0];
  EXPECT_EQ(merged.name, "default");
  EXPECT_EQ(merged.inputs, 2u);
  EXPECT_EQ(merged.kernel_entries, union_kernels);
  EXPECT_EQ(merged.kernel_conflicts, a_kernels + b_kernels - union_kernels);
  EXPECT_EQ(merged.collective_entries, union_collectives);
  // Distinct traces: every sim entry of both inputs survives, none collide.
  EXPECT_EQ(merged.sim_entries,
            pipeline_a.SimCacheStats().entries + pipeline_b.SimCacheStats().entries);
  EXPECT_EQ(merged.sim_conflicts, 0u);

  // The merged bundle loads and warms a fresh pipeline with the full union.
  const ArtifactStore store(out);
  ASSERT_TRUE(store.Exists());
  Result<std::vector<LoadedDeployment>> loaded = store.LoadDeployments();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 1u);

  MayaPipeline warm(*cluster_, bank_->kernel.get(), bank_->collective.get());
  Result<uint64_t> imported = store.WarmPipeline("default", warm);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(warm.KernelCacheStats().entries, union_kernels);
  EXPECT_EQ(warm.CollectiveCacheStats().entries, union_collectives);

  // Every merged estimate matches the pipeline that produced it bit-for-bit.
  for (const auto& [kernel, duration_us] : warm.SnapshotKernelEstimates()) {
    bool found = false;
    for (const auto& [union_kernel, union_duration] :
         pipeline_union.SnapshotKernelEstimates()) {
      if (union_kernel == kernel) {
        EXPECT_EQ(duration_us, union_duration);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "merged cache holds a kernel neither input cached";
  }
}

TEST_F(BundleMergeTest, SelfMergeIsByteIdentical) {
  const std::string dir = TempDir("merge_self_in");
  const std::string out = TempDir("merge_self_out");

  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  Warm(pipeline, Config(2, 2));
  ASSERT_TRUE(ArtifactStore(dir).Save(*cluster_, *bank_, pipeline).ok());

  Result<BundleMergeReport> report = MergeBundles({dir, dir}, out);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->deployments.size(), 1u);
  EXPECT_EQ(report->deployments[0].kernel_conflicts, report->deployments[0].kernel_entries);

  // Merging never reformats: every data file of the merged deployment is
  // byte-identical to the input's (hex doubles verbatim, canonical keys).
  const std::string merged_dir = out + "/deployment_0";
  for (const char* file : {"kernel_estimator.json", "collective_estimator.json",
                           "kernel_cache.json", "collective_cache.json", "sim_cache.json"}) {
    EXPECT_EQ(FileBytes(merged_dir + "/" + file), FileBytes(dir + "/" + std::string(file)))
        << file;
  }
  EXPECT_TRUE(ArtifactStore(out).LoadDeployments().ok());
}

TEST_F(BundleMergeTest, RefusesDifferentlyTrainedEstimatorsUnderOneName) {
  const std::string dir_a = TempDir("merge_mismatch_a");
  const std::string dir_c = TempDir("merge_mismatch_c");
  const std::string out = TempDir("merge_mismatch_out");

  MayaPipeline pipeline_a(*cluster_, bank_->kernel.get(), bank_->collective.get());
  Warm(pipeline_a, Config(2, 2));
  ASSERT_TRUE(ArtifactStore(dir_a).Save(*cluster_, *bank_, pipeline_a).ok());

  // A second, smaller training run: same cluster, different estimators.
  ProfileSweepOptions tiny;
  tiny.gemm_samples = 400;
  tiny.conv_samples = 50;
  tiny.generic_samples = 30;
  tiny.collective_sizes = 8;
  EstimatorBank other = TrainEstimators(*cluster_, *executor_, tiny);
  MayaPipeline pipeline_c(*cluster_, other.kernel.get(), other.collective.get());
  Warm(pipeline_c, Config(2, 2));
  ASSERT_TRUE(ArtifactStore(dir_c).Save(*cluster_, other, pipeline_c).ok());

  Result<BundleMergeReport> report = MergeBundles({dir_a, dir_c}, out);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition)
      << report.status().ToString();
  // Failed merges never leave a loadable half-bundle behind.
  EXPECT_FALSE(ArtifactStore(out).Exists());
}

TEST_F(BundleMergeTest, ValidatesInputs) {
  const std::string dir = TempDir("merge_valid_in");
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  Warm(pipeline, Config(2, 2));
  ASSERT_TRUE(ArtifactStore(dir).Save(*cluster_, *bank_, pipeline).ok());

  // Fewer than two inputs is a usage error.
  EXPECT_FALSE(MergeBundles({dir}, TempDir("merge_valid_out")).ok());
  // The output directory must not be one of the inputs.
  EXPECT_FALSE(MergeBundles({dir, dir}, dir).ok());
  // Unreadable inputs fail before anything is written.
  const std::string out = TempDir("merge_valid_out2");
  EXPECT_FALSE(MergeBundles({dir, TempDir("merge_valid_absent")}, out).ok());
  EXPECT_FALSE(ArtifactStore(out).Exists());
}

}  // namespace
}  // namespace maya
