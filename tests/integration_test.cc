// Cross-module integration & property tests: invariants that only hold when
// emulator, collator, estimators and simulator agree end to end.
#include <gtest/gtest.h>

#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/estimator/collective_estimator.h"
#include "src/models/model_zoo.h"
#include "src/search/config_space.h"
#include "src/search/search_driver.h"
#include "src/trace/serialization.h"

namespace maya {
namespace {

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig BaseConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

// Engine-produced traces survive a JSON round trip bit-exactly (structural
// fingerprints and op counts preserved), so traces can be shipped between
// pipeline stages as files.
TEST(IntegrationTest, EngineTracesRoundTripThroughJson) {
  Result<LaunchResult> launched = EmulateJob(TinyGpt(), BaseConfig(), H100Cluster(8));
  ASSERT_TRUE(launched.ok());
  ASSERT_FALSE(launched->oom);
  for (const WorkerTrace& trace : launched->traces) {
    Result<WorkerTrace> parsed = ParseWorkerTrace(SerializeWorkerTrace(trace));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed->ops.size(), trace.ops.size());
    EXPECT_EQ(parsed->Fingerprint(), trace.Fingerprint());
    EXPECT_EQ(parsed->comm_inits.size(), trace.comm_inits.size());
    EXPECT_EQ(parsed->peak_device_bytes, trace.peak_device_bytes);
  }
}

// Folding must not change the simulated timeline when durations are
// deterministic per shape: simulate with and without dedup on ground-truth
// *mean* durations and compare makespans exactly.
TEST(IntegrationTest, FoldedSimulationMatchesUnfolded) {
  const ClusterSpec cluster = H100Cluster(8);
  GroundTruthExecutor executor(cluster, 7);
  auto simulate = [&](bool dedup) {
    Result<LaunchResult> launched = EmulateJob(TinyGpt(), BaseConfig(), cluster);
    CHECK(launched.ok());
    TraceCollator collator(CollationOptions{dedup});
    Result<JobTrace> job = collator.Collate(std::move(launched->traces));
    CHECK(job.ok()) << job.status().ToString();
    // Mean durations: identical shapes get identical times on every rank.
    for (WorkerTrace& worker : job->workers) {
      for (TraceOp& op : worker.ops) {
        if (op.type == TraceOpType::kKernelLaunch) {
          op.duration_us = executor.kernel_model().MeanUs(op.kernel);
        } else if (op.type == TraceOpType::kCollective) {
          const CommGroup& group = job->comm(op.collective.comm_uid);
          op.duration_us = executor.collective_model().MeanUs(
              {op.collective.kind, op.collective.bytes, group.members});
        }
      }
    }
    Result<SimReport> report = Simulator(*job, cluster).Run();
    CHECK(report.ok()) << report.status().ToString();
    return report->total_time_us;
  };
  EXPECT_DOUBLE_EQ(simulate(true), simulate(false));
}

// Emulated OOM feasibility is monotone in device memory: if a config fits a
// smaller device it must fit a larger one.
TEST(IntegrationTest, OomMonotoneInDeviceMemory) {
  TrainConfig config = BaseConfig();
  config.activation_recomputation = false;
  bool previous_fit = false;
  for (uint64_t gib : {8, 16, 24, 32, 48, 64, 80}) {
    ClusterSpec cluster = H100Cluster(8);
    cluster.gpu.hbm_bytes = gib << 30;
    Result<LaunchResult> launched = EmulateJob(TinyGpt(), config, cluster);
    ASSERT_TRUE(launched.ok());
    const bool fits = !launched->oom;
    EXPECT_TRUE(fits || !previous_fit) << gib << " GiB broke monotonicity";
    previous_fit = fits;
  }
  EXPECT_TRUE(previous_fit);  // fits at 80 GiB
}

// Iteration time decreases (weakly) when the same job gets more hardware
// via data parallelism, and peak memory per GPU does not grow.
TEST(IntegrationTest, DataParallelScalingImprovesIterationTime) {
  const ModelConfig model = TinyGpt();
  GroundTruthExecutor executor8(H100Cluster(8), 5);
  GroundTruthExecutor executor16(H100Cluster(16), 5);
  auto actual = [&](int gpus, GroundTruthExecutor& executor) {
    TrainConfig config;
    config.global_batch_size = 64;
    config.tensor_parallel = 2;
    config.microbatch_multiplier = 2;
    Result<LaunchResult> launched = EmulateJob(model, config, H100Cluster(gpus));
    CHECK(launched.ok());
    CHECK(!launched->oom);
    TraceCollator collator;
    Result<JobTrace> job = collator.Collate(std::move(launched->traces));
    CHECK(job.ok());
    Result<SimReport> report = executor.Execute(*job);
    CHECK(report.ok());
    return report->total_time_us;
  };
  EXPECT_LT(actual(16, executor16), actual(8, executor8));
}

// Recomputation trades time for memory in the same direction on ground
// truth and in Maya's prediction.
TEST(IntegrationTest, RecomputationTradeoffConsistentAcrossPredictorAndTruth) {
  const ClusterSpec cluster = H100Cluster(8);
  GroundTruthExecutor executor(cluster, 9);
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1500;
  sweep.conv_samples = 100;
  sweep.generic_samples = 60;
  const EstimatorBank bank = TrainEstimators(cluster, executor, sweep);
  MayaPipeline pipeline(cluster, bank.kernel.get(), bank.collective.get());

  auto measure = [&](bool recompute) {
    TrainConfig config = BaseConfig();
    config.activation_recomputation = recompute;
    PredictionRequest request{TinyGpt(), config};
    Result<PredictionReport> report = pipeline.Predict(request);
    CHECK(report.ok());
    CHECK(!report->oom);
    return std::pair<double, uint64_t>(report->iteration_time_us,
                                       report->sim.peak_memory_bytes);
  };
  const auto [time_without, memory_without] = measure(false);
  const auto [time_with, memory_with] = measure(true);
  EXPECT_GT(time_with, time_without);      // recomputation costs compute
  EXPECT_LT(memory_with, memory_without);  // and saves memory
}

// The profiled collective estimator and the analytical network model agree
// within a small factor across the profiled range (they model the same
// fabric); divergence would indicate a broken training sweep.
TEST(IntegrationTest, CollectiveEstimatorsAgreeWithinFactor) {
  const ClusterSpec cluster = H100Cluster(16);
  GroundTruthExecutor executor(cluster, 3);
  ProfileSweepOptions sweep;
  sweep.collective_sizes = 16;
  std::vector<CollectiveSample> samples =
      GenerateCollectiveDataset(cluster, executor.MakeCollectiveProfiler(), sweep);
  ProfiledCollectiveEstimator profiled;
  profiled.Fit(samples, cluster);
  RingCollectiveModel ring;
  std::vector<int> group = {0, 1, 2, 3, 4, 5, 6, 7};
  for (uint64_t bytes = 1 << 21; bytes <= (1ULL << 33); bytes *= 8) {
    const CollectiveRequest request{CollectiveKind::kAllReduce, bytes, group};
    const double learned = profiled.PredictUs(request, cluster);
    const double analytic = ring.CollectiveUs(request, cluster);
    EXPECT_GT(learned, 0.5 * analytic) << bytes;
    EXPECT_LT(learned, 4.0 * analytic) << bytes;
  }
}

// Search over a small space returns a config that really is the best of the
// space when every point is evaluated exactly (grid + no pruning): a full
// system-level regression of driver + pipeline + engines.
TEST(IntegrationTest, GridSearchFindsTrueArgmaxOfItsOwnPredictions) {
  const ClusterSpec cluster = H100Cluster(8);
  GroundTruthExecutor executor(cluster, 21);
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1200;
  sweep.conv_samples = 100;
  sweep.generic_samples = 50;
  const EstimatorBank bank = TrainEstimators(cluster, executor, sweep);
  MayaPipeline pipeline(cluster, bank.kernel.get(), bank.collective.get());
  const ConfigSpace space({1, 2}, {1, 2}, {1, 2}, {1}, {true}, {false}, {false}, 32);

  SearchOptions options;
  options.algorithm = "grid";
  options.sample_budget = static_cast<int>(space.size());
  options.enable_pruning = false;
  options.early_stop_patience = 0;
  const SearchOutcome outcome = *RunSearch(pipeline, TinyGpt(), space, options);
  ASSERT_TRUE(outcome.found);

  double best_mfu = 0.0;
  for (const TrainConfig& config : space.EnumerateAll()) {
    if (!config.Validate(TinyGpt(), cluster).ok()) {
      continue;
    }
    PredictionRequest request{TinyGpt(), config};
    Result<PredictionReport> report = pipeline.Predict(request);
    ASSERT_TRUE(report.ok());
    if (!report->oom) {
      best_mfu = std::max(best_mfu, report->mfu);
    }
  }
  EXPECT_NEAR(outcome.best_mfu, best_mfu, 1e-12);
}

}  // namespace
}  // namespace maya
