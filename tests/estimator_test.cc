// Tests for the estimation stack: random forest, features, kernel and
// collective estimators, and profiling-mode dataset generation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/stats.h"
#include "src/estimator/collective_estimator.h"
#include "src/estimator/features.h"
#include "src/estimator/kernel_estimator.h"
#include "src/estimator/profiler_repository.h"
#include "src/estimator/random_forest.h"

namespace maya {
namespace {

// ---- Random forest -----------------------------------------------------------

TEST(RandomForestTest, FitsLinearFunction) {
  Dataset data;
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double x0 = rng.Uniform(0.0, 10.0);
    const double x1 = rng.Uniform(0.0, 10.0);
    data.Add({x0, x1}, 3.0 * x0 + 0.5 * x1);
  }
  RandomForestRegressor forest;
  forest.Fit(data);
  double total_error = 0.0;
  Rng eval(2);
  for (int i = 0; i < 100; ++i) {
    const double x0 = eval.Uniform(1.0, 9.0);
    const double x1 = eval.Uniform(1.0, 9.0);
    total_error += std::abs(forest.Predict({x0, x1}) - (3.0 * x0 + 0.5 * x1));
  }
  EXPECT_LT(total_error / 100.0, 1.0);
}

TEST(RandomForestTest, FitsStepFunction) {
  // Trees should capture hard thresholds exactly.
  Dataset data;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    data.Add({x}, x < 0.5 ? 1.0 : 5.0);
  }
  RandomForestRegressor forest;
  forest.Fit(data);
  EXPECT_NEAR(forest.Predict({0.2}), 1.0, 0.2);
  EXPECT_NEAR(forest.Predict({0.8}), 5.0, 0.2);
}

TEST(RandomForestTest, DeterministicForSeed) {
  Dataset data;
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    data.Add({x}, x * x);
  }
  RandomForestOptions options;
  options.seed = 99;
  RandomForestRegressor a(options);
  RandomForestRegressor b(options);
  a.Fit(data);
  b.Fit(data);
  for (double x : {0.1, 0.4, 0.9}) {
    EXPECT_DOUBLE_EQ(a.Predict({x}), b.Predict({x}));
  }
}

TEST(RandomForestTest, ConstantTargetYieldsConstantPrediction) {
  Dataset data;
  for (int i = 0; i < 50; ++i) {
    data.Add({static_cast<double>(i)}, 7.0);
  }
  RandomForestRegressor forest;
  forest.Fit(data);
  EXPECT_NEAR(forest.Predict({25.0}), 7.0, 1e-9);
}

TEST(RandomForestTest, SingleSampleIsLeaf) {
  Dataset data;
  data.Add({1.0}, 42.0);
  RandomForestRegressor forest;
  forest.Fit(data);
  EXPECT_DOUBLE_EQ(forest.Predict({5.0}), 42.0);
}

TEST(RegressionTreeTest, RespectsMinSamplesLeaf) {
  Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.Add({static_cast<double>(i)}, static_cast<double>(i));
  }
  RandomForestOptions options;
  options.min_samples_leaf = 5;
  options.max_depth = 10;
  std::vector<uint32_t> indices(10);
  for (uint32_t i = 0; i < 10; ++i) {
    indices[i] = i;
  }
  RegressionTree tree;
  Rng rng(1);
  tree.Fit(data, indices, options, rng);
  // With min leaf 5 over 10 samples, at most one split: <= 3 nodes.
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(RandomForestTest, PredictBatchBitIdenticalToPredict) {
  Dataset data;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double x0 = rng.Uniform(0.0, 10.0);
    const double x1 = rng.Uniform(0.0, 10.0);
    data.Add({x0, x1}, x0 * x1);
  }
  RandomForestRegressor forest;
  forest.Fit(data);
  constexpr size_t kRows = 64;
  constexpr size_t kWidth = 2;
  std::vector<double> rows(kRows * kWidth);
  Rng eval(12);
  for (double& v : rows) {
    v = eval.Uniform(0.0, 10.0);
  }
  std::vector<double> batched(kRows);
  forest.PredictBatch(rows.data(), kRows, kWidth, batched.data());
  for (size_t i = 0; i < kRows; ++i) {
    EXPECT_DOUBLE_EQ(batched[i], forest.Predict(rows.data() + i * kWidth)) << "row " << i;
  }
}

// ---- Features ------------------------------------------------------------------

TEST(FeaturesTest, StackBufferMatchesVectorExtraction) {
  const KernelDesc kernel = MakeGemm(768, 3072, 768, DType::kFp16, 4);
  const std::vector<double> heap = KernelFeatures(kernel);
  KernelFeatureBuffer stack_buffer;
  KernelFeaturesInto(kernel, stack_buffer.data());
  ASSERT_EQ(heap.size(), stack_buffer.size());
  for (size_t i = 0; i < stack_buffer.size(); ++i) {
    EXPECT_DOUBLE_EQ(heap[i], stack_buffer[i]) << KernelFeatureNames()[i];
  }
}

TEST(KernelDescTest, HashAndEqualityAgree) {
  const KernelDesc a = MakeGemm(1024, 1024, 1024, DType::kBf16);
  const KernelDesc b = MakeGemm(1024, 1024, 1024, DType::kBf16);
  const KernelDesc c = MakeGemm(1024, 1024, 2048, DType::kBf16);
  const KernelDesc d = MakeGemm(1024, 1024, 1024, DType::kFp32);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  EXPECT_NE(a.Hash(), c.Hash());
  EXPECT_NE(a.Hash(), d.Hash());
}

TEST(CollectiveRequestTest, HashAndEqualityAgree) {
  const CollectiveRequest a{CollectiveKind::kAllReduce, 1 << 20, {0, 1, 2, 3}};
  const CollectiveRequest b{CollectiveKind::kAllReduce, 1 << 20, {0, 1, 2, 3}};
  const CollectiveRequest c{CollectiveKind::kAllGather, 1 << 20, {0, 1, 2, 3}};
  const CollectiveRequest d{CollectiveKind::kAllReduce, 1 << 20, {0, 1, 2, 7}};
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  EXPECT_NE(a.Hash(), c.Hash());
  EXPECT_NE(a.Hash(), d.Hash());
}


TEST(FeaturesTest, FixedWidthAndNames) {
  const std::vector<double> features = KernelFeatures(MakeGemm(128, 256, 512, DType::kBf16));
  EXPECT_EQ(features.size(), static_cast<size_t>(kKernelFeatureCount));
  EXPECT_EQ(KernelFeatureNames().size(), static_cast<size_t>(kKernelFeatureCount));
}

TEST(FeaturesTest, LogScaledShapes) {
  const std::vector<double> features = KernelFeatures(MakeGemm(127, 256, 512, DType::kBf16));
  EXPECT_NEAR(features[0], std::log2(128.0), 1e-6);  // log2(1+127)
  EXPECT_DOUBLE_EQ(features[8], 2.0);                // bf16 width
  EXPECT_DOUBLE_EQ(features[11], 1.0);               // bias
}

TEST(FeaturesTest, TileAlignmentFlags) {
  EXPECT_DOUBLE_EQ(KernelFeatures(MakeGemm(256, 256, 64, DType::kBf16))[13], 1.0);
  EXPECT_DOUBLE_EQ(KernelFeatures(MakeGemm(255, 256, 64, DType::kBf16))[13], 0.0);
}

TEST(FeaturesTest, FusedOpCountSurfaces) {
  EXPECT_DOUBLE_EQ(KernelFeatures(MakeTritonFused(1 << 20, 9, DType::kBf16))[9], 9.0);
}

// ---- Kernel estimator -------------------------------------------------------------

KernelDataset SyntheticGemmDataset(int count, uint64_t seed) {
  KernelDataset dataset;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const int64_t m = 1 << rng.UniformInt(5, 12);
    const int64_t n = 1 << rng.UniformInt(5, 12);
    const int64_t k = 1 << rng.UniformInt(5, 12);
    KernelDesc gemm = MakeGemm(m, n, k, DType::kBf16);
    // Synthetic truth: flops-proportional with 5% noise.
    const double truth = gemm.flops / 100e12 * 1e6 + 2.0;
    dataset.push_back({gemm, truth * rng.LognormalFactor(0.05)});
  }
  return dataset;
}

TEST(KernelEstimatorTest, LearnsFlopsProportionalRuntime) {
  RandomForestKernelEstimator estimator;
  estimator.Fit(SyntheticGemmDataset(3000, 7));
  const KernelDataset test = SyntheticGemmDataset(300, 8);
  std::vector<double> actual;
  std::vector<double> predicted;
  for (const KernelSample& sample : test) {
    actual.push_back(sample.runtime_us);
    predicted.push_back(estimator.PredictUs(sample.kernel));
  }
  EXPECT_LT(MeanAbsolutePercentageError(actual, predicted), 15.0);
}

TEST(KernelEstimatorTest, UnseenKindUsesRooflineFallback) {
  RandomForestKernelEstimator estimator;
  estimator.Fit(SyntheticGemmDataset(100, 9));
  EXPECT_FALSE(estimator.HasModelFor(KernelKind::kConvForward));
  const double us = estimator.PredictUs(
      MakeConv(KernelKind::kConvForward, 8, 64, 56, 56, 64, 3, 3, 1, DType::kFp32));
  EXPECT_GT(us, 0.0);
  EXPECT_EQ(estimator.fallback_predictions.load(), 1u);
}

TEST(KernelEstimatorTest, BatchBitIdenticalToPerKernelPredict) {
  RandomForestKernelEstimator estimator;
  estimator.Fit(SyntheticGemmDataset(500, 21));
  // Mix of trained (GEMM) and fallback (conv, memcpy) kinds.
  std::vector<KernelDesc> kernels;
  for (const KernelSample& sample : SyntheticGemmDataset(40, 22)) {
    kernels.push_back(sample.kernel);
  }
  kernels.push_back(MakeConv(KernelKind::kConvForward, 8, 64, 56, 56, 64, 3, 3, 1,
                             DType::kFp32));
  kernels.push_back(MakeMemcpy(KernelKind::kMemcpyD2D, 1 << 24));
  std::vector<const KernelDesc*> pointers;
  for (const KernelDesc& kernel : kernels) {
    pointers.push_back(&kernel);
  }
  std::vector<double> batched(kernels.size());
  estimator.PredictUsBatch(pointers.data(), pointers.size(), batched.data());
  for (size_t i = 0; i < kernels.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], estimator.PredictUs(kernels[i])) << kernels[i].ToString();
  }
}

TEST(KernelEstimatorTest, PerKindMapeGroupsCorrectly) {
  RandomForestKernelEstimator estimator;
  KernelDataset train = SyntheticGemmDataset(500, 10);
  estimator.Fit(train);
  const std::map<KernelKind, double> mape = PerKindMape(estimator, train);
  ASSERT_EQ(mape.size(), 1u);
  EXPECT_EQ(mape.begin()->first, KernelKind::kGemm);
  EXPECT_LT(mape.begin()->second, 30.0);
}

TEST(KernelEstimatorTest, CallbackEstimatorDelegates) {
  CallbackKernelEstimator oracle("oracle", [](const KernelDesc&) { return 42.0; });
  EXPECT_DOUBLE_EQ(oracle.PredictUs(MakeMemset(1)), 42.0);
  EXPECT_EQ(oracle.name(), "oracle");
}

TEST(KernelEstimatorTest, SplitPreservesAllSamples) {
  const KernelDataset all = SyntheticGemmDataset(1000, 11);
  KernelDataset train;
  KernelDataset test;
  Rng rng(12);
  SplitKernelDataset(all, 0.8, rng, &train, &test);
  EXPECT_EQ(train.size() + test.size(), all.size());
  EXPECT_GT(train.size(), test.size());
  EXPECT_GT(test.size(), 100u);
}

// ---- Collective estimator -------------------------------------------------------------

std::vector<int> Range(int n, int stride = 1) {
  std::vector<int> ranks;
  for (int i = 0; i < n; ++i) {
    ranks.push_back(i * stride);
  }
  return ranks;
}

TEST(CollectiveEstimatorTest, InterpolatesBetweenProfiledSizes) {
  const ClusterSpec cluster = H100Cluster(8);
  std::vector<CollectiveSample> samples;
  // Linear truth: 1us per MiB.
  for (uint64_t mib : {16, 64, 256, 1024}) {
    samples.push_back(
        {{CollectiveKind::kAllReduce, mib << 20, Range(8)}, static_cast<double>(mib)});
  }
  ProfiledCollectiveEstimator estimator;
  estimator.Fit(samples, cluster);
  EXPECT_EQ(estimator.group_count(), 1u);
  const double mid =
      estimator.PredictUs({CollectiveKind::kAllReduce, 128ULL << 20, Range(8)}, cluster);
  EXPECT_NEAR(mid, 128.0, 2.0);  // log-log interpolation of a power law is exact
}

TEST(CollectiveEstimatorTest, ExtrapolatesWithEdgeSlope) {
  const ClusterSpec cluster = H100Cluster(8);
  std::vector<CollectiveSample> samples;
  for (uint64_t mib : {64, 256}) {
    samples.push_back(
        {{CollectiveKind::kAllReduce, mib << 20, Range(8)}, static_cast<double>(mib)});
  }
  ProfiledCollectiveEstimator estimator;
  estimator.Fit(samples, cluster);
  EXPECT_NEAR(estimator.PredictUs({CollectiveKind::kAllReduce, 16ULL << 20, Range(8)}, cluster),
              16.0, 2.0);
  EXPECT_NEAR(
      estimator.PredictUs({CollectiveKind::kAllReduce, 1024ULL << 20, Range(8)}, cluster),
      1024.0, 40.0);
}

TEST(CollectiveEstimatorTest, UnprofiledShapeFallsBackToRingModel) {
  const ClusterSpec cluster = H100Cluster(16);
  ProfiledCollectiveEstimator estimator;
  estimator.Fit({}, cluster);
  RingCollectiveModel ring;
  const CollectiveRequest request{CollectiveKind::kAllReduce, 1ULL << 28, Range(16)};
  EXPECT_DOUBLE_EQ(estimator.PredictUs(request, cluster),
                   ring.CollectiveUs(request, cluster));
}

TEST(CollectiveEstimatorTest, RepeatMeasurementsAveraged) {
  const ClusterSpec cluster = H100Cluster(8);
  std::vector<CollectiveSample> samples = {
      {{CollectiveKind::kAllReduce, 64ULL << 20, Range(8)}, 90.0},
      {{CollectiveKind::kAllReduce, 64ULL << 20, Range(8)}, 110.0},
      {{CollectiveKind::kAllReduce, 256ULL << 20, Range(8)}, 400.0},
  };
  ProfiledCollectiveEstimator estimator;
  estimator.Fit(samples, cluster);
  EXPECT_NEAR(
      estimator.PredictUs({CollectiveKind::kAllReduce, 64ULL << 20, Range(8)}, cluster),
      std::sqrt(90.0 * 110.0), 1.0);  // geometric mean in log space
}

TEST(CollectiveEstimatorTest, ZeroWorkIsFree) {
  const ClusterSpec cluster = H100Cluster(8);
  ProfiledCollectiveEstimator estimator;
  estimator.Fit({}, cluster);
  EXPECT_EQ(estimator.PredictUs({CollectiveKind::kAllReduce, 0, Range(8)}, cluster), 0.0);
  EXPECT_EQ(estimator.PredictUs({CollectiveKind::kAllReduce, 100, {0}}, cluster), 0.0);
}

TEST(CollectiveEstimatorTest, NetworkModelAdapterDelegates) {
  AstraLikeNetworkModel astra;
  NetworkModelCollectiveEstimator estimator(&astra);
  const ClusterSpec cluster = H100Cluster(16);
  const CollectiveRequest request{CollectiveKind::kAllReduce, 1ULL << 28, Range(16)};
  EXPECT_DOUBLE_EQ(estimator.PredictUs(request, cluster),
                   astra.CollectiveUs(request, cluster));
  EXPECT_NE(estimator.name().find("astra"), std::string::npos);
}

// ---- Profiler repository -------------------------------------------------------------

TEST(ProfilerRepositoryTest, SweepCoversAllWorkloadKernelKinds) {
  ProfileSweepOptions options;
  options.gemm_samples = 50;
  options.conv_samples = 30;
  options.generic_samples = 5;
  const KernelDataset dataset = GenerateKernelDataset(
      GpuArch::kH100, [](const KernelDesc&) { return 10.0; }, options);
  std::set<KernelKind> kinds;
  for (const KernelSample& sample : dataset) {
    kinds.insert(sample.kernel.kind);
  }
  // Every kind the training engines emit must be profiled.
  for (KernelKind kind :
       {KernelKind::kGemm, KernelKind::kGemmStridedBatched, KernelKind::kLayerNormForward,
        KernelKind::kSoftmaxForward, KernelKind::kDropout, KernelKind::kElementwise,
        KernelKind::kEmbeddingForward, KernelKind::kOptimizerApply, KernelKind::kConvForward,
        KernelKind::kConvBackwardFilter, KernelKind::kTritonFused, KernelKind::kMemcpyH2D,
        KernelKind::kMemset, KernelKind::kCrossEntropyForward, KernelKind::kBatchNormForward,
        KernelKind::kPooling, KernelKind::kCat, KernelKind::kReduce}) {
    EXPECT_TRUE(kinds.count(kind) > 0) << KernelKindName(kind);
  }
}

TEST(ProfilerRepositoryTest, CollectiveSweepSpansPaperRange) {
  ProfileSweepOptions options;
  options.collective_sizes = 6;
  options.collective_repeats = 1;
  const std::vector<CollectiveSample> samples = GenerateCollectiveDataset(
      H100Cluster(16), [](const CollectiveRequest&) { return 5.0; }, options);
  EXPECT_GT(samples.size(), 50u);
  uint64_t min_bytes = UINT64_MAX;
  uint64_t max_bytes = 0;
  bool has_multi_node = false;
  for (const CollectiveSample& sample : samples) {
    min_bytes = std::min(min_bytes, sample.request.bytes);
    max_bytes = std::max(max_bytes, sample.request.bytes);
    if (!H100Cluster(16).IsIntraNode(sample.request.ranks)) {
      has_multi_node = true;
    }
  }
  EXPECT_LE(min_bytes, 32ULL << 20);   // tens of MB
  EXPECT_GE(max_bytes, 16ULL << 30);   // tens of GB
  EXPECT_TRUE(has_multi_node);
}

TEST(ProfilerRepositoryTest, DeterministicForSeed) {
  ProfileSweepOptions options;
  options.gemm_samples = 20;
  options.conv_samples = 5;
  options.generic_samples = 2;
  auto profiler = [](const KernelDesc& kernel) { return kernel.flops / 1e9 + 1.0; };
  const KernelDataset a = GenerateKernelDataset(GpuArch::kV100, profiler, options);
  const KernelDataset b = GenerateKernelDataset(GpuArch::kV100, profiler, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kernel.params, b[i].kernel.params);
    EXPECT_DOUBLE_EQ(a[i].runtime_us, b[i].runtime_us);
  }
}

}  // namespace
}  // namespace maya
