// End-to-end MayaPipeline tests: prediction accuracy against the ground
// truth executor, oracle mode (Table 3 structure), dedup invariance, stage
// timings, MFU computation and estimator training.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/models/model_zoo.h"

namespace maya {
namespace {

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

// Shared (expensive) fixture: one trained estimator bank per test binary.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 99);
    ProfileSweepOptions sweep;  // trimmed for test speed
    sweep.gemm_samples = 5000;
    sweep.conv_samples = 400;
    sweep.generic_samples = 150;
    sweep.collective_sizes = 16;
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, sweep));
    pipeline_ = new MayaPipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  static TrainConfig BaseConfig() {
    TrainConfig config;
    config.global_batch_size = 32;
    config.tensor_parallel = 2;
    config.pipeline_parallel = 2;
    config.microbatch_multiplier = 2;
    return config;
  }

  static double ActualUs(const TrainConfig& config) {
    Result<LaunchResult> launched = EmulateJob(TinyGpt(), config, *cluster_);
    CHECK(launched.ok());
    CHECK(!launched->oom);
    TraceCollator collator;
    Result<JobTrace> job = collator.Collate(std::move(launched->traces));
    CHECK(job.ok());
    Result<SimReport> report = executor_->Execute(*job);
    CHECK(report.ok()) << report.status().ToString();
    return report->total_time_us;
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
  static MayaPipeline* pipeline_;
};

ClusterSpec* PipelineTest::cluster_ = nullptr;
GroundTruthExecutor* PipelineTest::executor_ = nullptr;
EstimatorBank* PipelineTest::bank_ = nullptr;
MayaPipeline* PipelineTest::pipeline_ = nullptr;

TEST_F(PipelineTest, PredictsWithinPaperErrorBand) {
  PredictionRequest request;
  request.model = TinyGpt();
  request.config = BaseConfig();
  Result<PredictionReport> prediction = pipeline_->Predict(request);
  ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
  ASSERT_FALSE(prediction->oom);
  const double actual = ActualUs(request.config);
  const double error =
      std::abs(prediction->iteration_time_us - actual) / actual * 100.0;
  EXPECT_LT(error, 12.0) << "Maya " << prediction->iteration_time_us << "us vs actual "
                         << actual << "us";
}

TEST_F(PipelineTest, OracleBeatsEndToEndOnAverage) {
  // Table 3's structure: oracle (actual kernel times) error < E2E error,
  // averaged across configurations.
  std::vector<TrainConfig> configs;
  for (int tp : {1, 2}) {
    for (int pp : {1, 2}) {
      TrainConfig config = BaseConfig();
      config.tensor_parallel = tp;
      config.pipeline_parallel = pp;
      configs.push_back(config);
    }
  }
  double oracle_error_sum = 0.0;
  double e2e_error_sum = 0.0;
  for (const TrainConfig& config : configs) {
    const double actual = ActualUs(config);
    PredictionRequest e2e{TinyGpt(), config};
    PredictionRequest oracle{TinyGpt(), config};
    oracle.oracle = executor_;
    const double e2e_us = pipeline_->Predict(e2e)->iteration_time_us;
    const double oracle_us = pipeline_->Predict(oracle)->iteration_time_us;
    e2e_error_sum += std::abs(e2e_us - actual) / actual;
    oracle_error_sum += std::abs(oracle_us - actual) / actual;
  }
  EXPECT_LT(oracle_error_sum / configs.size(), 0.05);
  EXPECT_LE(oracle_error_sum, e2e_error_sum + 0.02 * configs.size());
}

TEST_F(PipelineTest, DedupDoesNotChangePrediction) {
  // Estimators are deterministic per kernel shape, so folding twins must
  // not move the prediction.
  PredictionRequest with{TinyGpt(), BaseConfig()};
  PredictionRequest without{TinyGpt(), BaseConfig()};
  without.deduplicate_workers = false;
  const double a = pipeline_->Predict(with)->iteration_time_us;
  const double b = pipeline_->Predict(without)->iteration_time_us;
  EXPECT_NEAR(a / b, 1.0, 1e-9);
}

TEST_F(PipelineTest, DedupShrinksSimulatedWorkers) {
  PredictionRequest request{TinyGpt(), BaseConfig()};
  Result<PredictionReport> report = pipeline_->Predict(request);
  ASSERT_TRUE(report.ok());
  // tp2 x pp2 x dp2 on 8 GPUs folds to one representative per stage.
  EXPECT_EQ(report->collation.unique_workers, 2);
  EXPECT_EQ(report->collation.duplicates_folded, 6);
}

TEST_F(PipelineTest, SelectiveLaunchMatchesDedupPath) {
  PredictionRequest dynamic{TinyGpt(), BaseConfig()};
  PredictionRequest selective{TinyGpt(), BaseConfig()};
  selective.selective_launch = true;
  const Result<PredictionReport> a = pipeline_->Predict(dynamic);
  const Result<PredictionReport> b = pipeline_->Predict(selective);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->iteration_time_us / b->iteration_time_us, 1.0, 1e-9);
  EXPECT_EQ(b->full_workers_emulated, 2);
  EXPECT_EQ(a->full_workers_emulated, 8);
}

TEST_F(PipelineTest, ParallelEmulationMatchesSerialPrediction) {
  // The shared ExecutionContext is output-preserving: per-rank clocks/RNGs
  // plus pre-assigned comm uids make the parallel launch bit-identical.
  MayaPipelineOptions parallel_options;
  parallel_options.context = ExecutionContext::Create(4);
  MayaPipeline parallel(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                        parallel_options);
  for (bool selective : {false, true}) {
    PredictionRequest request{TinyGpt(), BaseConfig()};
    request.selective_launch = selective;
    const Result<PredictionReport> a = parallel.Predict(request);
    const Result<PredictionReport> b = pipeline_->Predict(request);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->iteration_time_us, b->iteration_time_us) << "selective=" << selective;
    EXPECT_EQ(a->mfu, b->mfu);
    EXPECT_EQ(a->full_workers_emulated, b->full_workers_emulated);
  }
}

TEST_F(PipelineTest, ParallelEmulationOomMatchesSerial) {
  MayaPipelineOptions parallel_options;
  parallel_options.context = ExecutionContext::Create(4);
  MayaPipeline parallel(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                        parallel_options);
  PredictionRequest request{TinyGpt(), BaseConfig()};
  request.model.seq_length = 8192;
  request.config.microbatch_multiplier = 1;
  const Result<PredictionReport> a = parallel.Predict(request);
  const Result<PredictionReport> b = pipeline_->Predict(request);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->oom);
  EXPECT_EQ(a->oom_detail, b->oom_detail);
}

TEST_F(PipelineTest, GeneralizedSelectiveLaunchMatchesDedupPath) {
  // FSDP: one fully-emulated rank stands for all eight.
  TrainConfig fsdp = BaseConfig();
  fsdp.framework = ParallelFramework::kFsdp;
  fsdp.tensor_parallel = 1;
  fsdp.pipeline_parallel = 1;
  PredictionRequest dynamic{TinyGpt(), fsdp};
  PredictionRequest selective{TinyGpt(), fsdp};
  selective.selective_launch = true;
  const Result<PredictionReport> a = pipeline_->Predict(dynamic);
  const Result<PredictionReport> b = pipeline_->Predict(selective);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The dynamic-dedup fold and the selective launch pick the same
  // representative (rank 0), so the predictions are bit-identical.
  EXPECT_EQ(a->iteration_time_us, b->iteration_time_us);
  EXPECT_EQ(a->mfu, b->mfu);
  EXPECT_EQ(a->full_workers_emulated, 8);
  EXPECT_EQ(b->full_workers_emulated, 1);
  EXPECT_EQ(b->collation.unique_workers, 1);
}

TEST_F(PipelineTest, GeneralizedSelectiveLaunchVisionMatchesDedupPath) {
  TrainConfig ddp;
  ddp.framework = ParallelFramework::kDdp;
  ddp.global_batch_size = 256;
  ddp.microbatch_multiplier = 1;
  PredictionRequest dynamic{ResNet152(), ddp};
  PredictionRequest selective{ResNet152(), ddp};
  selective.selective_launch = true;
  const Result<PredictionReport> a = pipeline_->Predict(dynamic);
  const Result<PredictionReport> b = pipeline_->Predict(selective);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->iteration_time_us, b->iteration_time_us);
  EXPECT_EQ(b->full_workers_emulated, 1);
}

TEST_F(PipelineTest, SymmetricDedupOnVsOffBitIdentical) {
  // Twins are seeded with class-wide host jitter, so folding them (dynamic
  // dedup or selective launch) is exactly lossless: parallel/dedup outputs
  // must be bit-identical to the sequential, dedup-off baseline on symmetric
  // configs — the Fig. 14 / BENCH_emulation ablation anchor.
  struct Case {
    const char* label;
    ParallelFramework framework;
  };
  for (const Case& test_case :
       {Case{"megatron_dp8", ParallelFramework::kMegatron},
        Case{"fsdp", ParallelFramework::kFsdp},
        Case{"deepspeed_z2", ParallelFramework::kDeepSpeed}}) {
    TrainConfig config;  // tp1 pp1 -> dp8: every rank twins rank 0
    config.framework = test_case.framework;
    config.zero_stage = 2;
    config.global_batch_size = 32;
    PredictionRequest off{TinyGpt(), config};
    off.deduplicate_workers = false;
    PredictionRequest sel{TinyGpt(), config};
    sel.selective_launch = true;
    const Result<PredictionReport> a = pipeline_->Predict(off);
    const Result<PredictionReport> b = pipeline_->Predict(sel);
    ASSERT_TRUE(a.ok()) << test_case.label;
    ASSERT_TRUE(b.ok()) << test_case.label;
    EXPECT_EQ(a->iteration_time_us, b->iteration_time_us) << test_case.label;
    EXPECT_EQ(a->mfu, b->mfu) << test_case.label;
    EXPECT_EQ(a->collation.unique_workers, 8) << test_case.label;
    EXPECT_EQ(b->collation.unique_workers, 1) << test_case.label;
    EXPECT_EQ(b->full_workers_emulated, 1) << test_case.label;
  }

  // Vision DDP: same invariant through the cuDNN/conv path.
  TrainConfig ddp;
  ddp.framework = ParallelFramework::kDdp;
  ddp.global_batch_size = 256;
  ddp.microbatch_multiplier = 1;
  PredictionRequest vision_off{ResNet152(), ddp};
  vision_off.deduplicate_workers = false;
  PredictionRequest vision_sel{ResNet152(), ddp};
  vision_sel.selective_launch = true;
  const Result<PredictionReport> e = pipeline_->Predict(vision_off);
  const Result<PredictionReport> f = pipeline_->Predict(vision_sel);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(e->iteration_time_us, f->iteration_time_us);
  EXPECT_EQ(e->collation.unique_workers, 8);
  EXPECT_EQ(f->collation.unique_workers, 1);
}

TEST_F(PipelineTest, OomReportedNotFailed) {
  PredictionRequest request{TinyGpt(), BaseConfig()};
  request.model.seq_length = 8192;  // blow up attention memory
  request.config.microbatch_multiplier = 1;
  Result<PredictionReport> report = pipeline_->Predict(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->oom);
  EXPECT_FALSE(report->oom_detail.empty());
  EXPECT_NE(report->Summary().find("OOM"), std::string::npos);
}

TEST_F(PipelineTest, StageTimingsPopulated) {
  PredictionRequest request{TinyGpt(), BaseConfig()};
  Result<PredictionReport> report = pipeline_->Predict(request);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->timings.emulation_ms, 0.0);
  EXPECT_GT(report->timings.estimation_ms, 0.0);
  EXPECT_GT(report->timings.simulation_ms, 0.0);
  EXPECT_GT(report->timings.total_ms(), 0.0);
}

TEST_F(PipelineTest, MfuInPlausibleRange) {
  PredictionRequest request{TinyGpt(), BaseConfig()};
  Result<PredictionReport> report = pipeline_->Predict(request);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->mfu, 0.005);
  EXPECT_LT(report->mfu, 0.9);
}

TEST_F(PipelineTest, ValidationMapeMatchesPaperShape) {
  // Heavy hitters (GEMM) must be much better predicted than tiny kernels —
  // the consistent theme of Tables 7-9.
  const std::map<KernelKind, double> mape = PerKindMape(*bank_->kernel, bank_->kernel_validation);
  ASSERT_TRUE(mape.count(KernelKind::kGemm) > 0);
  EXPECT_LT(mape.at(KernelKind::kGemm), 12.0);
  EXPECT_LT(mape.at(KernelKind::kGemmStridedBatched), 14.0);
}

TEST_F(PipelineTest, EstimateCacheOnVsOffBitIdentical) {
  // The tentpole invariant: memoizing estimates must not move any output.
  MayaPipelineOptions cached_options;
  ASSERT_TRUE(cached_options.enable_estimate_cache);
  MayaPipelineOptions uncached_options;
  uncached_options.enable_estimate_cache = false;
  MayaPipeline cached(*cluster_, bank_->kernel.get(), bank_->collective.get(), cached_options);
  MayaPipeline uncached(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                        uncached_options);
  for (int tp : {1, 2}) {
    TrainConfig config = BaseConfig();
    config.tensor_parallel = tp;
    PredictionRequest request{TinyGpt(), config};
    // Two rounds each: round 2 exercises the warm-cache path.
    for (int round = 0; round < 2; ++round) {
      const Result<PredictionReport> a = cached.Predict(request);
      const Result<PredictionReport> b = uncached.Predict(request);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->iteration_time_us, b->iteration_time_us)
          << "tp=" << tp << " round=" << round;
      EXPECT_EQ(a->mfu, b->mfu) << "tp=" << tp << " round=" << round;
    }
  }
  EXPECT_GT(cached.KernelCacheStats().hits, 0u);
  EXPECT_EQ(uncached.KernelCacheStats().insertions, 0u);
}

TEST_F(PipelineTest, EstimateCachePersistsAcrossPredictCalls) {
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  PredictionRequest request{TinyGpt(), BaseConfig()};
  const Result<PredictionReport> cold = pipeline.Predict(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->estimation.kernel_ops, cold->estimation.unique_kernels);
  EXPECT_GT(cold->estimation.cache_misses, 0u);
  const Result<PredictionReport> warm = pipeline.Predict(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->estimation.cache_misses, 0u);
  EXPECT_EQ(warm->estimation.cache_hits, warm->estimation.unique_ops());
  EXPECT_EQ(warm->iteration_time_us, cold->iteration_time_us);
}

TEST_F(PipelineTest, ParallelEstimationMatchesSerial) {
  MayaPipelineOptions parallel_options;
  parallel_options.context = ExecutionContext::Create(4);
  parallel_options.parallel_estimation_threshold = 1;  // force the pool path
  parallel_options.enable_estimate_cache = false;      // re-predict every call
  MayaPipelineOptions serial_options;
  serial_options.enable_estimate_cache = false;
  MayaPipeline parallel(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                        parallel_options);
  MayaPipeline serial(*cluster_, bank_->kernel.get(), bank_->collective.get(), serial_options);
  PredictionRequest request{TinyGpt(), BaseConfig()};
  const Result<PredictionReport> a = parallel.Predict(request);
  const Result<PredictionReport> b = serial.Predict(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->iteration_time_us, b->iteration_time_us);
}

TEST_F(PipelineTest, SharedContextAllStagesBitIdentical) {
  // One ExecutionContext drives emulation, the collator's fingerprint pass
  // and estimation at once; every stage is output-preserving, so the fully
  // parallel pipeline must equal the fully sequential one EXPECT_EQ-exact.
  MayaPipelineOptions shared_options;
  shared_options.context = ExecutionContext::Create(4);
  shared_options.parallel_estimation_threshold = 1;
  MayaPipeline shared(*cluster_, bank_->kernel.get(), bank_->collective.get(), shared_options);
  for (int tp : {1, 2}) {
    TrainConfig config = BaseConfig();
    config.tensor_parallel = tp;
    PredictionRequest request{TinyGpt(), config};
    const Result<PredictionReport> a = shared.Predict(request);
    const Result<PredictionReport> b = pipeline_->Predict(request);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->iteration_time_us, b->iteration_time_us) << "tp=" << tp;
    EXPECT_EQ(a->mfu, b->mfu) << "tp=" << tp;
    EXPECT_EQ(a->collation.unique_workers, b->collation.unique_workers) << "tp=" << tp;
  }
}

TEST_F(PipelineTest, OracleModeBypassesEstimateCache) {
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  PredictionRequest request{TinyGpt(), BaseConfig()};
  request.oracle = executor_;
  const Result<PredictionReport> report = pipeline.Predict(request);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->estimation.kernel_ops, 0u);
  EXPECT_EQ(report->estimation.cache_hits + report->estimation.cache_misses, 0u);
  EXPECT_EQ(pipeline.KernelCacheStats().insertions, 0u);
}

TEST_F(PipelineTest, TraceCacheOnVsOffBitIdentical) {
  MayaPipelineOptions cached_options;
  cached_options.enable_trace_cache = true;
  MayaPipeline cached(*cluster_, bank_->kernel.get(), bank_->collective.get(), cached_options);
  MayaPipeline plain(*cluster_, bank_->kernel.get(), bank_->collective.get());
  for (int tp : {1, 2}) {
    TrainConfig config = BaseConfig();
    config.tensor_parallel = tp;
    PredictionRequest request{TinyGpt(), config};
    // Round 2 re-annotates a copy of the cached collated trace.
    for (int round = 0; round < 2; ++round) {
      const Result<PredictionReport> a = cached.Predict(request);
      const Result<PredictionReport> b = plain.Predict(request);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->iteration_time_us, b->iteration_time_us)
          << "tp=" << tp << " round=" << round;
      EXPECT_EQ(a->mfu, b->mfu);
      EXPECT_EQ(a->trace_cache_hit, round == 1);
      EXPECT_EQ(a->collation.unique_workers, b->collation.unique_workers);
      EXPECT_FALSE(b->trace_cache_hit);
    }
  }
  EXPECT_GT(cached.TraceCacheStats().hits, 0u);
  EXPECT_EQ(plain.TraceCacheStats().insertions, 0u);
}

TEST_F(PipelineTest, TraceCacheServesOomOutcomes) {
  MayaPipelineOptions options;
  options.enable_trace_cache = true;
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get(), options);
  PredictionRequest request{TinyGpt(), BaseConfig()};
  request.model.seq_length = 8192;
  request.config.microbatch_multiplier = 1;
  const Result<PredictionReport> cold = pipeline.Predict(request);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->oom);
  const Result<PredictionReport> warm = pipeline.Predict(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->oom);
  EXPECT_TRUE(warm->trace_cache_hit);
  EXPECT_EQ(warm->oom_detail, cold->oom_detail);
}

// Compares every simulator-produced output of two predictions EXPECT_EQ-
// exact: iteration time, MFU, and each per-worker timeline.
void ExpectBitIdenticalPredictions(const PredictionReport& a, const PredictionReport& b) {
  EXPECT_EQ(a.iteration_time_us, b.iteration_time_us);
  EXPECT_EQ(a.mfu, b.mfu);
  EXPECT_EQ(a.sim.events_processed, b.sim.events_processed);
  ASSERT_EQ(a.sim.workers.size(), b.sim.workers.size());
  for (size_t w = 0; w < a.sim.workers.size(); ++w) {
    EXPECT_EQ(a.sim.workers[w], b.sim.workers[w]) << "worker " << w;
  }
}

TEST_F(PipelineTest, PartitionedSimulationBitIdenticalToSequential) {
  // Stage-4 tentpole invariant: the component-partitioned, replica-deduped
  // replay equals the sequential whole-cluster replay per worker, with and
  // without collation-level worker dedup.
  MayaPipelineOptions sequential_options;
  sequential_options.partition_simulation = false;
  sequential_options.enable_sim_cache = false;
  MayaPipeline sequential(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                          sequential_options);
  MayaPipelineOptions partitioned_options;
  ASSERT_TRUE(partitioned_options.partition_simulation);
  MayaPipeline partitioned(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                           partitioned_options);
  for (bool deduplicate : {true, false}) {
    PredictionRequest request{TinyGpt(), BaseConfig()};
    request.deduplicate_workers = deduplicate;
    const Result<PredictionReport> a = partitioned.Predict(request);
    const Result<PredictionReport> b = sequential.Predict(request);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectBitIdenticalPredictions(*a, *b);
    EXPECT_GT(a->simulation.workers, 0u);
    EXPECT_GT(a->simulation.components, 0u);
    // Sequential replay reports a single whole-cluster component.
    EXPECT_EQ(b->simulation.components, 1u);
  }
}

TEST_F(PipelineTest, SimCacheOnVsOffBitIdentical) {
  MayaPipelineOptions cached_options;
  ASSERT_TRUE(cached_options.enable_sim_cache);
  MayaPipelineOptions uncached_options;
  uncached_options.enable_sim_cache = false;
  MayaPipeline cached(*cluster_, bank_->kernel.get(), bank_->collective.get(), cached_options);
  MayaPipeline uncached(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                        uncached_options);
  PredictionRequest request{TinyGpt(), BaseConfig()};
  const Result<PredictionReport> cold = cached.Predict(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->simulation.cache_hits, 0u);
  EXPECT_GT(cold->simulation.cache_misses, 0u);
  // The repeated config re-emulates (trace cache off) but annotates to the
  // same durations, so every component replays from the sim cache.
  const Result<PredictionReport> warm = cached.Predict(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->simulation.cache_hits, 0u);
  EXPECT_EQ(warm->simulation.simulated_components, 0u);
  const Result<PredictionReport> fresh = uncached.Predict(request);
  ASSERT_TRUE(fresh.ok());
  ExpectBitIdenticalPredictions(*cold, *warm);
  ExpectBitIdenticalPredictions(*cold, *fresh);
  EXPECT_GT(cached.SimCacheStats().entries, 0u);
  EXPECT_EQ(uncached.SimCacheStats().insertions, 0u);
}

TEST_F(PipelineTest, ParallelSimulationSharedContextBitIdentical) {
  // The shared context's pool now also drives stage-4 component replays; a
  // dedup-off prediction (every GPU simulated) must stay bit-identical.
  MayaPipelineOptions shared_options;
  shared_options.context = ExecutionContext::Create(4);
  MayaPipeline shared(*cluster_, bank_->kernel.get(), bank_->collective.get(), shared_options);
  MayaPipelineOptions sequential_options;
  sequential_options.partition_simulation = false;
  sequential_options.enable_sim_cache = false;
  MayaPipeline sequential(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                          sequential_options);
  PredictionRequest request{TinyGpt(), BaseConfig()};
  request.deduplicate_workers = false;
  const Result<PredictionReport> a = shared.Predict(request);
  const Result<PredictionReport> b = sequential.Predict(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitIdenticalPredictions(*a, *b);
}

TEST(ComputeMfuTest, ScalesInverselyWithTime) {
  const ClusterSpec cluster = H100Cluster(8);
  const ModelConfig model = Gpt3_2_7B();
  const double fast = ComputeMfu(model, 256, cluster, 1e6);
  const double slow = ComputeMfu(model, 256, cluster, 2e6);
  EXPECT_NEAR(fast / slow, 2.0, 1e-9);
}

TEST(ComputeMfuTest, UsesFp32PeakForConvModels) {
  const ClusterSpec cluster = A40Node();
  const double vision_mfu = ComputeMfu(ResNet152(), 512, cluster, 1e6);
  EXPECT_GT(vision_mfu, 0.0);
}

}  // namespace
}  // namespace maya
