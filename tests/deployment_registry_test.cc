// DeploymentRegistry tests: registration, name resolution, derived same-arch
// what-if deployments, cross-arch bank requirements, and the bounded LRU
// eviction policy for derived entries.
//
// Pipelines are built but never run here, so untrained estimator objects are
// enough — registry topology is independent of estimator contents.
#include <gtest/gtest.h>

#include <thread>

#include "src/core/deployment_registry.h"
#include "src/estimator/collective_estimator.h"
#include "src/estimator/kernel_estimator.h"

namespace maya {
namespace {

class DeploymentRegistryTest : public ::testing::Test {
 protected:
  RandomForestKernelEstimator kernel_;
  ProfiledCollectiveEstimator collective_;

  DeploymentRegistryOptions SmallOptions(size_t max_derived = 2) {
    DeploymentRegistryOptions options;
    options.max_derived = max_derived;
    return options;
  }
};

TEST_F(DeploymentRegistryTest, RegisterAndResolve) {
  DeploymentRegistry registry(SmallOptions());
  Result<std::shared_ptr<const Deployment>> registered =
      registry.RegisterBorrowed("default", H100Cluster(8), &kernel_, &collective_);
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  EXPECT_EQ((*registered)->cluster.total_gpus(), 8);
  EXPECT_TRUE((*registered)->derived_from.empty());
  ASSERT_NE((*registered)->pipeline, nullptr);

  Result<std::shared_ptr<const Deployment>> resolved = registry.Resolve("default");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->get(), registered->get());

  // Duplicate names are refused; junk names are NotFound.
  EXPECT_EQ(registry.RegisterBorrowed("default", H100Cluster(16), &kernel_, &collective_)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Resolve("no-such-deployment").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.registered_count(), 1u);
  EXPECT_EQ(registry.derived_count(), 0u);
}

TEST_F(DeploymentRegistryTest, DerivesSameArchDeploymentFromRegisteredBank) {
  DeploymentRegistry registry(SmallOptions());
  ASSERT_TRUE(registry.RegisterBorrowed("default", H100Cluster(8), &kernel_, &collective_).ok());
  Result<std::shared_ptr<const Deployment>> derived = registry.Resolve("h100x32");
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  EXPECT_EQ((*derived)->cluster.total_gpus(), 32);
  EXPECT_EQ((*derived)->cluster.gpu.arch, GpuArch::kH100);
  EXPECT_EQ((*derived)->derived_from, "default");
  // Derived deployments borrow the base deployment's estimators.
  EXPECT_EQ((*derived)->kernel_estimator, &kernel_);
  EXPECT_EQ((*derived)->collective_estimator, &collective_);
  EXPECT_EQ(registry.derived_count(), 1u);
  // Resolving again returns the resident entry (one warm pipeline).
  Result<std::shared_ptr<const Deployment>> again = registry.Resolve("h100x32");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), derived->get());
  EXPECT_EQ(registry.derived_count(), 1u);
}

TEST_F(DeploymentRegistryTest, CrossArchNeedsRegisteredBank) {
  DeploymentRegistry registry(SmallOptions());
  ASSERT_TRUE(registry.RegisterBorrowed("default", H100Cluster(8), &kernel_, &collective_).ok());
  // No V100 bank registered: the error names the registered archs.
  Result<std::shared_ptr<const Deployment>> missing = registry.Resolve("v100x16");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(missing.status().message().find("V100"), std::string::npos);

  // Registering a V100 bank (under any name) unlocks the what-if.
  RandomForestKernelEstimator v100_kernel;
  ProfiledCollectiveEstimator v100_collective;
  ASSERT_TRUE(
      registry.RegisterBorrowed("v100-bank", V100Cluster(8), &v100_kernel, &v100_collective)
          .ok());
  Result<std::shared_ptr<const Deployment>> derived = registry.Resolve("v100x16");
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  EXPECT_EQ((*derived)->derived_from, "v100-bank");
  EXPECT_EQ((*derived)->kernel_estimator, &v100_kernel);
  EXPECT_EQ((*derived)->cluster.total_gpus(), 16);
}

TEST_F(DeploymentRegistryTest, DerivedEvictionIsLeastRecentlyUsed) {
  // The policy pin for the ISSUE's eviction fix: the victim is the
  // least-recently-RESOLVED derived entry — not map (alphabetical) order,
  // and never a registered entry.
  DeploymentRegistry registry(SmallOptions(/*max_derived=*/2));
  ASSERT_TRUE(registry.RegisterBorrowed("default", H100Cluster(8), &kernel_, &collective_).ok());

  ASSERT_TRUE(registry.Resolve("h100x16").ok());  // A
  ASSERT_TRUE(registry.Resolve("h100x24").ok());  // B
  EXPECT_EQ(registry.derived_count(), 2u);
  // Touch A: B becomes least recently used. (Alphabetically "h100x16" <
  // "h100x24", so the old begin()-eviction would have picked A.)
  ASSERT_TRUE(registry.Resolve("h100x16").ok());
  ASSERT_TRUE(registry.Resolve("h100x32").ok());  // C evicts B
  EXPECT_EQ(registry.derived_count(), 2u);
  EXPECT_TRUE(registry.IsResident("h100x16"));
  EXPECT_FALSE(registry.IsResident("h100x24"));
  EXPECT_TRUE(registry.IsResident("h100x32"));
  EXPECT_TRUE(registry.IsResident("default"));  // registered entries never evict

  // An evicted name re-derives on demand.
  ASSERT_TRUE(registry.Resolve("h100x24").ok());
  EXPECT_TRUE(registry.IsResident("h100x24"));
  EXPECT_FALSE(registry.IsResident("h100x16"));  // was LRU after C's insert
}

TEST_F(DeploymentRegistryTest, ResidentNamesListsRegisteredThenDerived) {
  DeploymentRegistry registry(SmallOptions());
  ASSERT_TRUE(registry.RegisterBorrowed("default", H100Cluster(8), &kernel_, &collective_).ok());
  RandomForestKernelEstimator v100_kernel;
  ProfiledCollectiveEstimator v100_collective;
  ASSERT_TRUE(
      registry.RegisterBorrowed("v100-bank", V100Cluster(8), &v100_kernel, &v100_collective)
          .ok());
  ASSERT_TRUE(registry.Resolve("h100x32").ok());
  const std::vector<std::string> names = registry.ResidentNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "default");
  EXPECT_EQ(names[1], "v100-bank");
  EXPECT_EQ(names[2], "h100x32");
  ASSERT_EQ(registry.Registered().size(), 2u);
  EXPECT_EQ(registry.Registered()[0]->name, "default");
  EXPECT_EQ(registry.Registered()[1]->name, "v100-bank");
}

TEST_F(DeploymentRegistryTest, UntrainedOwnedBankRefused) {
  DeploymentRegistry registry(SmallOptions());
  EXPECT_EQ(registry.Register("default", H100Cluster(8), EstimatorBank{}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DeploymentRegistryTest, ConcurrentResolveSharesOnePipeline) {
  DeploymentRegistry registry(SmallOptions(/*max_derived=*/4));
  ASSERT_TRUE(registry.RegisterBorrowed("default", H100Cluster(8), &kernel_, &collective_).ok());
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const Deployment>> seen(8);
  for (size_t i = 0; i < seen.size(); ++i) {
    threads.emplace_back([&registry, &seen, i] {
      Result<std::shared_ptr<const Deployment>> resolved = registry.Resolve("h100x16");
      if (resolved.ok()) {
        seen[i] = *resolved;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // Whatever the interleaving, exactly one derived entry is resident and it
  // answers every resolver.
  EXPECT_EQ(registry.derived_count(), 1u);
  Result<std::shared_ptr<const Deployment>> resident = registry.Resolve("h100x16");
  ASSERT_TRUE(resident.ok());
  for (const std::shared_ptr<const Deployment>& deployment : seen) {
    ASSERT_NE(deployment, nullptr);
    EXPECT_EQ(deployment->cluster.total_gpus(), 16);
  }
}

}  // namespace
}  // namespace maya
