// Tests for the trace model, collator, worker deduplication and JSON
// serialization round-trips (§4.2).
#include <gtest/gtest.h>

#include "src/trace/collator.h"
#include "src/trace/serialization.h"
#include "src/trace/trace.h"

namespace maya {
namespace {

TraceOp Kernel(uint64_t stream, int64_t m = 64) {
  TraceOp op;
  op.type = TraceOpType::kKernelLaunch;
  op.stream = stream;
  op.kernel = MakeGemm(m, 64, 64, DType::kBf16);
  op.host_delay_us = 3.0;
  return op;
}

TraceOp Collective(uint64_t uid, uint32_t seq, int nranks, int rank_in_comm,
                   CollectiveKind kind = CollectiveKind::kAllReduce, int peer = -1) {
  TraceOp op;
  op.type = TraceOpType::kCollective;
  op.stream = 1;
  op.collective.kind = kind;
  op.collective.bytes = 4096;
  op.collective.comm_uid = uid;
  op.collective.seq = seq;
  op.collective.nranks = nranks;
  op.collective.rank_in_comm = rank_in_comm;
  op.collective.peer = peer;
  return op;
}

WorkerTrace MakeWorker(int rank, std::vector<TraceOp> ops,
                       std::vector<CommInitRecord> inits = {}) {
  WorkerTrace worker;
  worker.rank = rank;
  worker.ops = std::move(ops);
  worker.comm_inits = std::move(inits);
  return worker;
}

// ---- Structural signatures and fingerprints --------------------------------------

TEST(TraceOpTest, SignatureIgnoresCommUidAndTimes) {
  TraceOp a = Collective(111, 5, 4, 2);
  TraceOp b = Collective(999, 5, 4, 2);  // different uid: data-parallel twin
  b.host_delay_us = 42.0;
  b.duration_us = 7.0;
  EXPECT_EQ(a.StructuralSignature(), b.StructuralSignature());
}

TEST(TraceOpTest, SignatureSeesShapeDifferences) {
  EXPECT_NE(Kernel(0, 64).StructuralSignature(), Kernel(0, 128).StructuralSignature());
  EXPECT_NE(Kernel(0).StructuralSignature(), Kernel(1).StructuralSignature());
  // Symmetric collectives: the rank-in-group is non-structural...
  EXPECT_EQ(Collective(1, 0, 4, 0).StructuralSignature(),
            Collective(1, 0, 4, 1).StructuralSignature());
  // ...but group size is, and for p2p transfers the role is too.
  EXPECT_NE(Collective(1, 0, 4, 0).StructuralSignature(),
            Collective(1, 0, 8, 0).StructuralSignature());
  EXPECT_NE(Collective(1, 0, 2, 0, CollectiveKind::kSend, 1).StructuralSignature(),
            Collective(1, 0, 2, 1, CollectiveKind::kSend, 0).StructuralSignature());
}

TEST(WorkerTraceTest, FingerprintOrderSensitive) {
  WorkerTrace ab = MakeWorker(0, {Kernel(0, 64), Kernel(0, 128)});
  WorkerTrace ba = MakeWorker(1, {Kernel(0, 128), Kernel(0, 64)});
  EXPECT_NE(ab.Fingerprint(), ba.Fingerprint());
}

TEST(WorkerTraceTest, TwinsShareFingerprint) {
  WorkerTrace a = MakeWorker(0, {Kernel(0), Collective(10, 0, 2, 0)});
  WorkerTrace b = MakeWorker(5, {Kernel(0), Collective(20, 0, 2, 0)});
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(WorkerTraceTest, CountsAndSummary) {
  WorkerTrace worker = MakeWorker(3, {Kernel(0), Kernel(0), Collective(1, 0, 2, 0)});
  EXPECT_EQ(worker.KernelLaunchCount(), 2u);
  EXPECT_EQ(worker.CollectiveCount(), 1u);
  EXPECT_DOUBLE_EQ(worker.TotalHostDelayUs(), 6.0);
  EXPECT_NE(worker.Summary().find("rank 3"), std::string::npos);
}

// ---- Collation -------------------------------------------------------------------

TEST(CollatorTest, BuildsCommMembershipFromEvidence) {
  // Two workers in one 2-rank communicator.
  WorkerTrace w0 = MakeWorker(0, {Collective(7, 0, 2, 0)}, {{7, 2, 0}});
  WorkerTrace w1 = MakeWorker(1, {Kernel(0), Collective(7, 0, 2, 1)}, {{7, 2, 1}});
  TraceCollator collator(CollationOptions{/*deduplicate=*/false});
  Result<JobTrace> job = collator.Collate({w0, w1});
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->world_size, 2);
  ASSERT_EQ(job->workers.size(), 2u);
  const CommGroup& group = job->comm(7);
  EXPECT_EQ(group.nranks, 2);
  EXPECT_EQ(group.members, (std::vector<int>{0, 1}));
}

TEST(CollatorTest, RejectsInconsistentCommSizes) {
  WorkerTrace w0 = MakeWorker(0, {}, {{7, 2, 0}});
  WorkerTrace w1 = MakeWorker(1, {}, {{7, 4, 1}});
  TraceCollator collator;
  EXPECT_FALSE(collator.Collate({w0, w1}).ok());
}

TEST(CollatorTest, RejectsDuplicateRankClaims) {
  WorkerTrace w0 = MakeWorker(0, {}, {{7, 2, 0}});
  WorkerTrace w1 = MakeWorker(1, {}, {{7, 2, 0}});
  TraceCollator collator;
  EXPECT_FALSE(collator.Collate({w0, w1}).ok());
}

TEST(CollatorTest, RejectsIncompleteMembership) {
  WorkerTrace w0 = MakeWorker(0, {}, {{7, 2, 0}});  // rank_in_comm 1 never claimed
  TraceCollator collator;
  EXPECT_FALSE(collator.Collate({w0}).ok());
}

TEST(CollatorTest, RejectsEmptyInput) {
  TraceCollator collator;
  EXPECT_FALSE(collator.Collate({}).ok());
}

TEST(CollatorTest, DeduplicationFoldsTwins) {
  // 4 twins across 2 communicators of identical shape: all perform the same
  // symmetric work, so dedup folds them onto one representative.
  std::vector<WorkerTrace> workers;
  for (int rank = 0; rank < 4; ++rank) {
    const uint64_t uid = 100 + static_cast<uint64_t>(rank % 2);
    workers.push_back(MakeWorker(
        rank, {Kernel(0), Collective(uid, 0, 2, rank / 2)}, {{uid, 2, rank / 2}}));
  }
  TraceCollator collator(CollationOptions{/*deduplicate=*/true});
  Result<JobTrace> job = collator.Collate(workers);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->workers.size(), 1u);
  EXPECT_EQ(collator.stats().duplicates_folded, 3);
  EXPECT_EQ(job->folded_ranks[0], (RankSet{0, 1, 2, 3}));
}

TEST(CollatorTest, ParallelFingerprintPassBitIdentical) {
  // The fingerprint pass fans out on a borrowed pool (the pipeline's shared
  // ExecutionContext in production); grouping consumes the fingerprints in
  // the original sequential worker order, so the collated trace must be
  // bit-identical to the sequential pass — workers, fold sets and stats.
  const auto make_workers = [] {
    std::vector<WorkerTrace> workers;
    for (int rank = 0; rank < 16; ++rank) {
      const uint64_t uid = 100 + static_cast<uint64_t>(rank % 4);
      std::vector<TraceOp> ops;
      for (int i = 0; i < 8; ++i) {
        ops.push_back(Kernel(0, 64 << (i % 3)));
      }
      ops.push_back(Collective(uid, 0, 4, rank / 4));
      workers.push_back(MakeWorker(rank, std::move(ops), {{uid, 4, rank / 4}}));
    }
    return workers;
  };
  ThreadPool pool(4);
  CollationOptions parallel_options;
  parallel_options.pool = &pool;
  parallel_options.parallel_fingerprint_threshold = 1;
  TraceCollator parallel(parallel_options);
  TraceCollator sequential;
  Result<JobTrace> a = parallel.Collate(make_workers());
  Result<JobTrace> b = sequential.Collate(make_workers());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->workers.size(), b->workers.size());
  for (size_t i = 0; i < a->workers.size(); ++i) {
    EXPECT_TRUE(a->workers[i] == b->workers[i]) << "worker " << i;
  }
  EXPECT_EQ(a->folded_ranks, b->folded_ranks);
  EXPECT_EQ(a->world_size, b->world_size);
  EXPECT_EQ(parallel.stats().unique_workers, sequential.stats().unique_workers);
  EXPECT_EQ(parallel.stats().duplicates_folded, sequential.stats().duplicates_folded);
}

TEST(CollatorTest, DedupOffKeepsAllWorkers) {
  std::vector<WorkerTrace> workers;
  for (int rank = 0; rank < 4; ++rank) {
    workers.push_back(MakeWorker(rank, {Kernel(0)}));
  }
  TraceCollator collator(CollationOptions{/*deduplicate=*/false});
  Result<JobTrace> job = collator.Collate(workers);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->workers.size(), 4u);
  EXPECT_EQ(collator.stats().duplicates_folded, 0);
}

TEST(CollatorTest, StubsAttachToDeclaredRepresentative) {
  WorkerTrace full = MakeWorker(0, {Kernel(0)}, {{5, 2, 0}});
  WorkerTrace stub = MakeWorker(1, {}, {{5, 2, 1}});
  stub.comm_init_only = true;
  stub.duplicate_of = 0;
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate({full, stub});
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->workers.size(), 1u);
  EXPECT_EQ(job->folded_ranks[0], (RankSet{0, 1}));
  // Membership evidence from the stub still resolved the communicator.
  EXPECT_EQ(job->comm(5).members, (std::vector<int>{0, 1}));
}

TEST(CollatorTest, StubWithoutRepresentativeRejected) {
  WorkerTrace full = MakeWorker(0, {Kernel(0)}, {{5, 2, 0}});
  WorkerTrace stub = MakeWorker(1, {}, {{5, 2, 1}});
  stub.comm_init_only = true;  // duplicate_of left at -1
  TraceCollator collator;
  EXPECT_FALSE(collator.Collate({full, stub}).ok());
}

TEST(CollatorTest, P2pEndpointsNeverFoldTogether) {
  // Both endpoints of a send/recv link can have identical structure (e.g.
  // middle pipeline stages whose interleaved schedules saturate) — folding
  // them would self-deadlock. The collator splits such classes along the
  // p2p chain instead.
  WorkerTrace w0 =
      MakeWorker(0, {Collective(9, 0, 2, 0, CollectiveKind::kSend, 1)}, {{9, 2, 0}});
  WorkerTrace w1 =
      MakeWorker(1, {Collective(9, 0, 2, 0, CollectiveKind::kSend, 0)}, {{9, 2, 1}});
  TraceCollator collator(CollationOptions{/*deduplicate=*/true});
  Result<JobTrace> job = collator.Collate({w0, w1});
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->workers.size(), 2u);  // no folding across the link
  EXPECT_EQ(collator.stats().duplicates_folded, 0);
}

TEST(CollatorTest, IsomorphicChainsFoldPositionally) {
  // Two disjoint 2-stage chains (data-parallel pipeline replicas): stage i
  // of chain B folds onto stage i of chain A, preserving both links.
  auto chain_worker = [](int rank, uint64_t link_uid, int role) {
    return MakeWorker(rank,
                      {Collective(link_uid, 0, 2, role,
                                  role == 0 ? CollectiveKind::kSend : CollectiveKind::kRecv)},
                      {{link_uid, 2, role}});
  };
  // Chain A: ranks 0 (send on 100) and 1 (recv on 100); chain B: 2/3 on 200.
  TraceCollator collator(CollationOptions{/*deduplicate=*/true});
  Result<JobTrace> job = collator.Collate({chain_worker(0, 100, 0), chain_worker(1, 100, 1),
                                           chain_worker(2, 200, 0), chain_worker(3, 200, 1)});
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_EQ(job->workers.size(), 2u);
  EXPECT_EQ(job->folded_ranks[0], (RankSet{0, 2}));
  EXPECT_EQ(job->folded_ranks[1], (RankSet{1, 3}));
}

TEST(CollatorTest, JobTraceSummaryCountsOps) {
  WorkerTrace w0 = MakeWorker(0, {Kernel(0), Kernel(0)});
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate({w0});
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->TotalOps(), 2u);
  EXPECT_NE(job->Summary().find("1 unique workers"), std::string::npos);
}

// ---- Serialization ----------------------------------------------------------------

TEST(SerializationTest, WorkerTraceRoundTrip) {
  WorkerTrace worker = MakeWorker(
      2,
      {Kernel(0, 128), Collective(55, 3, 4, 1, CollectiveKind::kReduceScatter)},
      {{55, 4, 1}});
  worker.ops[0].duration_us = 12.5;
  TraceOp event_op;
  event_op.type = TraceOpType::kEventRecord;
  event_op.stream = 2;
  event_op.event = {7, 3};
  worker.ops.push_back(event_op);
  TraceOp malloc_op;
  malloc_op.type = TraceOpType::kMalloc;
  malloc_op.memory = {4096, 0xabc};
  worker.ops.push_back(malloc_op);
  TraceOp sync_op;
  sync_op.type = TraceOpType::kDeviceSynchronize;
  worker.ops.push_back(sync_op);
  worker.peak_device_bytes = 999;

  const std::string json = SerializeWorkerTrace(worker);
  Result<WorkerTrace> parsed = ParseWorkerTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rank, 2);
  EXPECT_EQ(parsed->peak_device_bytes, 999u);
  ASSERT_EQ(parsed->ops.size(), worker.ops.size());
  EXPECT_EQ(parsed->ops[0].kernel.params[0], 128);
  EXPECT_DOUBLE_EQ(parsed->ops[0].duration_us, 12.5);
  EXPECT_EQ(parsed->ops[1].collective.kind, CollectiveKind::kReduceScatter);
  EXPECT_EQ(parsed->ops[1].collective.comm_uid, 55u);
  EXPECT_EQ(parsed->ops[2].event.event_id, 7u);
  EXPECT_EQ(parsed->ops[3].memory.bytes, 4096u);
  ASSERT_EQ(parsed->comm_inits.size(), 1u);
  EXPECT_EQ(parsed->comm_inits[0].rank_in_comm, 1);
  // Structural identity is preserved exactly.
  EXPECT_EQ(parsed->Fingerprint(), worker.Fingerprint());
}

TEST(SerializationTest, JobTraceSerializesCommsAndFolding) {
  WorkerTrace w0 = MakeWorker(0, {Collective(7, 0, 2, 0)}, {{7, 2, 0}});
  WorkerTrace w1 = MakeWorker(1, {Collective(7, 0, 2, 1)}, {{7, 2, 1}});
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate({w0, w1});
  ASSERT_TRUE(job.ok());
  const std::string json = SerializeJobTrace(*job);
  EXPECT_NE(json.find("\"world_size\":2"), std::string::npos);
  EXPECT_NE(json.find("\"comms\""), std::string::npos);
  EXPECT_NE(json.find("\"folded_spans\""), std::string::npos);
}

TEST(SerializationTest, ParseRejectsMalformedTrace) {
  EXPECT_FALSE(ParseWorkerTrace("not json").ok());
  EXPECT_FALSE(ParseWorkerTrace(R"({"rank": 0})").ok());  // incomplete — CHECKs are avoided
}

TEST(SerializationTest, JobTraceStrictRoundTrip) {
  // Collate a small job with folding, multiple op types and annotated
  // durations, then require serialize(parse(serialize(job))) to be the exact
  // same bytes — the fixed-point property the service relies on for
  // pre-collated trace payloads.
  std::vector<WorkerTrace> workers;
  for (int rank = 0; rank < 4; ++rank) {
    const uint64_t uid = 100 + static_cast<uint64_t>(rank % 2);
    WorkerTrace worker = MakeWorker(
        rank, {Kernel(0, 64 + 64 * (rank % 2)), Collective(uid, 0, 2, rank / 2)},
        {{uid, 2, rank / 2}});
    worker.ops[0].duration_us = 3.25 + rank;
    worker.peak_device_bytes = 1000u + static_cast<uint64_t>(rank);
    workers.push_back(std::move(worker));
  }
  TraceCollator collator(CollationOptions{/*deduplicate=*/true});
  Result<JobTrace> job = collator.Collate(workers);
  ASSERT_TRUE(job.ok()) << job.status().ToString();

  const std::string json = SerializeJobTrace(*job);
  Result<JobTrace> parsed = ParseJobTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->world_size, job->world_size);
  EXPECT_EQ(parsed->workers.size(), job->workers.size());
  EXPECT_EQ(parsed->folded_ranks, job->folded_ranks);
  ASSERT_EQ(parsed->comms.size(), job->comms.size());
  for (const auto& [uid, group] : job->comms) {
    ASSERT_TRUE(parsed->comms.count(uid) > 0);
    EXPECT_EQ(parsed->comm(uid).members, group.members);
  }
  for (size_t i = 0; i < job->workers.size(); ++i) {
    EXPECT_EQ(parsed->workers[i].Fingerprint(), job->workers[i].Fingerprint());
  }
  EXPECT_EQ(SerializeJobTrace(*parsed), json);
}

TEST(SerializationTest, ParseJobTraceRejectsInconsistentPayloads) {
  EXPECT_FALSE(ParseJobTrace("[]").ok());
  EXPECT_FALSE(ParseJobTrace(R"({"world_size":1})").ok());  // missing sections
  // A collective referencing an undeclared communicator is rejected rather
  // than CHECK-failing downstream in the simulator.
  WorkerTrace worker = MakeWorker(0, {Collective(42, 0, 2, 0)});
  const std::string json =
      R"({"world_size":1,"comms":[],"folded_ranks":[[0]],"workers":[)" +
      SerializeWorkerTrace(worker) + "]}";
  const Result<JobTrace> parsed = ParseJobTrace(json);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("undeclared comm"), std::string::npos);
  // Mismatched folded_ranks / workers lengths are rejected.
  const std::string mismatched =
      R"({"world_size":1,"comms":[],"folded_ranks":[[0],[1]],"workers":[)" +
      SerializeWorkerTrace(MakeWorker(0, {Kernel(0)})) + "]}";
  EXPECT_FALSE(ParseJobTrace(mismatched).ok());
  // Overlapping folded ranks (one rank claimed by two workers) would make
  // the simulator silently mis-synchronize collectives.
  const std::string overlapping =
      R"({"world_size":2,"comms":[],"folded_ranks":[[0],[0]],"workers":[)" +
      SerializeWorkerTrace(MakeWorker(0, {Kernel(0)})) + "," +
      SerializeWorkerTrace(MakeWorker(1, {Kernel(0)})) + "]}";
  const Result<JobTrace> overlap_parsed = ParseJobTrace(overlapping);
  EXPECT_FALSE(overlap_parsed.ok());
  EXPECT_NE(overlap_parsed.status().message().find("claimed by workers"), std::string::npos);
  // Folded ranks outside [0, world_size) would fall out of the simulator's
  // dense rank -> worker table and abort a collective rendezvous.
  const std::string out_of_range =
      R"({"world_size":1,"comms":[],"folded_ranks":[[0,7]],"workers":[)" +
      SerializeWorkerTrace(MakeWorker(0, {Kernel(0)})) + "]}";
  const Result<JobTrace> range_parsed = ParseJobTrace(out_of_range);
  EXPECT_FALSE(range_parsed.ok());
  EXPECT_NE(range_parsed.status().message().find("outside world size"), std::string::npos);
  // Wrong-typed fields are parse errors, not CHECK aborts.
  EXPECT_FALSE(
      ParseJobTrace(R"({"world_size":"two","comms":[],"folded_ranks":[],"workers":[]})").ok());
  EXPECT_FALSE(
      ParseJobTrace(R"({"world_size":1,"comms":{},"folded_ranks":[],"workers":[]})").ok());
}

}  // namespace
}  // namespace maya
