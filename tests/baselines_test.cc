// Baseline performance-model tests: Table 1 coverage matrices and the
// characteristic biases the paper measures (Calculon underestimates, AMPeD
// overestimates 2-3x, Proteus tracks V100 but degrades on H100).
#include <gtest/gtest.h>

#include "src/baselines/amped_like.h"
#include "src/baselines/calculon_like.h"
#include "src/baselines/proteus_like.h"
#include "src/models/model_zoo.h"

namespace maya {
namespace {

TrainConfig PlainConfig() {
  TrainConfig config;
  config.global_batch_size = 256;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 1;
  return config;
}

// ---- Coverage (Table 1) -------------------------------------------------------

TEST(CoverageTest, CalculonSupportsFullKnobSet) {
  CalculonLike calculon;
  TrainConfig config = PlainConfig();
  config.sequence_parallel = true;
  config.activation_recomputation = true;
  config.distributed_optimizer = true;
  config.virtual_pipeline_stages = 2;
  config.microbatch_multiplier = 4;
  EXPECT_TRUE(calculon.SupportsConfig(config));
  EXPECT_FALSE(calculon.SupportsArch(GpuArch::kV100));  // no bf16 on Volta
  EXPECT_TRUE(calculon.SupportsArch(GpuArch::kH100));
}

TEST(CoverageTest, AmpedDropsAdvancedKnobsFromItsRepresentation) {
  // AMPeD accepts any declarative config but its predefined model cannot
  // represent the advanced knobs — predictions are identical with them on
  // or off (the paper's semantic gap).
  AmpedLike amped;
  const ClusterSpec cluster = H100Cluster(8);
  const ModelConfig model = Gpt3_2_7B();
  TrainConfig with_knobs = PlainConfig();
  with_knobs.activation_recomputation = true;
  with_knobs.sequence_parallel = true;
  with_knobs.tensor_parallel = 2;
  with_knobs.distributed_optimizer = true;
  with_knobs.virtual_pipeline_stages = 2;
  TrainConfig without = PlainConfig();
  EXPECT_TRUE(amped.SupportsConfig(with_knobs));
  EXPECT_DOUBLE_EQ(amped.Predict(model, with_knobs, cluster)->iteration_us,
                   amped.Predict(model, without, cluster)->iteration_us);
}

TEST(CoverageTest, ProteusRejectsSequenceParallel) {
  ProteusLike proteus;
  EXPECT_TRUE(proteus.SupportsConfig(PlainConfig()));
  TrainConfig config = PlainConfig();
  config.sequence_parallel = true;
  config.tensor_parallel = 2;
  EXPECT_FALSE(proteus.SupportsConfig(config));
  // Interleaving, recomputation, distributed optimizer, accumulation are
  // expressible in the strategy tree.
  config = PlainConfig();
  config.virtual_pipeline_stages = 2;
  config.activation_recomputation = true;
  config.distributed_optimizer = true;
  config.microbatch_multiplier = 2;
  EXPECT_TRUE(proteus.SupportsConfig(config));
  EXPECT_TRUE(proteus.SupportsArch(GpuArch::kV100));
}

TEST(CoverageTest, UnsupportedConfigsReturnInvalidArgument) {
  ProteusLike proteus;
  TrainConfig config = PlainConfig();
  config.sequence_parallel = true;
  config.tensor_parallel = 2;
  Result<BaselinePrediction> prediction =
      proteus.Predict(Gpt3_2_7B(), config, H100Cluster(8));
  ASSERT_FALSE(prediction.ok());
  EXPECT_EQ(prediction.status().code(), StatusCode::kInvalidArgument);
}

// ---- Characteristic biases --------------------------------------------------------

TEST(BiasTest, AmpedOverestimatesCalculon) {
  // Without ground truth in this unit test, assert the relative ordering the
  // paper reports: AMPeD's prediction for the same configuration is several
  // times Calculon's.
  CalculonLike calculon;
  AmpedLike amped;
  const ClusterSpec cluster = H100Cluster(8);
  const ModelConfig model = Gpt3_2_7B();
  const TrainConfig config = PlainConfig();
  const double calculon_us = calculon.Predict(model, config, cluster)->iteration_us;
  const double amped_us = amped.Predict(model, config, cluster)->iteration_us;
  EXPECT_GT(amped_us, 2.0 * calculon_us);
}

TEST(BiasTest, ProteusH100GemmDatabaseMiscalibrated) {
  ProteusLike proteus;
  const ModelConfig model = Gpt3_2_7B();
  TrainConfig config = PlainConfig();
  // Same logical workload, per-GPU throughput prediction ratio across archs
  // should reflect hardware — unless the H100 database is miscalibrated.
  const double v100_us = proteus.Predict(model, config, V100Cluster(8))->iteration_us;
  const double h100_us = proteus.Predict(model, config, H100Cluster(8))->iteration_us;
  // H100 is ~8x V100 at the tensor core; a well-calibrated simulator would
  // predict h100 well below v100/3. The miscalibrated database doesn't.
  EXPECT_GT(h100_us, v100_us / 3.0);
}

TEST(BiasTest, PredictionsArePositiveAndFinite) {
  const ModelConfig model = Gpt3_2_7B();
  const ClusterSpec cluster = H100Cluster(16);
  TrainConfig config = PlainConfig();
  CalculonLike calculon;
  AmpedLike amped;
  ProteusLike proteus;
  for (const PerformanceModel* baseline :
       std::initializer_list<const PerformanceModel*>{&calculon, &amped, &proteus}) {
    if (!baseline->SupportsConfig(config)) {
      continue;
    }
    Result<BaselinePrediction> prediction = baseline->Predict(model, config, cluster);
    ASSERT_TRUE(prediction.ok()) << baseline->name();
    EXPECT_GT(prediction->iteration_us, 0.0) << baseline->name();
    EXPECT_GT(prediction->peak_memory_bytes, 0.0) << baseline->name();
  }
}

TEST(BiasTest, MemoryModelsSeeRecomputationSavings) {
  CalculonLike calculon;
  const ModelConfig model = Gpt3_18_4B();
  const ClusterSpec cluster = H100Cluster(32);
  TrainConfig config = PlainConfig();
  config.tensor_parallel = 4;
  config.pipeline_parallel = 2;
  const double without =
      calculon.Predict(model, config, cluster)->peak_memory_bytes;
  config.activation_recomputation = true;
  const double with = calculon.Predict(model, config, cluster)->peak_memory_bytes;
  EXPECT_LT(with, without);
}

TEST(BiasTest, AmpedMemoryModelIgnoresAttentionQuadratic) {
  // AMPeD's activation model drops the attention s^2 term, so its memory
  // estimate sits far below Calculon's for long sequences.
  CalculonLike calculon;
  AmpedLike amped;
  ModelConfig model = Gpt3_2_7B();
  model.seq_length = 4096;
  const ClusterSpec cluster = H100Cluster(8);
  const TrainConfig config = PlainConfig();
  EXPECT_LT(amped.Predict(model, config, cluster)->peak_memory_bytes,
            0.7 * calculon.Predict(model, config, cluster)->peak_memory_bytes);
}

TEST(BiasTest, PipelineBubbleRaisesPerDeviceCost) {
  CalculonLike calculon;
  const ModelConfig model = Gpt3_2_7B();
  const ClusterSpec cluster = H100Cluster(8);
  TrainConfig deep = PlainConfig();
  deep.tensor_parallel = 1;
  deep.pipeline_parallel = 8;
  deep.microbatch_multiplier = 1;  // 8 microbatches, (p-1)/(m+p-1) bubble
  TrainConfig shallow = deep;
  shallow.microbatch_multiplier = 8;  // 64 microbatches shrink the bubble
  const double deep_us = calculon.Predict(model, deep, cluster)->iteration_us;
  const double shallow_us = calculon.Predict(model, shallow, cluster)->iteration_us;
  // Same total work; the bubble-heavy schedule must be less efficient.
  EXPECT_GT(deep_us, shallow_us);
}

TEST(BiasTest, ProteusDeterministicPerShape) {
  ProteusLike proteus;
  const ModelConfig model = Gpt3_2_7B();
  const ClusterSpec cluster = V100Cluster(8);
  const TrainConfig config = PlainConfig();
  EXPECT_DOUBLE_EQ(proteus.Predict(model, config, cluster)->iteration_us,
                   proteus.Predict(model, config, cluster)->iteration_us);
}

}  // namespace
}  // namespace maya
