// FleetJournal durability tests: append/recover round-trips, torn-tail
// repair, byte-exact rollback of faulted appends (journal.append_torn /
// journal.fsync), checkpoint.partial leaving the previous state recoverable,
// and the PR's acceptance bar — a crash at an arbitrary point (no graceful
// checkpoint) recovers the exact fleet via checkpoint + journal replay, with
// warm predictions hex-identical to the pre-crash server.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/strings.h"
#include "src/estimator/serialization.h"
#include "src/service/artifact_store.h"
#include "src/service/fleet_journal.h"
#include "src/service/service_engine.h"

namespace maya {
namespace {

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig BaseConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

ProfileSweepOptions TestSweep() {
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1200;
  sweep.conv_samples = 100;
  sweep.generic_samples = 60;
  sweep.collective_sizes = 12;
  return sweep;
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir = (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string JournalPath(const std::string& state_dir) {
  return (std::filesystem::path(state_dir) / "journal.ndjson").string();
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

AddDeploymentPayload MakeAdd(const std::string& name, const std::string& cluster,
                             const std::string& sweep = "tiny",
                             const std::string& bundle_dir = "") {
  AddDeploymentPayload payload;
  payload.name = name;
  payload.cluster = cluster;
  payload.sweep = sweep;
  payload.bundle_dir = bundle_dir;
  return payload;
}

ServiceRequest AddRequest(uint64_t id, const AddDeploymentPayload& payload) {
  ServiceRequest request;
  request.id = id;
  request.payload = payload;
  return request;
}

ServiceRequest PredictRequest(uint64_t id, const std::string& deployment = "") {
  ServiceRequest request;
  request.id = id;
  PredictPayload payload;
  payload.model = TinyGpt();
  payload.config = BaseConfig();
  payload.deployment = deployment;
  request.payload = std::move(payload);
  return request;
}

// The bit-reproducibility identity of a prediction.
std::string PredictSignature(const ServiceResponse& response) {
  return DoubleBits(response.iteration_time_us) + "/" + DoubleBits(response.mfu);
}

// Engines in this suite OWN their banks (SaveRegistry refuses borrowed-bank
// deployments), trained deterministically so two engines agree bit-for-bit.
std::unique_ptr<ServiceEngine> MakeOwningEngine(const ClusterSpec& cluster,
                                                ServiceEngineOptions options = {}) {
  const GroundTruthExecutor executor(cluster, 7);
  Result<std::unique_ptr<ServiceEngine>> created =
      ServiceEngine::Create(cluster, TrainEstimators(cluster, executor, TestSweep()), options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return *std::move(created);
}

TEST(FleetJournalTest, OpenOnFreshDirIsEmpty) {
  const std::string dir = FreshStateDir("journal_fresh");
  FleetJournal journal(dir);
  ASSERT_TRUE(journal.Open().ok());
  EXPECT_FALSE(journal.plan().has_checkpoint);
  EXPECT_TRUE(journal.plan().replay.empty());
  EXPECT_EQ(journal.plan().torn_records_dropped, 0u);
  const FleetJournalStats stats = journal.stats();
  EXPECT_EQ(stats.appends, 0u);
  EXPECT_EQ(stats.lag, 0u);
  EXPECT_EQ(stats.last_checkpoint_age_s, -1.0);
  EXPECT_FALSE(journal.CheckpointDue());
}

TEST(FleetJournalTest, AppendRecoverRoundTripPreservesEveryField) {
  const std::string dir = FreshStateDir("journal_roundtrip");
  {
    FleetJournal journal(dir);
    ASSERT_TRUE(journal.Open().ok());
    ASSERT_TRUE(journal.AppendAdd(MakeAdd("fleet-a", "h100x16", "small")).ok());
    ASSERT_TRUE(journal.AppendAdd(MakeAdd("fleet-b", "v100x8", "", "/tmp/bundle")).ok());
    ASSERT_TRUE(journal.AppendRemove("fleet-a").ok());
    EXPECT_EQ(journal.stats().appends, 3u);
    EXPECT_EQ(journal.stats().lag, 3u);
  }  // close without checkpoint — every record must survive via the file alone

  FleetJournal reopened(dir);
  ASSERT_TRUE(reopened.Open().ok());
  const FleetRecoveryPlan& plan = reopened.plan();
  EXPECT_FALSE(plan.has_checkpoint);
  ASSERT_EQ(plan.replay.size(), 3u);

  EXPECT_EQ(plan.replay[0].seq, 1u);
  EXPECT_EQ(plan.replay[0].op, FleetJournalRecord::Op::kAdd);
  EXPECT_EQ(plan.replay[0].name, "fleet-a");
  EXPECT_EQ(plan.replay[0].cluster, "h100x16");
  EXPECT_EQ(plan.replay[0].sweep, "small");
  EXPECT_TRUE(plan.replay[0].bundle_dir.empty());

  EXPECT_EQ(plan.replay[1].seq, 2u);
  EXPECT_EQ(plan.replay[1].name, "fleet-b");
  EXPECT_EQ(plan.replay[1].cluster, "v100x8");
  EXPECT_EQ(plan.replay[1].bundle_dir, "/tmp/bundle");

  EXPECT_EQ(plan.replay[2].seq, 3u);
  EXPECT_EQ(plan.replay[2].op, FleetJournalRecord::Op::kRemove);
  EXPECT_EQ(plan.replay[2].name, "fleet-a");

  EXPECT_EQ(reopened.stats().replayed_records, 3u);
}

TEST(FleetJournalTest, TornTailIsRepairedAndJournalStaysAppendable) {
  const std::string dir = FreshStateDir("journal_torn");
  {
    FleetJournal journal(dir);
    ASSERT_TRUE(journal.Open().ok());
    ASSERT_TRUE(journal.AppendAdd(MakeAdd("alpha", "h100x8")).ok());
    ASSERT_TRUE(journal.AppendAdd(MakeAdd("beta", "h100x16")).ok());
  }
  // Simulate kill -9 mid-append: trailing bytes with no newline.
  {
    std::ofstream out(JournalPath(dir), std::ios::binary | std::ios::app);
    out << R"({"seq":3,"op":"add","na)";
  }

  FleetJournal repaired(dir);
  ASSERT_TRUE(repaired.Open().ok());
  EXPECT_EQ(repaired.plan().torn_records_dropped, 1u);
  ASSERT_EQ(repaired.plan().replay.size(), 2u);
  EXPECT_EQ(repaired.plan().replay[1].name, "beta");

  // The torn record's mutation was never acknowledged, so its seq is free to
  // reuse; the repaired journal appends contiguously.
  ASSERT_TRUE(repaired.AppendRemove("alpha").ok());

  FleetJournal verified(dir);
  ASSERT_TRUE(verified.Open().ok());
  ASSERT_EQ(verified.plan().replay.size(), 3u);
  EXPECT_EQ(verified.plan().replay[2].seq, 3u);
  EXPECT_EQ(verified.plan().replay[2].op, FleetJournalRecord::Op::kRemove);
  EXPECT_EQ(verified.plan().torn_records_dropped, 0u);
}

TEST(FleetJournalTest, FaultedAppendRollsBackFileByteIdentical) {
  const std::string dir = FreshStateDir("journal_fault_rollback");
  FaultInjection& faults = FaultInjection::Instance();
  faults.Disarm();

  FleetJournal journal(dir);
  ASSERT_TRUE(journal.Open().ok());
  ASSERT_TRUE(journal.AppendAdd(MakeAdd("kept", "h100x8")).ok());
  const std::string before = ReadBytes(JournalPath(dir));
  ASSERT_FALSE(before.empty());

  // A torn write (half the line lands) must be truncated away.
  ASSERT_TRUE(faults.Configure("journal.append_torn=1", 1).ok());
  EXPECT_FALSE(journal.AppendAdd(MakeAdd("torn", "h100x16")).ok());
  faults.Disarm();
  EXPECT_EQ(ReadBytes(JournalPath(dir)), before);

  // A failed fsync means the record may not be durable — same rollback.
  ASSERT_TRUE(faults.Configure("journal.fsync=1", 1).ok());
  EXPECT_FALSE(journal.AppendRemove("kept").ok());
  faults.Disarm();
  EXPECT_EQ(ReadBytes(JournalPath(dir)), before);
  EXPECT_EQ(journal.stats().append_failures, 2u);
  EXPECT_EQ(journal.stats().appends, 1u);

  // Failed appends do not consume sequence numbers: the next success is seq 2.
  ASSERT_TRUE(journal.AppendAdd(MakeAdd("second", "h100x16")).ok());
  FleetJournal reopened(dir);
  ASSERT_TRUE(reopened.Open().ok());
  ASSERT_EQ(reopened.plan().replay.size(), 2u);
  EXPECT_EQ(reopened.plan().replay[0].seq, 1u);
  EXPECT_EQ(reopened.plan().replay[1].seq, 2u);
  EXPECT_EQ(reopened.plan().replay[1].name, "second");
}

// An engine-driven checkpoint compacts the journal, and recovery prefers the
// checkpoint bundle — restoring the registered fleet with warm predictions
// hex-identical to the saving engine.
TEST(FleetJournalTest, CheckpointCompactsAndRecoversBitIdentical) {
  const std::string dir = FreshStateDir("journal_checkpoint");
  const ClusterSpec cluster = H100Cluster(8);
  FaultInjection::Instance().Disarm();

  FleetJournalOptions journal_options;
  journal_options.checkpoint_every = 1;  // checkpoint after every mutation
  FleetJournal journal(dir, journal_options);
  ASSERT_TRUE(journal.Open().ok());

  ServiceEngineOptions options;
  options.journal = &journal;
  std::unique_ptr<ServiceEngine> engine = MakeOwningEngine(cluster, options);

  const ServiceResponse added =
      engine->Submit(AddRequest(1, MakeAdd("aux", "h100x16", "tiny"))).get();
  ASSERT_TRUE(added.ok) << added.error;

  // The add was journaled, then checkpoint_every=1 forced a checkpoint which
  // compacted the journal back to empty.
  const FleetJournalStats stats = journal.stats();
  EXPECT_EQ(stats.appends, 1u);
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_EQ(stats.lag, 0u);
  EXPECT_GE(stats.last_checkpoint_age_s, 0.0);
  EXPECT_EQ(std::filesystem::file_size(JournalPath(dir)), 0u);

  const ServiceResponse base_predict = engine->Submit(PredictRequest(2)).get();
  const ServiceResponse aux_predict = engine->Submit(PredictRequest(3, "aux")).get();
  ASSERT_TRUE(base_predict.ok && aux_predict.ok);
  engine->Shutdown();

  // Recovery: the plan points at the checkpoint, nothing to replay.
  FleetJournal recovered(dir);
  ASSERT_TRUE(recovered.Open().ok());
  ASSERT_TRUE(recovered.plan().has_checkpoint);
  EXPECT_EQ(recovered.plan().checkpoint_seq, 1u);
  EXPECT_TRUE(recovered.plan().replay.empty());

  Result<std::unique_ptr<ServiceEngine>> restarted = ServiceEngine::FromArtifacts(
      cluster, ArtifactStore(recovered.plan().checkpoint_dir), ServiceEngineOptions{});
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  EXPECT_TRUE((*restarted)->registry().IsResident("aux"));

  const ServiceResponse base_again = (*restarted)->Submit(PredictRequest(4)).get();
  const ServiceResponse aux_again = (*restarted)->Submit(PredictRequest(5, "aux")).get();
  ASSERT_TRUE(base_again.ok && aux_again.ok);
  EXPECT_EQ(PredictSignature(base_again), PredictSignature(base_predict));
  EXPECT_EQ(PredictSignature(aux_again), PredictSignature(aux_predict));
  (*restarted)->Shutdown();
}

// checkpoint.partial fires between the bundle write and the pointer publish:
// the mutation stays acknowledged (checkpoints are advisory), the previous
// pointer state survives, and recovery replays the journal instead.
TEST(FleetJournalTest, CheckpointPartialFaultKeepsJournalRecoverable) {
  const std::string dir = FreshStateDir("journal_partial_checkpoint");
  const ClusterSpec cluster = H100Cluster(8);
  FaultInjection& faults = FaultInjection::Instance();
  faults.Disarm();

  FleetJournalOptions journal_options;
  journal_options.checkpoint_every = 1;
  FleetJournal journal(dir, journal_options);
  ASSERT_TRUE(journal.Open().ok());

  ServiceEngineOptions options;
  options.journal = &journal;
  std::unique_ptr<ServiceEngine> engine = MakeOwningEngine(cluster, options);

  ASSERT_TRUE(faults.Configure("checkpoint.partial=1", 3).ok());
  const ServiceResponse added =
      engine->Submit(AddRequest(1, MakeAdd("aux", "h100x16", "tiny"))).get();
  faults.Disarm();
  ASSERT_TRUE(added.ok) << added.error;  // the ADD succeeded; only the
                                         // checkpoint was lost
  EXPECT_EQ(journal.stats().checkpoint_failures, 1u);
  EXPECT_EQ(journal.stats().checkpoints, 0u);
  EXPECT_EQ(journal.stats().lag, 1u);
  engine->Shutdown();

  FleetJournal recovered(dir);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_FALSE(recovered.plan().has_checkpoint);
  ASSERT_EQ(recovered.plan().replay.size(), 1u);
  EXPECT_EQ(recovered.plan().replay[0].name, "aux");
}

// The acceptance bar for the journal-only path: kill the server with NO
// checkpoint ever taken, replay the journal tail through the normal admin
// path on a fresh engine, and every warm predict answers hex-identically.
TEST(FleetJournalTest, CrashRecoveryReplayIsBitIdentical) {
  const std::string dir = FreshStateDir("journal_replay_bitident");
  const ClusterSpec cluster = H100Cluster(8);
  FaultInjection::Instance().Disarm();

  std::string before_default;
  std::string before_aux;
  {
    FleetJournalOptions journal_options;
    journal_options.checkpoint_every = 100;  // never auto-checkpoint
    FleetJournal journal(dir, journal_options);
    ASSERT_TRUE(journal.Open().ok());
    ServiceEngineOptions options;
    options.journal = &journal;
    std::unique_ptr<ServiceEngine> engine = MakeOwningEngine(cluster, options);

    const ServiceResponse added =
        engine->Submit(AddRequest(1, MakeAdd("aux", "h100x16", "tiny"))).get();
    ASSERT_TRUE(added.ok) << added.error;
    const ServiceResponse base_predict = engine->Submit(PredictRequest(2)).get();
    const ServiceResponse aux_predict = engine->Submit(PredictRequest(3, "aux")).get();
    ASSERT_TRUE(base_predict.ok && aux_predict.ok);
    before_default = PredictSignature(base_predict);
    before_aux = PredictSignature(aux_predict);
    engine->Shutdown();
    // Scope exit = crash: the journal fd just closes; every acknowledged
    // record was fsync'd at append time, so nothing else was needed.
  }

  FleetJournal journal(dir);
  ASSERT_TRUE(journal.Open().ok());
  EXPECT_FALSE(journal.plan().has_checkpoint);
  ASSERT_EQ(journal.plan().replay.size(), 1u);
  EXPECT_EQ(journal.stats().replayed_records, 1u);

  // Mirror maya_serve's recovery: build the base engine, replay the tail
  // through Submit (journal not yet attached), then attach.
  std::unique_ptr<ServiceEngine> engine = MakeOwningEngine(cluster);
  uint64_t id = 100;
  for (const FleetJournalRecord& record : journal.plan().replay) {
    ServiceRequest request;
    request.id = id++;
    if (record.op == FleetJournalRecord::Op::kAdd) {
      if (engine->registry().IsResident(record.name)) {
        continue;
      }
      request.payload = MakeAdd(record.name, record.cluster, record.sweep, record.bundle_dir);
    } else {
      if (!engine->registry().IsResident(record.name)) {
        continue;
      }
      request.payload = RemoveDeploymentPayload{record.name};
    }
    const ServiceResponse replayed = engine->Submit(std::move(request)).get();
    ASSERT_TRUE(replayed.ok) << replayed.error;
  }
  engine->AttachJournal(&journal);

  EXPECT_TRUE(engine->registry().IsResident("aux"));
  const ServiceResponse base_again = engine->Submit(PredictRequest(200)).get();
  const ServiceResponse aux_again = engine->Submit(PredictRequest(201, "aux")).get();
  ASSERT_TRUE(base_again.ok && aux_again.ok);
  EXPECT_EQ(PredictSignature(base_again), before_default);
  EXPECT_EQ(PredictSignature(aux_again), before_aux);

  // Post-recovery mutations journal through the attached journal, and a
  // remove replays as the inverse of its add.
  ASSERT_TRUE(engine->Submit(AddRequest(300, MakeAdd("aux2", "h100x8", "tiny"))).get().ok);
  ServiceRequest remove;
  remove.id = 301;
  remove.payload = RemoveDeploymentPayload{"aux2"};
  ASSERT_TRUE(engine->Submit(std::move(remove)).get().ok);
  engine->Shutdown();

  FleetJournal final_journal(dir);
  ASSERT_TRUE(final_journal.Open().ok());
  ASSERT_EQ(final_journal.plan().replay.size(), 3u);
  EXPECT_EQ(final_journal.plan().replay[1].name, "aux2");
  EXPECT_EQ(final_journal.plan().replay[1].op, FleetJournalRecord::Op::kAdd);
  EXPECT_EQ(final_journal.plan().replay[2].name, "aux2");
  EXPECT_EQ(final_journal.plan().replay[2].op, FleetJournalRecord::Op::kRemove);
}

// A journal append failure must refuse the admin mutation (JOURNAL_ERROR)
// and roll the registration back — an unjournaled mutation must never
// outlive a restart it cannot replay into.
TEST(FleetJournalTest, JournalAppendFailureRollsBackTheAdd) {
  const std::string dir = FreshStateDir("journal_refused_add");
  const ClusterSpec cluster = H100Cluster(8);
  FaultInjection& faults = FaultInjection::Instance();
  faults.Disarm();

  FleetJournal journal(dir);
  ASSERT_TRUE(journal.Open().ok());
  ServiceEngineOptions options;
  options.journal = &journal;
  std::unique_ptr<ServiceEngine> engine = MakeOwningEngine(cluster, options);

  ASSERT_TRUE(faults.Configure("journal.fsync=1", 5).ok());
  const ServiceResponse refused =
      engine->Submit(AddRequest(1, MakeAdd("ghost", "h100x16", "tiny"))).get();
  faults.Disarm();
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error_code, kErrJournal);
  EXPECT_FALSE(engine->registry().IsResident("ghost"));

  // Health surfaces the refusal; the engine keeps serving.
  const HealthStatus health = engine->Health();
  EXPECT_TRUE(health.journal_enabled);
  EXPECT_EQ(health.journal_append_failures, 1u);
  EXPECT_TRUE(engine->Submit(PredictRequest(2)).get().ok);
  engine->Shutdown();

  FleetJournal recovered(dir);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_TRUE(recovered.plan().replay.empty());
}

}  // namespace
}  // namespace maya
