// Unit tests for src/common: status/result, rng, stats, hashing, strings,
// JSON writer/parser round-trips, thread pool and table printing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/hash.h"
#include "src/common/json_parser.h"
#include "src/common/json_writer.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"

namespace maya {
namespace {

// ---- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::OutOfMemory("72 GiB requested");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(status.ToString(), "OUT_OF_MEMORY: 72 GiB requested");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "ALREADY_EXISTS");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = *std::move(result);
  EXPECT_EQ(*owned, 7);
}

// ---- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextUint64() == b.NextUint64() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent(9);
  Rng fork1 = parent.Fork(1);
  Rng fork1_again = Rng(9).Fork(1);
  EXPECT_EQ(fork1.NextUint64(), fork1_again.NextUint64());
  Rng fork2 = parent.Fork(2);
  EXPECT_NE(fork1.NextUint64(), fork2.NextUint64());
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.Uniform(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(RngTest, LognormalFactorHasUnitMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) {
    stats.Add(rng.LognormalFactor(0.2));
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitMix64AvoidsFixedPointZero) { EXPECT_NE(SplitMix64(0), 0u); }

// ---- Stats ----------------------------------------------------------------------

TEST(StatsTest, MeanAndStdDev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(StdDev(xs), 2.138, 1e-3);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(StatsTest, MapeMatchesHandComputation) {
  EXPECT_NEAR(MeanAbsolutePercentageError({100.0, 200.0}, {110.0, 180.0}), 10.0, 1e-9);
  EXPECT_NEAR(AbsolutePercentageError(50.0, 40.0), 20.0, 1e-9);
}

TEST(StatsTest, RunningStatsTracksMinMax) {
  RunningStats stats;
  for (double x : {3.0, -1.0, 7.0, 2.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
  EXPECT_NEAR(stats.mean(), 2.75, 1e-12);
}

// Pin the first-sample initialization: min/max must come from the data, not
// from the pre-first-Add zero state. A sign-crossing sequence (above) cannot
// catch a zero-initialized min_/max_ leaking through — these do.
TEST(StatsTest, RunningStatsMinMaxAllPositive) {
  RunningStats stats;
  for (double x : {5.0, 3.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.min(), 3.0);  // NOT 0.0
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(StatsTest, RunningStatsMinMaxAllNegative) {
  RunningStats stats;
  for (double x : {-5.0, -3.0, -9.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.min(), -9.0);
  EXPECT_DOUBLE_EQ(stats.max(), -3.0);  // NOT 0.0
}

// ---- Hash -----------------------------------------------------------------------

TEST(HashTest, FnvMatchesKnownVector) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(FnvHash(""), kFnvOffsetBasis);
  EXPECT_NE(FnvHash("a"), FnvHash("b"));
}

TEST(HashTest, RollingHashOrderSensitive) {
  RollingHash ab;
  ab.Update(1);
  ab.Update(2);
  RollingHash ba;
  ba.Update(2);
  ba.Update(1);
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(HashTest, RollingHashResets) {
  RollingHash hash;
  hash.Update(42);
  hash.Reset();
  EXPECT_EQ(hash.digest(), RollingHash().digest());
}

TEST(HashTest, HashCombineNotCommutative) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ---- Strings --------------------------------------------------------------------

TEST(StringsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, JoinHandlesEdges) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(3.0 * kGiB), "3.00 GiB");
}

TEST(StringsTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(500), "500 us");
  EXPECT_EQ(HumanDuration(2500), "2.50 ms");
  EXPECT_EQ(HumanDuration(3.2e6), "3.20 s");
  EXPECT_EQ(HumanDuration(120e6), "2.0 min");
}

// ---- JSON writer + parser round trip ----------------------------------------------

TEST(JsonTest, WriterProducesValidObject) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", std::string_view("maya"));
  w.Field("count", static_cast<int64_t>(3));
  w.Field("ratio", 0.5);
  w.Field("ok", true);
  w.KeyedBeginArray("xs");
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();
  Result<JsonValue> parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("name").AsString(), "maya");
  EXPECT_EQ(parsed->at("count").AsInt(), 3);
  EXPECT_DOUBLE_EQ(parsed->at("ratio").AsDouble(), 0.5);
  EXPECT_TRUE(parsed->at("ok").AsBool());
  EXPECT_EQ(parsed->at("xs").AsArray().size(), 2u);
}

TEST(JsonTest, EscapesSpecialCharacters) {
  JsonWriter w;
  w.BeginObject();
  w.Field("s", std::string_view("a\"b\\c\nd"));
  w.EndObject();
  Result<JsonValue> parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at("s").AsString(), "a\"b\\c\nd");
}

TEST(JsonTest, ParserHandlesNestedStructures) {
  Result<JsonValue> parsed = ParseJson(R"({"a": [1, {"b": null}, [true, false]], "c": -2.5e3})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->at("a").AsArray()[1].at("b").is_null());
  EXPECT_DOUBLE_EQ(parsed->at("c").AsDouble(), -2500.0);
}

TEST(JsonTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonTest, ParserHandlesUnicodeEscapes) {
  Result<JsonValue> parsed = ParseJson(R"(["A"])");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsArray()[0].AsString(), "A");
  EXPECT_FALSE(ParseJson("[\"\\u1F60\"]").ok());  // above 0xFF unsupported
}

// ---- ThreadPool -------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

// ---- TablePrinter -------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

// ---- Units ----------------------------------------------------------------------------

TEST(UnitsTest, TransferAndComputeConversions) {
  EXPECT_DOUBLE_EQ(TransferUs(1e9, 1e9), 1e6);        // 1 GB at 1 GB/s = 1 s
  EXPECT_DOUBLE_EQ(ComputeUs(2e12, 1e12), 2e6);       // 2 TFLOP at 1 TFLOP/s
}

// ---- Fault injection ------------------------------------------------------------------

// The registry is process-global; each test leaves it disarmed.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Instance().Disarm(); }
  void TearDown() override { FaultInjection::Instance().Disarm(); }
};

TEST_F(FaultInjectionTest, DisarmedProbesAlwaysSucceed) {
  FaultInjection& faults = FaultInjection::Instance();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(faults.MaybeFail("pipeline.simulate").ok());
  }
  EXPECT_EQ(faults.fired_count(), 0u);
  EXPECT_TRUE(faults.ArmedPatterns().empty());
}

TEST_F(FaultInjectionTest, ProbabilityOneFiresEveryProbe) {
  FaultInjection& faults = FaultInjection::Instance();
  ASSERT_TRUE(faults.Configure("service.worker=1", 7).ok());
  for (int i = 0; i < 10; ++i) {
    const Status probe = faults.MaybeFail("service.worker");
    EXPECT_FALSE(probe.ok());
    EXPECT_EQ(probe.code(), StatusCode::kInternal);
    EXPECT_NE(probe.ToString().find("service.worker"), std::string::npos);
  }
  EXPECT_EQ(faults.fired_count("service.worker"), 10u);
  // Unarmed sites are untouched.
  EXPECT_TRUE(faults.MaybeFail("pipeline.emulate").ok());
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverFires) {
  FaultInjection& faults = FaultInjection::Instance();
  ASSERT_TRUE(faults.Configure("pipeline.estimate=0", 7).ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(faults.MaybeFail("pipeline.estimate").ok());
  }
  EXPECT_EQ(faults.fired_count(), 0u);
}

TEST_F(FaultInjectionTest, FiringIsDeterministicGivenSeed) {
  FaultInjection& faults = FaultInjection::Instance();
  auto record = [&](uint64_t seed) {
    EXPECT_TRUE(faults.Configure("site.a=0.5,site.b=0.5", seed).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!faults.MaybeFail(i % 2 == 0 ? "site.a" : "site.b").ok());
    }
    return fired;
  };
  const std::vector<bool> first = record(11);
  const std::vector<bool> replay = record(11);
  EXPECT_EQ(first, replay);
  // Some probe fired and some did not at p=0.5 over 64 probes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  // A different seed produces a different firing pattern.
  EXPECT_NE(record(12), first);
}

TEST_F(FaultInjectionTest, WildcardArmsEveryPrefixedSite) {
  FaultInjection& faults = FaultInjection::Instance();
  ASSERT_TRUE(faults.Configure("artifact.*=1", 3).ok());
  EXPECT_FALSE(faults.MaybeFail("artifact.corrupt").ok());
  EXPECT_FALSE(faults.MaybeFail("artifact.rename_torn").ok());
  EXPECT_TRUE(faults.MaybeFail("service.submit").ok());
  // First listed rule wins: an exact rule ahead of the wildcard overrides it.
  ASSERT_TRUE(faults.Configure("artifact.read=0,artifact.*=1", 3).ok());
  EXPECT_TRUE(faults.MaybeFail("artifact.read").ok());
  EXPECT_FALSE(faults.MaybeFail("artifact.corrupt").ok());
}

TEST_F(FaultInjectionTest, MaxFiresCapsTotalFires) {
  FaultInjection& faults = FaultInjection::Instance();
  ASSERT_TRUE(faults.Configure("service.submit=1@3", 5).ok());
  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    if (!faults.MaybeFail("service.submit").ok()) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(faults.fired_count("service.submit"), 3u);
}

TEST_F(FaultInjectionTest, MalformedSpecsRejectedWithoutArming) {
  FaultInjection& faults = FaultInjection::Instance();
  for (const char* bad : {"no-equals", "site=", "site=nan", "site=2.0", "site=-0.5",
                          "site=0.5@", "site=0.5@-1", "=0.5", "site=0.5@zero"}) {
    EXPECT_FALSE(faults.Configure(bad, 1).ok()) << bad;
    EXPECT_TRUE(faults.ArmedPatterns().empty()) << bad;
    EXPECT_TRUE(faults.MaybeFail("site").ok()) << bad;
  }
  // A bad spec does not clobber a previously armed good one.
  ASSERT_TRUE(faults.Configure("site.kept=1", 1).ok());
  EXPECT_FALSE(faults.Configure("broken", 1).ok());
  EXPECT_FALSE(faults.MaybeFail("site.kept").ok());
}

TEST_F(FaultInjectionTest, EmptySpecDisarms) {
  FaultInjection& faults = FaultInjection::Instance();
  ASSERT_TRUE(faults.Configure("site.x=1", 1).ok());
  EXPECT_FALSE(faults.MaybeFail("site.x").ok());
  ASSERT_TRUE(faults.Configure("", 1).ok());
  EXPECT_TRUE(faults.MaybeFail("site.x").ok());
  EXPECT_EQ(faults.fired_count(), 0u);  // counters reset
}

}  // namespace
}  // namespace maya
