// Unit + property tests for src/hw: GPU specs, cluster topology and the
// analytical collective cost models.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/units.h"
#include "src/hw/cluster_spec.h"
#include "src/hw/collective_cost.h"

namespace maya {
namespace {

TEST(GpuSpecTest, CanonicalSpecsMatchDatasheets) {
  const GpuSpec v100 = V100Spec();
  EXPECT_EQ(v100.arch, GpuArch::kV100);
  EXPECT_NEAR(v100.peak_tensor_flops, 125e12, 1e9);
  EXPECT_EQ(v100.hbm_bytes, 40ULL * kGiB);  // paper's V100 DGX (§7.1)

  const GpuSpec h100 = H100Spec();
  EXPECT_GT(h100.peak_tensor_flops, 5.0 * v100.peak_tensor_flops);
  EXPECT_EQ(h100.hbm_bytes, 80ULL * kGiB);

  const GpuSpec a40 = A40Spec();
  EXPECT_EQ(a40.hbm_bytes, 48ULL * kGiB);
  EXPECT_STREQ(GpuArchName(a40.arch), "A40");
}

TEST(ClusterSpecTest, V100ClusterShape) {
  const ClusterSpec cluster = V100Cluster(16);
  EXPECT_EQ(cluster.num_nodes, 2);
  EXPECT_EQ(cluster.gpus_per_node, 8);
  EXPECT_EQ(cluster.total_gpus(), 16);
  EXPECT_EQ(cluster.intra_fabric, IntraNodeFabric::kCubeMesh);
  EXPECT_EQ(cluster.inter_fabric, InterNodeFabric::kInfiniBand);
  EXPECT_EQ(cluster.node_of(7), 0);
  EXPECT_EQ(cluster.node_of(8), 1);
  EXPECT_TRUE(cluster.SameNode(0, 7));
  EXPECT_FALSE(cluster.SameNode(7, 8));
}

TEST(ClusterSpecTest, SingleNodeHasNoInterconnect) {
  const ClusterSpec cluster = V100Cluster(8);
  EXPECT_EQ(cluster.num_nodes, 1);
  EXPECT_EQ(cluster.inter_fabric, InterNodeFabric::kNone);
}

TEST(ClusterSpecTest, SubNodeClusterSupported) {
  const ClusterSpec cluster = H100Cluster(4);
  EXPECT_EQ(cluster.gpus_per_node, 4);
  EXPECT_EQ(cluster.num_nodes, 1);
}

TEST(ClusterSpecTest, IsIntraNode) {
  const ClusterSpec cluster = H100Cluster(32);
  EXPECT_TRUE(cluster.IsIntraNode({0, 3, 7}));
  EXPECT_FALSE(cluster.IsIntraNode({0, 8}));
  EXPECT_TRUE(cluster.IsIntraNode({}));
}

TEST(ClusterSpecTest, A40NodeUsesPairwiseNvlink) {
  const ClusterSpec cluster = A40Node();
  EXPECT_EQ(cluster.intra_fabric, IntraNodeFabric::kPairwiseNvlink);
  EXPECT_EQ(cluster.total_gpus(), 8);
}

// ---- RingCollectiveModel properties ------------------------------------------

std::vector<int> Range(int n, int stride = 1) {
  std::vector<int> ranks;
  for (int i = 0; i < n; ++i) {
    ranks.push_back(i * stride);
  }
  return ranks;
}

TEST(RingModelTest, ZeroForSingleRank) {
  RingCollectiveModel model;
  const ClusterSpec cluster = H100Cluster(8);
  EXPECT_EQ(model.CollectiveUs({CollectiveKind::kAllReduce, 1 << 20, {0}}, cluster), 0.0);
}

TEST(RingModelTest, MonotoneInBytes) {
  RingCollectiveModel model;
  const ClusterSpec cluster = H100Cluster(8);
  double previous = 0.0;
  for (uint64_t bytes = 1 << 20; bytes <= (1ULL << 30); bytes *= 4) {
    const double us =
        model.CollectiveUs({CollectiveKind::kAllReduce, bytes, Range(8)}, cluster);
    EXPECT_GT(us, previous);
    previous = us;
  }
}

TEST(RingModelTest, AllReduceCostsTwiceReduceScatter) {
  RingCollectiveModel model;
  const ClusterSpec cluster = H100Cluster(8);
  const uint64_t bytes = 1ULL << 28;
  const double ar = model.CollectiveUs({CollectiveKind::kAllReduce, bytes, Range(8)}, cluster);
  const double rs =
      model.CollectiveUs({CollectiveKind::kReduceScatter, bytes, Range(8)}, cluster);
  EXPECT_NEAR(ar / rs, 2.0, 0.25);
}

TEST(RingModelTest, CrossNodeSlowerThanIntraNode) {
  RingCollectiveModel model;
  const ClusterSpec cluster = H100Cluster(16);
  const uint64_t bytes = 1ULL << 28;
  const double intra =
      model.CollectiveUs({CollectiveKind::kAllReduce, bytes, Range(8)}, cluster);
  const double inter =
      model.CollectiveUs({CollectiveKind::kAllReduce, bytes, Range(2, 8)}, cluster);
  EXPECT_GT(inter, intra);
}

TEST(RingModelTest, SendUsesLinkBandwidth) {
  RingCollectiveModel model;
  const ClusterSpec v100 = V100Cluster(16);
  const uint64_t bytes = 256ULL << 20;
  const double intra = model.CollectiveUs({CollectiveKind::kSend, bytes, {0, 1}}, v100);
  const double inter = model.CollectiveUs({CollectiveKind::kSend, bytes, {0, 8}}, v100);
  // 100 Gbps IB is far slower than NVLink.
  EXPECT_GT(inter, 5.0 * intra);
}

TEST(RingModelTest, CubeMeshLargeGroupsLoseBandwidth) {
  const ClusterSpec v100 = V100Cluster(8);
  EXPECT_GT(RingCollectiveModel::IntraBusBandwidth(v100, 2),
            RingCollectiveModel::IntraBusBandwidth(v100, 8));
}

TEST(RingModelTest, PairwiseNvlinkFallsBackToPcie) {
  const ClusterSpec a40 = A40Node();
  EXPECT_GT(RingCollectiveModel::IntraBusBandwidth(a40, 2),
            3.0 * RingCollectiveModel::IntraBusBandwidth(a40, 4));
}

TEST(RingModelTest, NvSwitchKeepsFullBandwidth) {
  const ClusterSpec h100 = H100Cluster(8);
  EXPECT_EQ(RingCollectiveModel::IntraBusBandwidth(h100, 2),
            RingCollectiveModel::IntraBusBandwidth(h100, 8));
}

TEST(AstraLikeTest, AddsCongestionOnlyAcrossNodes) {
  RingCollectiveModel ring;
  AstraLikeNetworkModel astra;
  const ClusterSpec cluster = H100Cluster(64);
  const uint64_t bytes = 1ULL << 28;
  // Intra-node: identical.
  EXPECT_DOUBLE_EQ(astra.CollectiveUs({CollectiveKind::kAllReduce, bytes, Range(8)}, cluster),
                   ring.CollectiveUs({CollectiveKind::kAllReduce, bytes, Range(8)}, cluster));
  // Cross-node: congested.
  const CollectiveRequest cross{CollectiveKind::kAllReduce, bytes, Range(8, 8)};
  EXPECT_GT(astra.CollectiveUs(cross, cluster), ring.CollectiveUs(cross, cluster));
}

TEST(AstraLikeTest, CongestionGrowsWithNodeCount) {
  AstraLikeNetworkModel astra;
  RingCollectiveModel ring;
  const ClusterSpec big = H100Cluster(1024);
  const uint64_t bytes = 1ULL << 28;
  const CollectiveRequest few{CollectiveKind::kAllReduce, bytes, Range(2, 8)};
  const CollectiveRequest many{CollectiveKind::kAllReduce, bytes, Range(128, 8)};
  const double ratio_few = astra.CollectiveUs(few, big) / ring.CollectiveUs(few, big);
  const double ratio_many = astra.CollectiveUs(many, big) / ring.CollectiveUs(many, big);
  EXPECT_GT(ratio_many, ratio_few);
}

// Parameterized: every collective kind costs something for multi-rank groups
// and is monotone in group-spanning topology.
class CollectiveKindTest : public ::testing::TestWithParam<CollectiveKind> {};

TEST_P(CollectiveKindTest, PositiveAndFiniteAcrossGroups) {
  RingCollectiveModel model;
  const ClusterSpec cluster = H100Cluster(32);
  const CollectiveKind kind = GetParam();
  for (int size : {2, 4, 8}) {
    const double us = model.CollectiveUs({kind, 64ULL << 20, Range(size)}, cluster);
    EXPECT_GT(us, 0.0) << CollectiveKindName(kind) << " size " << size;
    EXPECT_TRUE(std::isfinite(us));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CollectiveKindTest,
                         ::testing::Values(CollectiveKind::kAllReduce,
                                           CollectiveKind::kAllGather,
                                           CollectiveKind::kReduceScatter,
                                           CollectiveKind::kBroadcast,
                                           CollectiveKind::kReduce,
                                           CollectiveKind::kAllToAll),
                         [](const auto& info) {
                           return std::string(CollectiveKindName(info.param)).substr(4);
                         });

}  // namespace
}  // namespace maya
