// Ground-truth executor tests: cost-model monotonicity and calibration,
// deterministic noise, straggler/contention effects.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.h"
#include "src/groundtruth/collective_cost.h"
#include "src/groundtruth/executor.h"
#include "src/groundtruth/kernel_cost.h"

namespace maya {
namespace {

TEST(KernelCostTest, GemmScalesWithWork) {
  GroundTruthKernelModel model(H100Spec());
  const double small = model.MeanUs(MakeGemm(512, 512, 512, DType::kBf16));
  const double large = model.MeanUs(MakeGemm(4096, 4096, 4096, DType::kBf16));
  EXPECT_GT(large, 10.0 * small);  // 512x flops; efficiency also rises
}

TEST(KernelCostTest, Fp32GemmSlowerThanBf16) {
  GroundTruthKernelModel model(H100Spec());
  EXPECT_GT(model.MeanUs(MakeGemm(4096, 4096, 4096, DType::kFp32)),
            4.0 * model.MeanUs(MakeGemm(4096, 4096, 4096, DType::kBf16)));
}

TEST(KernelCostTest, ShallowGemmLessEfficient) {
  GroundTruthKernelModel model(H100Spec());
  // Same flops, shallow K vs deep K: shallow pays prologue amortization.
  const double shallow = model.MeanUs(MakeGemm(8192, 8192, 64, DType::kBf16));
  const double deep = model.MeanUs(MakeGemm(2048, 2048, 1024, DType::kBf16));
  EXPECT_GT(shallow, deep);
}

TEST(KernelCostTest, LaunchFloorDominatesTinyKernels) {
  GroundTruthKernelModel model(V100Spec());
  const double tiny = model.MeanUs(MakeElementwise(16, DType::kBf16));
  EXPECT_GE(tiny, 3.0);  // V100 launch floor ~3.5us
  EXPECT_LE(tiny, 6.0);
}

TEST(KernelCostTest, MemcpyHonorsPcieVsHbm) {
  GroundTruthKernelModel model(H100Spec());
  const int64_t bytes = 1LL << 30;
  const double h2d = model.MeanUs(MakeMemcpy(KernelKind::kMemcpyH2D, bytes));
  const double d2d = model.MeanUs(MakeMemcpy(KernelKind::kMemcpyD2D, bytes));
  EXPECT_GT(h2d, 3.0 * d2d);  // PCIe much slower than HBM
}

TEST(KernelCostTest, H100FasterThanV100OnBigGemm) {
  GroundTruthKernelModel h100(H100Spec());
  GroundTruthKernelModel v100(V100Spec());
  const KernelDesc gemm = MakeGemm(8192, 8192, 8192, DType::kBf16);
  EXPECT_LT(h100.MeanUs(gemm), v100.MeanUs(gemm) / 3.0);
}

TEST(KernelCostTest, AllKindsProducePositiveFiniteCosts) {
  GroundTruthKernelModel model(A40Spec());
  const KernelDesc descs[] = {
      MakeGemm(256, 256, 256, DType::kFp16),
      MakeLayerNorm(KernelKind::kLayerNormBackward, 4096, 1024, DType::kBf16),
      MakeSoftmax(KernelKind::kSoftmaxBackward, 8192, 2048, DType::kBf16),
      MakeDropout(1 << 20, DType::kBf16),
      MakeConv(KernelKind::kConvBackwardFilter, 16, 64, 56, 56, 128, 3, 3, 1, DType::kFp32),
      MakeTritonFused(1 << 20, 8, DType::kBf16),
      MakeEmbedding(KernelKind::kEmbeddingBackward, 4096, 1024, 50000, DType::kBf16),
      MakeOptimizerApply(1 << 22, 4, DType::kFp32),
      MakePooling(16, 64, 112, 112, 2, DType::kFp32),
      MakeCrossEntropy(KernelKind::kCrossEntropyBackward, 4096, 50000, DType::kFp32),
      MakeBatchNorm(KernelKind::kBatchNormBackward, 32, 128, 3136, DType::kFp32),
      MakeMemset(1 << 24),
  };
  for (const KernelDesc& desc : descs) {
    const double us = model.MeanUs(desc);
    EXPECT_GT(us, 0.0) << desc.ToString();
    EXPECT_TRUE(std::isfinite(us)) << desc.ToString();
  }
}

TEST(KernelCostTest, NoiseIsDeterministicPerInstance) {
  GroundTruthKernelModel model(H100Spec(), /*seed=*/42);
  const KernelDesc gemm = MakeGemm(1024, 1024, 1024, DType::kBf16);
  EXPECT_DOUBLE_EQ(model.NoisyUs(gemm, 7), model.NoisyUs(gemm, 7));
  EXPECT_NE(model.NoisyUs(gemm, 7), model.NoisyUs(gemm, 8));
  GroundTruthKernelModel other_seed(H100Spec(), /*seed=*/43);
  EXPECT_NE(model.NoisyUs(gemm, 7), other_seed.NoisyUs(gemm, 7));
}

TEST(KernelCostTest, NoiseSigmaShrinksWithDuration) {
  GroundTruthKernelModel model(H100Spec());
  EXPECT_GT(model.NoiseSigma(2.0), model.NoiseSigma(1000.0));
  EXPECT_NEAR(model.NoiseSigma(1e6), 0.03, 0.005);  // long-kernel floor
}

TEST(KernelCostTest, NoiseIsUnbiasedOnAverage) {
  GroundTruthKernelModel model(H100Spec());
  const KernelDesc gemm = MakeGemm(2048, 2048, 2048, DType::kBf16);
  const double mean = model.MeanUs(gemm);
  RunningStats stats;
  for (uint64_t i = 0; i < 4000; ++i) {
    stats.Add(model.NoisyUs(gemm, i));
  }
  EXPECT_NEAR(stats.mean() / mean, 1.0, 0.02);
}

// ---- Collective ground truth -------------------------------------------------------

std::vector<int> Range(int n) {
  std::vector<int> ranks(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ranks[static_cast<size_t>(i)] = i;
  }
  return ranks;
}

TEST(CollectiveCostTest, AddsSetupOverheadOverRingModel) {
  const ClusterSpec cluster = H100Cluster(8);
  GroundTruthCollectiveModel truth(cluster);
  RingCollectiveModel ring;
  const CollectiveRequest request{CollectiveKind::kAllReduce, 256ULL << 20, Range(8)};
  EXPECT_GT(truth.MeanUs(request), ring.CollectiveUs(request, cluster));
}

TEST(CollectiveCostTest, SmallPayloadPenaltyShrinks) {
  const ClusterSpec cluster = H100Cluster(8);
  GroundTruthCollectiveModel truth(cluster);
  RingCollectiveModel ring;
  auto inflation = [&](uint64_t bytes) {
    const CollectiveRequest request{CollectiveKind::kAllReduce, bytes, Range(8)};
    return truth.MeanUs(request) / ring.CollectiveUs(request, cluster);
  };
  EXPECT_GT(inflation(1 << 20), inflation(1ULL << 30));
}

TEST(CollectiveCostTest, ZeroAndSingletonFree) {
  const ClusterSpec cluster = H100Cluster(8);
  GroundTruthCollectiveModel truth(cluster);
  EXPECT_EQ(truth.MeanUs({CollectiveKind::kAllReduce, 0, Range(8)}), 0.0);
  EXPECT_EQ(truth.NoisyUs({CollectiveKind::kAllReduce, 1024, {0}}, 1), 0.0);
}

TEST(CollectiveCostTest, NoiseDeterministicPerInstance) {
  const ClusterSpec cluster = H100Cluster(8);
  GroundTruthCollectiveModel truth(cluster, 5);
  const CollectiveRequest request{CollectiveKind::kAllReduce, 64ULL << 20, Range(8)};
  EXPECT_DOUBLE_EQ(truth.NoisyUs(request, 3), truth.NoisyUs(request, 3));
  EXPECT_NE(truth.NoisyUs(request, 3), truth.NoisyUs(request, 4));
}

// ---- Executor -------------------------------------------------------------------------

JobTrace TinyJob() {
  // One worker, two annotatable ops.
  WorkerTrace worker;
  worker.rank = 0;
  TraceOp kernel;
  kernel.type = TraceOpType::kKernelLaunch;
  kernel.stream = 1;
  kernel.kernel = MakeGemm(1024, 1024, 1024, DType::kBf16);
  worker.ops.push_back(kernel);
  JobTrace job;
  job.world_size = 1;
  job.workers.push_back(worker);
  job.folded_ranks.push_back({0});
  return job;
}

TEST(ExecutorTest, AnnotatesKernelDurations) {
  GroundTruthExecutor executor(H100Cluster(8), 11);
  const JobTrace annotated = executor.AnnotateActualDurations(TinyJob());
  EXPECT_GT(annotated.workers[0].ops[0].duration_us, 0.0);
}

TEST(ExecutorTest, AnnotationIsIdempotentlyDeterministic) {
  GroundTruthExecutor executor(H100Cluster(8), 11);
  const JobTrace a = executor.AnnotateActualDurations(TinyJob());
  const JobTrace b = executor.AnnotateActualDurations(TinyJob());
  EXPECT_DOUBLE_EQ(a.workers[0].ops[0].duration_us, b.workers[0].ops[0].duration_us);
}

TEST(ExecutorTest, ExecuteProducesConsistentReport) {
  GroundTruthExecutor executor(H100Cluster(8), 11);
  Result<SimReport> report = executor.Execute(TinyJob());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->total_time_us, 0.0);
}

TEST(ExecutorTest, ContentionFactorVariesByArch) {
  EXPECT_GT(GroundTruthExecutor(H100Cluster(8)).contention_factor(),
            GroundTruthExecutor(V100Cluster(8)).contention_factor());
}

TEST(ExecutorTest, ProfilerCallbacksGiveFreshMeasurements) {
  GroundTruthExecutor executor(H100Cluster(8), 11);
  KernelProfiler profiler = executor.MakeKernelProfiler();
  const KernelDesc gemm = MakeGemm(1024, 1024, 1024, DType::kBf16);
  const double first = profiler(gemm);
  const double second = profiler(gemm);
  EXPECT_NE(first, second);  // independent measurement noise
  EXPECT_NEAR(first / second, 1.0, 0.5);
}

TEST(ExecutorTest, CollectiveProfilerMatchesModelScale) {
  const ClusterSpec cluster = H100Cluster(16);
  GroundTruthExecutor executor(cluster, 11);
  CollectiveProfiler profiler = executor.MakeCollectiveProfiler();
  const CollectiveRequest request{CollectiveKind::kAllReduce, 1ULL << 28, Range(8)};
  const double measured = profiler(request);
  const double mean = executor.collective_model().MeanUs(request);
  EXPECT_NEAR(measured / mean, 1.0, 0.5);
}

}  // namespace
}  // namespace maya
