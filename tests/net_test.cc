// TCP serving layer tests: FrameDecoder framing (torn/partial/pipelined
// reads, CRLF, oversized rejection + resync), transport transparency (TCP
// responses byte-identical to InProcessTransport for every deterministic
// request kind, sequentially and across 16+ concurrent connections incl.
// admin), slow-reader shedding that never delays other connections, graceful
// drain, weighted-scheduler overtake, and DEPLOYMENT_BUSY refusal over TCP.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/frame_decoder.h"
#include "src/net/tcp_client.h"
#include "src/net/tcp_server.h"
#include "src/service/service_client.h"
#include "src/service/service_engine.h"

namespace maya {
namespace {

// ---- FrameDecoder -----------------------------------------------------------

std::vector<std::string> Lines(const std::vector<FrameEvent>& events) {
  std::vector<std::string> lines;
  for (const FrameEvent& event : events) {
    EXPECT_TRUE(event.status.ok()) << event.status.ToString();
    lines.push_back(event.line);
  }
  return lines;
}

TEST(FrameDecoderTest, DeliversCompleteLinesInOrder) {
  FrameDecoder decoder;
  EXPECT_EQ(Lines(decoder.Consume("alpha\nbeta\ngamma\n")),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, ReassemblesFramesTornAcrossReads) {
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.Consume("he").empty());
  EXPECT_EQ(decoder.buffered_bytes(), 2u);
  EXPECT_EQ(Lines(decoder.Consume("llo\nwor")), (std::vector<std::string>{"hello"}));
  EXPECT_EQ(decoder.buffered_bytes(), 3u);
  EXPECT_EQ(Lines(decoder.Consume("ld\n")), (std::vector<std::string>{"world"}));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, OneByteAtATime) {
  FrameDecoder decoder;
  const std::string input = "a\nbc\n";
  std::vector<std::string> lines;
  for (char c : input) {
    for (std::string& line : Lines(decoder.Consume(std::string_view(&c, 1)))) {
      lines.push_back(std::move(line));
    }
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "bc"}));
}

TEST(FrameDecoderTest, StripsCrlfIncludingTornPairs) {
  FrameDecoder decoder;
  EXPECT_EQ(Lines(decoder.Consume("one\r\n")), (std::vector<std::string>{"one"}));
  // The '\r' lands in the buffered prefix, the '\n' in the next read.
  EXPECT_TRUE(decoder.Consume("two\r").empty());
  EXPECT_EQ(Lines(decoder.Consume("\nthree\n")),
            (std::vector<std::string>{"two", "three"}));
}

TEST(FrameDecoderTest, SuppressesEmptyLines) {
  FrameDecoder decoder;
  // Blank and CR-only lines vanish, matching the stdio loop's skip.
  EXPECT_EQ(Lines(decoder.Consume("\n\r\n x\n\n")), (std::vector<std::string>{" x"}));
}

TEST(FrameDecoderTest, RejectsOversizedFrameAndResyncs) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::vector<FrameEvent> events =
      decoder.Consume(std::string(20, 'A') + "\nok\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(events[0].dropped_bytes, 20u);
  EXPECT_TRUE(events[0].line.empty());
  EXPECT_TRUE(events[1].status.ok());
  EXPECT_EQ(events[1].line, "ok");
}

TEST(FrameDecoderTest, OversizedStreamNeverBuffersPastBound) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  // An unbounded line arrives in chunks; the decoder drops instead of
  // buffering once the bound is crossed.
  EXPECT_TRUE(decoder.Consume(std::string(10, 'A')).empty());
  EXPECT_EQ(decoder.buffered_bytes(), 10u);
  EXPECT_TRUE(decoder.Consume(std::string(10, 'B')).empty());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);  // dropped, not buffered
  const std::vector<FrameEvent> events = decoder.Consume("C\nok\n");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(events[0].dropped_bytes, 21u);  // 10 + 10 + 1, newline excluded
  EXPECT_EQ(events[1].line, "ok");
}

// ---- Admin protocol fixed points -------------------------------------------

void ExpectRequestFixedPoint(const ServiceRequest& request) {
  const std::string line = SerializeServiceRequest(request);
  Result<ServiceRequest> parsed = ParseServiceRequest(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  EXPECT_EQ(parsed->kind(), request.kind());
  EXPECT_EQ(SerializeServiceRequest(*parsed), line);
}

void ExpectResponseFixedPoint(const ServiceResponse& response) {
  const std::string line = SerializeServiceResponse(response);
  Result<ServiceResponse> parsed = ParseServiceResponse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  EXPECT_EQ(SerializeServiceResponse(*parsed), line);
}

TEST(NetProtocolTest, AdminPayloadsRoundTripByteIdentical) {
  ServiceRequest add;
  add.id = 7;
  AddDeploymentPayload add_payload;
  add_payload.name = "fleet-a";
  add_payload.cluster = "h100x32";
  add_payload.sweep = "tiny";
  add.payload = add_payload;
  ExpectRequestFixedPoint(add);

  AddDeploymentPayload bundled;
  bundled.name = "restored";
  bundled.cluster = "v100x16";
  bundled.bundle_dir = "/tmp/bundle";
  ServiceRequest add_bundled;
  add_bundled.id = 8;
  add_bundled.payload = bundled;
  ExpectRequestFixedPoint(add_bundled);

  ServiceRequest remove;
  remove.id = 9;
  remove.payload = RemoveDeploymentPayload{"fleet-a"};
  ExpectRequestFixedPoint(remove);

  ServiceResponse added;
  added.id = 7;
  added.kind = ServiceRequestKind::kAddDeployment;
  added.ok = true;
  added.deployment = "fleet-a";
  added.trained = true;
  added.warmed_entries = 12;
  ExpectResponseFixedPoint(added);

  ServiceResponse removed;
  removed.id = 9;
  removed.kind = ServiceRequestKind::kRemoveDeployment;
  removed.ok = true;
  removed.deployment = "fleet-a";
  removed.removed = true;
  ExpectResponseFixedPoint(removed);

  ServiceResponse busy;
  busy.id = 10;
  busy.kind = ServiceRequestKind::kRemoveDeployment;
  busy.error = "deployment busy";
  busy.error_code = kErrDeploymentBusy;
  ExpectResponseFixedPoint(busy);
}

// ---- Serving fixture --------------------------------------------------------

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig BaseConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

ProfileSweepOptions TestSweep() {
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1200;
  sweep.conv_samples = 100;
  sweep.generic_samples = 60;
  sweep.collective_sizes = 12;
  return sweep;
}

// Responses of predict-like and search kinds embed wall-clock stage timings
// (emulation_ms / collation_ms / estimation_ms / simulation_ms) that two
// engines cannot reproduce bit-for-bit. Everything else — iteration time and
// MFU hex doubles, memory, estimation/simulation stats — must match exactly,
// so canonicalize by zeroing only the wall-clock fields and re-serializing.
std::string CanonicalResponse(const std::string& line) {
  Result<ServiceResponse> parsed = ParseServiceResponse(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  if (!parsed.ok()) {
    return line;
  }
  parsed->timings = StageTimings{};
  for (PredictResult& item : parsed->batch) {
    item.timings = StageTimings{};
  }
  return SerializeServiceResponse(*parsed);
}

class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 7);
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, TestSweep()));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  static std::unique_ptr<ServiceEngine> MakeEngine(ServiceEngineOptions options = {}) {
    return *ServiceEngine::Create(*cluster_, bank_->kernel.get(),
                                  bank_->collective.get(), options);
  }

  static ServiceRequest PredictRequest(uint64_t id, const TrainConfig& config,
                                       const std::string& deployment = "") {
    ServiceRequest request;
    request.id = id;
    PredictPayload payload;
    payload.model = TinyGpt();
    payload.config = config;
    payload.deployment = deployment;
    request.payload = std::move(payload);
    return request;
  }

  static std::vector<TrainConfig> SweepConfigs() {
    std::vector<TrainConfig> configs;
    for (int tp : {1, 2}) {
      for (int pp : {1, 2}) {
        TrainConfig config = BaseConfig();
        config.tensor_parallel = tp;
        config.pipeline_parallel = pp;
        configs.push_back(config);
      }
    }
    return configs;
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
};

ClusterSpec* NetTest::cluster_ = nullptr;
GroundTruthExecutor* NetTest::executor_ = nullptr;
EstimatorBank* NetTest::bank_ = nullptr;

// ---- Transport transparency -------------------------------------------------

// Every deterministic request kind — predict, batch_predict, whatif_oom,
// search, admin add/remove, cancel, and malformed input — answers
// byte-identically over TCP and over InProcessTransport. This is the ISSUE's
// transparency acceptance criterion.
TEST_F(NetTest, SequentialResponsesByteIdenticalToInProcess) {
  std::unique_ptr<ServiceEngine> tcp_engine = MakeEngine();
  std::unique_ptr<ServiceEngine> local_engine = MakeEngine();
  TcpServer server(tcp_engine.get(), TcpServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TcpLineTransport tcp("127.0.0.1", server.port());
  InProcessTransport local(local_engine.get());

  // (line, exact): exact lines compare raw bytes (no wall-clock fields at
  // all); the rest compare after timing canonicalization.
  std::vector<std::pair<std::string, bool>> cases;
  uint64_t id = 1;

  cases.emplace_back(SerializeServiceRequest(PredictRequest(id++, BaseConfig())), false);
  // Second identical predict: the estimate/sim cache hit path.
  cases.emplace_back(SerializeServiceRequest(PredictRequest(id++, BaseConfig())), false);
  // Cross-deployment what-if derived from the default bank.
  cases.emplace_back(
      SerializeServiceRequest(PredictRequest(id++, BaseConfig(), "h100x32")), false);

  ServiceRequest batch;
  batch.id = id++;
  BatchPredictPayload batch_payload;
  batch_payload.model = TinyGpt();
  batch_payload.configs = SweepConfigs();
  batch.payload = std::move(batch_payload);
  cases.emplace_back(SerializeServiceRequest(batch), false);

  ServiceRequest oom;
  oom.id = id++;
  WhatIfOomPayload oom_payload;
  oom_payload.model = TinyGpt();
  oom_payload.config = BaseConfig();
  oom.payload = std::move(oom_payload);
  cases.emplace_back(SerializeServiceRequest(oom), false);

  ServiceRequest search;
  search.id = id++;
  SearchPayload search_payload;
  search_payload.model = TinyGpt();
  search_payload.search.sample_budget = 6;
  search_payload.search.early_stop_patience = 0;
  search.payload = std::move(search_payload);
  cases.emplace_back(SerializeServiceRequest(search), false);

  ServiceRequest add;
  add.id = id++;
  AddDeploymentPayload add_payload;
  add_payload.name = "extra";
  add_payload.cluster = "h100x32";
  add_payload.sweep = "tiny";
  add.payload = std::move(add_payload);
  // Cold-start training is seeded deterministically server-side, so two
  // engines train bit-identical "extra" banks.
  cases.emplace_back(SerializeServiceRequest(add), true);

  cases.emplace_back(
      SerializeServiceRequest(PredictRequest(id++, BaseConfig(), "extra")), false);

  ServiceRequest remove;
  remove.id = id++;
  remove.payload = RemoveDeploymentPayload{"extra"};
  cases.emplace_back(SerializeServiceRequest(remove), true);

  // Predict at the removed name: INVALID_REQUEST, identically phrased.
  cases.emplace_back(
      SerializeServiceRequest(PredictRequest(id++, BaseConfig(), "extra")), true);

  // The default deployment is never removable.
  ServiceRequest remove_default;
  remove_default.id = id++;
  remove_default.payload = RemoveDeploymentPayload{"default"};
  cases.emplace_back(SerializeServiceRequest(remove_default), true);

  ServiceRequest cancel;
  cancel.id = id++;
  cancel.payload = CancelPayload{999999};
  cases.emplace_back(SerializeServiceRequest(cancel), true);

  // Malformed input answers through the shared ParseFailureResponse.
  cases.emplace_back("this is not json", true);
  cases.emplace_back(R"({"id":77,"kind":"bogus"})", true);

  for (const auto& [line, exact] : cases) {
    Result<std::string> over_tcp = tcp.RoundTrip(line);
    Result<std::string> in_process = local.RoundTrip(line);
    ASSERT_TRUE(over_tcp.ok()) << over_tcp.status().ToString() << "\n" << line;
    ASSERT_TRUE(in_process.ok()) << in_process.status().ToString() << "\n" << line;
    if (exact) {
      EXPECT_EQ(*over_tcp, *in_process) << line;
    } else {
      EXPECT_EQ(CanonicalResponse(*over_tcp), CanonicalResponse(*in_process)) << line;
    }
  }

  // Observability kinds answer with wall-clock content — assert success and
  // envelope only.
  for (const char* kind_line :
       {R"({"id":900,"kind":"stats"})", R"({"id":901,"kind":"metrics"})",
        R"({"id":902,"kind":"dump_trace"})"}) {
    Result<std::string> over_tcp = tcp.RoundTrip(kind_line);
    ASSERT_TRUE(over_tcp.ok()) << over_tcp.status().ToString();
    Result<ServiceResponse> parsed = ParseServiceResponse(*over_tcp);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed->ok) << *over_tcp;
  }

  const TcpServer::Stats stats = server.stats();
  EXPECT_GE(stats.frames, cases.size());
  EXPECT_EQ(stats.frame_errors, 2u);  // the two malformed lines
  server.Stop();
}

// >= 16 concurrent connections with mixed kinds, plus an admin connection
// training and then removing a deployment, all byte-identical to the same
// requests run against an in-process engine. Caches are disabled on both
// engines so responses are independent of interleaving order.
TEST_F(NetTest, SixteenConcurrentConnectionsMatchInProcess) {
  ServiceEngineOptions options;
  options.pipeline.enable_estimate_cache = false;
  options.pipeline.enable_sim_cache = false;
  options.pipeline.enable_trace_cache = false;
  std::unique_ptr<ServiceEngine> tcp_engine = MakeEngine(options);
  std::unique_ptr<ServiceEngine> local_engine = MakeEngine(options);
  TcpServer server(tcp_engine.get(), TcpServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  InProcessTransport local(local_engine.get());

  constexpr int kClients = 16;
  const std::vector<TrainConfig> sweep = SweepConfigs();

  std::vector<std::vector<std::string>> request_lines(kClients);
  for (int t = 0; t < kClients; ++t) {
    const uint64_t base = 1000 + 10 * static_cast<uint64_t>(t);
    request_lines[t].push_back(
        SerializeServiceRequest(PredictRequest(base, sweep[t % sweep.size()])));

    ServiceRequest oom;
    oom.id = base + 1;
    WhatIfOomPayload oom_payload;
    oom_payload.model = TinyGpt();
    oom_payload.config = sweep[(t + 1) % sweep.size()];
    oom.payload = std::move(oom_payload);
    request_lines[t].push_back(SerializeServiceRequest(oom));

    ServiceRequest batch;
    batch.id = base + 2;
    BatchPredictPayload batch_payload;
    batch_payload.model = TinyGpt();
    batch_payload.configs = {sweep[t % sweep.size()], sweep[(t + 2) % sweep.size()]};
    batch.payload = std::move(batch_payload);
    request_lines[t].push_back(SerializeServiceRequest(batch));

    ServiceRequest cancel;
    cancel.id = base + 3;
    cancel.payload = CancelPayload{500000 + static_cast<uint64_t>(t)};
    request_lines[t].push_back(SerializeServiceRequest(cancel));
  }

  ServiceRequest add;
  add.id = 2000;
  AddDeploymentPayload add_payload;
  add_payload.name = "fleet";
  add_payload.cluster = "h100x32";
  add_payload.sweep = "tiny";
  add.payload = std::move(add_payload);
  const std::string add_line = SerializeServiceRequest(add);
  const std::string fleet_predict_line =
      SerializeServiceRequest(PredictRequest(2001, BaseConfig(), "fleet"));
  ServiceRequest remove;
  remove.id = 2002;
  remove.payload = RemoveDeploymentPayload{"fleet"};
  const std::string remove_line = SerializeServiceRequest(remove);

  // Reference answers, computed sequentially on the in-process engine.
  std::vector<std::vector<std::string>> expected(kClients);
  for (int t = 0; t < kClients; ++t) {
    for (const std::string& line : request_lines[t]) {
      Result<std::string> response = local.RoundTrip(line);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      expected[t].push_back(CanonicalResponse(*response));
    }
  }
  Result<std::string> expected_add = local.RoundTrip(add_line);
  Result<std::string> expected_fleet = local.RoundTrip(fleet_predict_line);
  Result<std::string> expected_remove = local.RoundTrip(remove_line);
  ASSERT_TRUE(expected_add.ok() && expected_fleet.ok() && expected_remove.ok());

  // Concurrent phase: 16 worker connections plus the admin connection.
  std::vector<std::vector<std::string>> actual(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      TcpLineTransport transport("127.0.0.1", server.port());
      for (const std::string& line : request_lines[t]) {
        Result<std::string> response = transport.RoundTrip(line);
        if (!response.ok()) {
          errors[t] = response.status().ToString();
          return;
        }
        actual[t].push_back(CanonicalResponse(*response));
      }
    });
  }

  TcpLineTransport admin("127.0.0.1", server.port());
  Result<std::string> actual_add = admin.RoundTrip(add_line);
  Result<std::string> actual_fleet = admin.RoundTrip(fleet_predict_line);
  for (std::thread& client : clients) {
    client.join();
  }
  // Remove after the workers settle so the refusal window cannot race.
  Result<std::string> actual_remove = admin.RoundTrip(remove_line);

  for (int t = 0; t < kClients; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "client " << t << ": " << errors[t];
    EXPECT_EQ(actual[t], expected[t]) << "client " << t;
  }
  ASSERT_TRUE(actual_add.ok() && actual_fleet.ok() && actual_remove.ok());
  EXPECT_EQ(*actual_add, *expected_add);
  EXPECT_EQ(CanonicalResponse(*actual_fleet), CanonicalResponse(*expected_fleet));
  EXPECT_EQ(*actual_remove, *expected_remove);

  EXPECT_GE(server.stats().accepted, static_cast<uint64_t>(kClients) + 1);
  server.Stop();
}

// ---- Backpressure -----------------------------------------------------------

// A client that pipelines requests and never reads fills its bounded
// outbound queue and is shed; a concurrently active fast client sees no
// disruption. The shed must never block a worker or the event loop.
TEST_F(NetTest, SlowReaderIsShedWithoutDelayingOthers) {
  std::unique_ptr<ServiceEngine> engine = MakeEngine();
  TcpServerOptions options;
  options.max_outbound_bytes = 16 * 1024;
  options.send_buffer_bytes = 4096;
  TcpServer server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());

  // Slow reader: raw socket with a tiny receive buffer, pipelining stats
  // requests and never reading a byte.
  const int slow_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(slow_fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(slow_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(slow_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::string burst;
  for (int i = 0; i < 4000; ++i) {
    burst += R"({"id":)" + std::to_string(i + 1) + R"(,"kind":"stats"})" + "\n";
  }
  size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n =
        ::send(slow_fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      break;  // shed closed the connection under us — expected
    }
    sent += static_cast<size_t>(n);
  }

  // While the slow connection clogs, a fast client's requests still answer.
  TcpLineTransport fast("127.0.0.1", server.port());
  for (uint64_t id = 1; id <= 3; ++id) {
    Result<std::string> response =
        fast.RoundTrip(SerializeServiceRequest(PredictRequest(id, BaseConfig())));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    Result<ServiceResponse> parsed = ParseServiceResponse(*response);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed->ok);
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().shed == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().shed, 1u);

  ::close(slow_fd);
  server.Stop();
}

// ---- Drain ------------------------------------------------------------------

// Drain answers the in-flight request, closes the connection, and refuses
// new ones.
TEST_F(NetTest, DrainAnswersInFlightThenRefusesNewConnections) {
  ServiceEngineOptions engine_options;
  engine_options.start_paused = true;
  std::unique_ptr<ServiceEngine> engine = MakeEngine(engine_options);
  TcpServer server(engine.get(), TcpServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  TcpLineTransport tcp("127.0.0.1", server.port());
  const std::string line = SerializeServiceRequest(PredictRequest(1, BaseConfig()));
  Result<std::string> response = Status::Internal("unset");
  std::thread client([&] { response = tcp.RoundTrip(line); });

  // The predict is parked on the paused queue once the server has its frame.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().frames == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.stats().frames, 1u);

  std::thread drainer([&] { server.Drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine->Resume();
  client.join();
  drainer.join();

  ASSERT_TRUE(response.ok()) << response.status().ToString();
  Result<ServiceResponse> parsed = ParseServiceResponse(*response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok) << *response;

  TcpLineTransport late("127.0.0.1", server.port());
  EXPECT_FALSE(late.Connect().ok());
  server.Stop();
}

// ---- Health & failover ------------------------------------------------------

// `health` over TCP reports ready while serving; Drain flips readiness
// BEFORE the listen socket closes, so a balancer probing health sees
// not-ready rather than a connection error.
TEST_F(NetTest, HealthOverTcpAndDrainFlipsReadiness) {
  std::unique_ptr<ServiceEngine> engine = MakeEngine();
  TcpServer server(engine.get(), TcpServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  TcpLineTransport tcp("127.0.0.1", server.port());
  ServiceRequest probe;
  probe.id = 1;
  probe.payload = HealthPayload{};
  Result<std::string> line = tcp.RoundTrip(SerializeServiceRequest(probe));
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  Result<ServiceResponse> health = ParseServiceResponse(*line);
  ASSERT_TRUE(health.ok()) << *line;
  ASSERT_TRUE(health->ok) << *line;
  EXPECT_TRUE(health->health.live);
  EXPECT_TRUE(health->health.ready);
  EXPECT_FALSE(health->health.draining);
  EXPECT_FALSE(health->health.journal_enabled);

  server.Drain();
  EXPECT_FALSE(engine->Health().ready);
  EXPECT_TRUE(engine->Health().live);
  server.Stop();
}

// Replica-list failover: when the active replica dies, the transport fails
// the in-flight round trip (the reply is lost — callers decide whether to
// retry), then the next attempt sweeps to the surviving replica.
TEST_F(NetTest, TransportFailsOverToSurvivingReplica) {
  std::unique_ptr<ServiceEngine> engine_a = MakeEngine();
  std::unique_ptr<ServiceEngine> engine_b = MakeEngine();
  TcpServer server_a(engine_a.get(), TcpServerOptions{});
  TcpServer server_b(engine_b.get(), TcpServerOptions{});
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_b.Start().ok());

  ServiceRequest probe;
  probe.id = 1;
  probe.payload = HealthPayload{};
  const std::string line = SerializeServiceRequest(probe);

  TcpLineTransport tcp({{"127.0.0.1", server_a.port()}, {"127.0.0.1", server_b.port()}});
  ASSERT_TRUE(tcp.RoundTrip(line).ok());
  EXPECT_EQ(tcp.active_endpoint().port, server_a.port());

  // Kill the active replica. The established connection dies with it; the
  // next round trips advance to — and are answered by — the survivor.
  server_a.Stop();
  Result<std::string> answered = Status::Internal("unset");
  for (int attempt = 0; attempt < 4 && !answered.ok(); ++attempt) {
    answered = tcp.RoundTrip(line);
  }
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();
  EXPECT_EQ(tcp.active_endpoint().port, server_b.port());
  Result<ServiceResponse> health = ParseServiceResponse(*answered);
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->health.ready);

  // A dead-first replica list connects through one sweep: the first endpoint
  // refuses, the same attempt moves on to the live one.
  TcpLineTransport dead_first({{"127.0.0.1", 1}, {"127.0.0.1", server_b.port()}});
  EXPECT_TRUE(dead_first.Connect().ok());
  EXPECT_EQ(dead_first.active_endpoint().port, server_b.port());
  server_b.Stop();
}

// ---- Scheduling -------------------------------------------------------------

// Weighted virtual-time dequeue: four predicts submitted behind two searches
// overtake the second search (weight 16 vs 1), so interactive traffic is not
// starved by heavy queued work.
TEST_F(NetTest, QueuedPredictsOvertakeSecondSearch) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.start_paused = true;
  std::unique_ptr<ServiceEngine> engine = MakeEngine(options);

  std::mutex mutex;
  std::vector<std::string> order;
  auto record = [&](const std::string& tag) {
    return [&, tag](ServiceResponse response) {
      EXPECT_TRUE(response.ok) << response.error;
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
    };
  };

  auto search_request = [&](uint64_t id) {
    ServiceRequest request;
    request.id = id;
    SearchPayload payload;
    payload.model = TinyGpt();
    payload.search.sample_budget = 4;
    payload.search.early_stop_patience = 0;
    request.payload = std::move(payload);
    return request;
  };
  engine->Submit(search_request(1), record("S1"));
  engine->Submit(search_request(2), record("S2"));
  for (uint64_t i = 0; i < 4; ++i) {
    engine->Submit(PredictRequest(3 + i, BaseConfig()), record("P" + std::to_string(i)));
  }

  engine->Resume();
  engine->Drain();

  ASSERT_EQ(order.size(), 6u);
  // Whatever the tie-break at pass 0, the second search (pass = weight 16)
  // must run after every weight-1 predict.
  EXPECT_EQ(order.back(), "S2");
}

// ---- Admin over TCP ---------------------------------------------------------

// remove_deployment refuses with DEPLOYMENT_BUSY while a queued request
// targets the deployment, succeeds once the queue settles, and always
// refuses the default deployment — all observed through the TCP transport.
TEST_F(NetTest, RemoveDeploymentBusyRefusalOverTcp) {
  ServiceEngineOptions options;
  options.start_paused = true;
  std::unique_ptr<ServiceEngine> engine = MakeEngine(options);
  TcpServer server(engine.get(), TcpServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  ServiceRequest add;
  add.id = 1;
  AddDeploymentPayload add_payload;
  add_payload.name = "extra";
  add_payload.cluster = "h100x32";
  add_payload.sweep = "tiny";
  add.payload = std::move(add_payload);
  const std::string add_line = SerializeServiceRequest(add);

  TcpLineTransport writer("127.0.0.1", server.port());
  Result<std::string> add_response = Status::Internal("unset");
  std::thread adder([&] { add_response = writer.RoundTrip(add_line); });

  // Wait (via a second connection — control requests answer while paused)
  // until the add_deployment is queued.
  TcpLineTransport control("127.0.0.1", server.port());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    Result<std::string> stats_line = control.RoundTrip(R"({"id":50,"kind":"stats"})");
    ASSERT_TRUE(stats_line.ok()) << stats_line.status().ToString();
    Result<ServiceResponse> stats = ParseServiceResponse(*stats_line);
    ASSERT_TRUE(stats.ok());
    if (stats->stats.queue_depth >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  ServiceRequest remove;
  remove.id = 51;
  remove.payload = RemoveDeploymentPayload{"extra"};
  Result<std::string> busy_line = control.RoundTrip(SerializeServiceRequest(remove));
  ASSERT_TRUE(busy_line.ok()) << busy_line.status().ToString();
  Result<ServiceResponse> busy = ParseServiceResponse(*busy_line);
  ASSERT_TRUE(busy.ok());
  EXPECT_FALSE(busy->ok);
  EXPECT_EQ(busy->error_code, kErrDeploymentBusy) << *busy_line;

  engine->Resume();
  adder.join();
  ASSERT_TRUE(add_response.ok()) << add_response.status().ToString();
  Result<ServiceResponse> added = ParseServiceResponse(*add_response);
  ASSERT_TRUE(added.ok());
  EXPECT_TRUE(added->ok) << *add_response;
  EXPECT_TRUE(added->trained);

  // Settled: the removal succeeds now.
  remove.id = 52;
  Result<std::string> removed_line = control.RoundTrip(SerializeServiceRequest(remove));
  ASSERT_TRUE(removed_line.ok());
  Result<ServiceResponse> removed = ParseServiceResponse(*removed_line);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed->ok) << *removed_line;
  EXPECT_TRUE(removed->removed);

  // The default deployment is never removable.
  ServiceRequest remove_default;
  remove_default.id = 53;
  remove_default.payload = RemoveDeploymentPayload{"default"};
  Result<std::string> refused_line =
      control.RoundTrip(SerializeServiceRequest(remove_default));
  ASSERT_TRUE(refused_line.ok());
  Result<ServiceResponse> refused = ParseServiceResponse(*refused_line);
  ASSERT_TRUE(refused.ok());
  EXPECT_FALSE(refused->ok);

  server.Stop();
}

}  // namespace
}  // namespace maya
