// Maya-Search tests: config-space encoding, Table 10 pruning tactics,
// search algorithm sanity on synthetic objectives, and the end-to-end
// driver (caching, early stopping, trial status accounting).
#include <gtest/gtest.h>

#include "src/core/estimator_bank.h"
#include "src/search/config_space.h"
#include "src/search/pruning.h"
#include "src/search/search_driver.h"
#include "src/search/searchers.h"

namespace maya {
namespace {

// ---- ConfigSpace ---------------------------------------------------------------

TEST(ConfigSpaceTest, Table5SpaceHas1920Points) {
  const ConfigSpace space = ConfigSpace::MegatronTable5(256);
  EXPECT_EQ(space.size(), 1920u);  // 4*4*5*3*2*2*2
}

TEST(ConfigSpaceTest, FlatIndexRoundTrip) {
  const ConfigSpace space = ConfigSpace::MegatronTable5(256);
  for (size_t index : {0u, 1u, 7u, 100u, 1919u}) {
    EXPECT_EQ(space.FlatIndex(space.Coordinates(index)), index);
  }
}

TEST(ConfigSpaceTest, DecodesKnobsCorrectly) {
  const ConfigSpace space = ConfigSpace::MegatronTable5(512);
  const TrainConfig first = space.At(0);
  EXPECT_EQ(first.tensor_parallel, 1);
  EXPECT_EQ(first.pipeline_parallel, 1);
  EXPECT_EQ(first.microbatch_multiplier, 1);
  EXPECT_EQ(first.virtual_pipeline_stages, 1);
  EXPECT_FALSE(first.activation_recomputation);
  EXPECT_EQ(first.global_batch_size, 512);
  const TrainConfig last = space.At(space.size() - 1);
  EXPECT_EQ(last.tensor_parallel, 8);
  EXPECT_EQ(last.pipeline_parallel, 8);
  EXPECT_EQ(last.microbatch_multiplier, 8);
  EXPECT_EQ(last.virtual_pipeline_stages, 4);
  EXPECT_TRUE(last.activation_recomputation);
  EXPECT_TRUE(last.sequence_parallel);
  EXPECT_TRUE(last.distributed_optimizer);
}

TEST(ConfigSpaceTest, EnumerateAllIsExhaustiveAndDistinct) {
  const ConfigSpace space = ConfigSpace::MegatronTable5(256);
  const std::vector<TrainConfig> all = space.EnumerateAll();
  EXPECT_EQ(all.size(), space.size());
  std::set<std::string> keys;
  for (const TrainConfig& config : all) {
    keys.insert(config.CacheKey());
  }
  EXPECT_EQ(keys.size(), space.size());
}

// ---- Pruning tactics (Table 10) ---------------------------------------------------

TrainConfig Cfg(int tp, int pp, int mult, bool recomp, bool sp, bool dist_opt) {
  TrainConfig config;
  config.global_batch_size = 256;
  config.tensor_parallel = tp;
  config.pipeline_parallel = pp;
  config.microbatch_multiplier = mult;
  config.activation_recomputation = recomp;
  config.sequence_parallel = sp;
  config.distributed_optimizer = dist_opt;
  return config;
}

TEST(PruningTest, RecomputationOomDominates) {
  PruningOracle oracle;
  oracle.Observe(Cfg(2, 2, 1, /*recomp=*/true, false, false), /*oom=*/true, 0.0);
  const auto pruned = oracle.Lookup(Cfg(2, 2, 1, /*recomp=*/false, false, false));
  ASSERT_TRUE(pruned.has_value());
  EXPECT_TRUE(pruned->oom);
  EXPECT_EQ(pruned->tactic, "recomputation-oom-dominates");
}

TEST(PruningTest, SequenceParallelOomDominates) {
  PruningOracle oracle;
  oracle.Observe(Cfg(4, 1, 1, false, /*sp=*/true, false), true, 0.0);
  const auto pruned = oracle.Lookup(Cfg(4, 1, 1, false, /*sp=*/false, false));
  ASSERT_TRUE(pruned.has_value());
  EXPECT_TRUE(pruned->oom);
}

TEST(PruningTest, DistributedOptimizerReusesRuntime) {
  PruningOracle oracle;
  oracle.Observe(Cfg(2, 2, 1, false, false, /*dist_opt=*/false), false, 1234.0);
  const auto pruned = oracle.Lookup(Cfg(2, 2, 1, false, false, /*dist_opt=*/true));
  ASSERT_TRUE(pruned.has_value());
  EXPECT_FALSE(pruned->oom);
  EXPECT_DOUBLE_EQ(pruned->iteration_us, 1234.0);
}

TEST(PruningTest, MicrobatchMonotoneWithoutPipeline) {
  PruningOracle oracle;
  oracle.Observe(Cfg(2, 1, 2, false, false, false), false, 999.0);
  const auto pruned = oracle.Lookup(Cfg(2, 1, 6, false, false, false));
  ASSERT_TRUE(pruned.has_value());
  EXPECT_DOUBLE_EQ(pruned->iteration_us, 999.0);
  // Does NOT apply with pipelining (microbatches shrink the bubble there).
  PruningOracle with_pp;
  with_pp.Observe(Cfg(2, 2, 2, false, false, false), false, 999.0);
  EXPECT_FALSE(with_pp.Lookup(Cfg(2, 2, 6, false, false, false)).has_value());
}

TEST(PruningTest, NoFalsePositives) {
  PruningOracle oracle;
  // A *fitting* recompute config says nothing about the non-recompute twin.
  oracle.Observe(Cfg(2, 2, 1, true, false, false), false, 500.0);
  EXPECT_FALSE(oracle.Lookup(Cfg(2, 2, 1, false, false, false)).has_value());
  // An OOMing non-recompute config says nothing about the recompute twin.
  oracle.Observe(Cfg(4, 2, 1, false, false, false), true, 0.0);
  EXPECT_FALSE(oracle.Lookup(Cfg(4, 2, 1, true, false, false)).has_value());
}

// ---- Search algorithms on a synthetic objective --------------------------------------

// Smooth unimodal objective over the flat space, maximized at a known point.
double SyntheticObjective(const ConfigSpace& space, size_t index) {
  const std::vector<size_t> coords = space.Coordinates(index);
  double score = 1.0;
  for (size_t d = 0; d < coords.size(); ++d) {
    const double target = 0.6 * static_cast<double>(space.DimensionSize(d) - 1);
    const double distance =
        std::abs(static_cast<double>(coords[d]) - target) /
        static_cast<double>(space.DimensionSize(d));
    score -= 0.1 * distance;
  }
  return score;
}

class SearcherSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SearcherSweep, ImprovesOverInitialSamples) {
  const ConfigSpace space = ConfigSpace::MegatronTable5(256);
  auto algorithm = *MakeSearchAlgorithm(GetParam(), space, 7);
  EXPECT_EQ(algorithm->name(), GetParam());
  double best_early = 0.0;
  double best_late = 0.0;
  for (int i = 0; i < 400; ++i) {
    const std::optional<size_t> index = algorithm->Ask();
    if (!index.has_value()) {
      break;  // grid exhausted budget semantics differ
    }
    const double objective = SyntheticObjective(space, *index);
    algorithm->Tell(*index, objective);
    if (i < 20) {
      best_early = std::max(best_early, objective);
    }
    best_late = std::max(best_late, objective);
  }
  EXPECT_GE(best_late, best_early);
  EXPECT_GT(best_late, 0.85);  // all algorithms find a near-optimal point
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SearcherSweep,
                         ::testing::Values("cma", "pso", "two-points-de", "one-plus-one",
                                           "random", "grid"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(SearcherTest, GridEnumeratesWholeSpaceThenStops) {
  const ConfigSpace space = ConfigSpace::MegatronTable5(256);
  auto grid = *MakeSearchAlgorithm("grid", space, 1);
  std::set<size_t> seen;
  while (true) {
    const std::optional<size_t> index = grid->Ask();
    if (!index.has_value()) {
      break;
    }
    seen.insert(*index);
    grid->Tell(*index, 0.0);
  }
  EXPECT_EQ(seen.size(), space.size());
}

TEST(SearcherTest, CmaConvergesTighterThanRandom) {
  const ConfigSpace space = ConfigSpace::MegatronTable5(256);
  auto run = [&](const char* name) {
    auto algorithm = *MakeSearchAlgorithm(name, space, 3);
    double best = 0.0;
    for (int i = 0; i < 300; ++i) {
      const size_t index = *algorithm->Ask();
      const double objective = SyntheticObjective(space, index);
      algorithm->Tell(index, objective);
      best = std::max(best, objective);
    }
    return best;
  };
  EXPECT_GE(run("cma") + 0.02, run("random"));  // CMA at least competitive
}

// ---- End-to-end driver --------------------------------------------------------------

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

class SearchDriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 123);
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, sweep));
    pipeline_ = new MayaPipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
  static MayaPipeline* pipeline_;
};

ClusterSpec* SearchDriverTest::cluster_ = nullptr;
GroundTruthExecutor* SearchDriverTest::executor_ = nullptr;
EstimatorBank* SearchDriverTest::bank_ = nullptr;
MayaPipeline* SearchDriverTest::pipeline_ = nullptr;

TEST_F(SearchDriverTest, FindsValidConfigAndTracksStatus) {
  // A reduced space keeps the test fast while exercising every path.
  const ConfigSpace space({1, 2}, {1, 2}, {1, 2}, {1}, {false, true}, {false, true},
                          {false, true}, 32);
  SearchOptions options;
  options.algorithm = "random";
  options.sample_budget = 80;
  options.seed = 5;
  options.early_stop_patience = 0;
  const SearchOutcome outcome = *RunSearch(*pipeline_, TinyGpt(), space, options);
  EXPECT_TRUE(outcome.found);
  EXPECT_GT(outcome.best_mfu, 0.0);
  EXPECT_GT(outcome.executed, 0);
  EXPECT_GT(outcome.cached, 0);  // random revisits points
  EXPECT_EQ(outcome.samples, 80);
  EXPECT_TRUE(outcome.best_config.Validate(TinyGpt(), *cluster_).ok());
  // Per-trial stage counters aggregate across executed trials (the shared
  // trial-execution helper feeds both the serial and ParallelFor paths).
  EXPECT_GT(outcome.estimation_totals.kernel_ops, 0u);
  EXPECT_GT(outcome.simulation_totals.workers, 0u);
  EXPECT_GT(outcome.simulation_totals.components, 0u);
  EXPECT_GT(outcome.stage_totals.simulation_ms, 0.0);
}

TEST_F(SearchDriverTest, SimCacheSharedAcrossSearches) {
  // Stage-4 analogue of TraceCacheReusedAcrossSearches: a repeated search on
  // one pipeline replays repeated annotated components from the sim cache,
  // bit-identically.
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get());
  const ConfigSpace space({1, 2}, {1, 2}, {1, 2}, {1}, {false, true}, {false}, {false}, 32);
  SearchOptions search;
  search.algorithm = "grid";
  search.sample_budget = static_cast<int>(space.size());
  search.early_stop_patience = 0;

  const SearchOutcome first = *RunSearch(pipeline, TinyGpt(), space, search);
  EXPECT_GT(pipeline.SimCacheStats().insertions, 0u);

  const SearchOutcome second = *RunSearch(pipeline, TinyGpt(), space, search);
  EXPECT_GT(second.simulation_totals.cache_hits, 0u);
  EXPECT_EQ(second.simulation_totals.simulated_components, 0u);
  EXPECT_EQ(second.best_mfu, first.best_mfu);
  EXPECT_EQ(second.best_iteration_us, first.best_iteration_us);
}

TEST_F(SearchDriverTest, PruningSkipsDominatedConfigs) {
  const ConfigSpace space({1, 2}, {1, 2}, {1, 2}, {1}, {false, true}, {false, true},
                          {false, true}, 32);
  SearchOptions with;
  with.algorithm = "grid";
  with.sample_budget = static_cast<int>(space.size());
  with.early_stop_patience = 0;
  const SearchOutcome pruned = *RunSearch(*pipeline_, TinyGpt(), space, with);
  SearchOptions without = with;
  without.enable_pruning = false;
  const SearchOutcome full = *RunSearch(*pipeline_, TinyGpt(), space, without);
  EXPECT_GT(pruned.skipped, 0);
  EXPECT_EQ(full.skipped, 0);
  EXPECT_GT(full.executed, pruned.executed);
  // Fidelity preservation: the pruned search lands within a few percent of
  // the exhaustive optimum. (Tactic 3 copies the non-sharded twin's runtime
  // onto distributed-optimizer configs — a slightly pessimistic stand-in,
  // since sharded re-materialization moves bf16 rather than fp32 bytes — so
  // exact equality is not guaranteed, only near-optimality.)
  EXPECT_GT(pruned.best_mfu, 0.90 * full.best_mfu);
}

TEST_F(SearchDriverTest, EarlyStoppingCutsSamples) {
  const ConfigSpace space({1, 2}, {1, 2}, {1, 2}, {1}, {false, true}, {false, true},
                          {false, true}, 32);
  SearchOptions options;
  options.algorithm = "random";
  options.sample_budget = 500;
  options.early_stop_patience = 10;
  options.seed = 5;
  const SearchOutcome outcome = *RunSearch(*pipeline_, TinyGpt(), space, options);
  EXPECT_LT(outcome.samples, 500);
  EXPECT_TRUE(outcome.found);
}

TEST_F(SearchDriverTest, TraceCacheReusedAcrossSearches) {
  // ROADMAP follow-up: collated traces memoized across RunSearch trials.
  // Two identical searches on one pipeline: the second serves every repeated
  // (config, model) key's emulation + collation from the trace cache and
  // lands on bit-identical results.
  MayaPipelineOptions options;
  options.enable_trace_cache = true;
  MayaPipeline pipeline(*cluster_, bank_->kernel.get(), bank_->collective.get(), options);
  const ConfigSpace space({1, 2}, {1, 2}, {1, 2}, {1}, {false, true}, {false}, {false}, 32);
  SearchOptions search;
  search.algorithm = "grid";
  search.sample_budget = static_cast<int>(space.size());
  search.early_stop_patience = 0;

  const SearchOutcome first = *RunSearch(pipeline, TinyGpt(), space, search);
  const ShardedCacheStats after_first = pipeline.TraceCacheStats();
  EXPECT_GT(after_first.insertions, 0u);

  const SearchOutcome second = *RunSearch(pipeline, TinyGpt(), space, search);
  const ShardedCacheStats after_second = pipeline.TraceCacheStats();
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_TRUE(second.found);
  EXPECT_EQ(second.best_mfu, first.best_mfu);
  EXPECT_EQ(second.best_iteration_us, first.best_iteration_us);
  EXPECT_EQ(second.executed, first.executed);
}

TEST_F(SearchDriverTest, ProgressIsMonotoneInBestMfu) {
  const ConfigSpace space({1, 2}, {1, 2}, {1}, {1}, {false, true}, {false}, {false}, 32);
  SearchOptions options;
  options.algorithm = "grid";
  options.sample_budget = static_cast<int>(space.size());
  options.early_stop_patience = 0;
  const SearchOutcome outcome = *RunSearch(*pipeline_, TinyGpt(), space, options);
  double previous = 0.0;
  for (const auto& [unique, best] : outcome.progress) {
    EXPECT_GE(best, previous);
    previous = best;
  }
  EXPECT_EQ(outcome.invalid + outcome.executed + outcome.cached + outcome.skipped,
            outcome.samples);
}

}  // namespace
}  // namespace maya
