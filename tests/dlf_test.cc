// Training-framework substrate tests: layout math, config validation, and —
// most critically — parameterized end-to-end sweeps over the parallelism
// knobs verifying that every engine's emitted trace collates cleanly and
// replays through the simulator without deadlock (send/recv pairing, event
// synchronization and collective matching across ranks).
#include <gtest/gtest.h>

#include <set>

#include "src/common/strings.h"
#include "src/dlf/megatron_layout.h"
#include "src/dlf/transformer_ops.h"
#include "src/dlf/worker_launcher.h"
#include "src/groundtruth/executor.h"
#include "src/models/model_zoo.h"
#include "src/trace/collator.h"

namespace maya {
namespace {

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

// ---- MegatronLayout ---------------------------------------------------------

TEST(LayoutTest, RankCoordinateRoundTrip) {
  const MegatronLayout layout(32, /*tp=*/2, /*pp=*/4);
  EXPECT_EQ(layout.dp(), 4);
  for (int rank = 0; rank < 32; ++rank) {
    EXPECT_EQ(layout.RankOf(layout.tp_index(rank), layout.dp_index(rank), layout.pp_stage(rank)),
              rank);
  }
}

TEST(LayoutTest, TpGroupsAreContiguous) {
  const MegatronLayout layout(16, 4, 2);
  EXPECT_EQ(layout.TpGroup(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(layout.TpGroup(5), (std::vector<int>{4, 5, 6, 7}));
}

TEST(LayoutTest, PpGroupStridesByTpTimesDp) {
  const MegatronLayout layout(16, 2, 2);  // dp=4, tp*dp=8
  EXPECT_EQ(layout.PpGroup(0), (std::vector<int>{0, 8}));
  EXPECT_EQ(layout.PpGroup(3), (std::vector<int>{3, 11}));
}

TEST(LayoutTest, DpGroupStridesByTp) {
  const MegatronLayout layout(16, 2, 2);
  EXPECT_EQ(layout.DpGroup(0), (std::vector<int>{0, 2, 4, 6}));
}

TEST(LayoutTest, UniqueRanksOnePerStage) {
  const MegatronLayout layout(64, 8, 8);  // the paper's 64-GPU TP8/DP8 example
  EXPECT_EQ(layout.UniqueRanks().size(), 8u);
  for (int rank = 0; rank < 64; ++rank) {
    EXPECT_EQ(layout.pp_stage(layout.RepresentativeOf(rank)), layout.pp_stage(rank));
    EXPECT_EQ(layout.tp_index(layout.RepresentativeOf(rank)), 0);
    EXPECT_EQ(layout.dp_index(layout.RepresentativeOf(rank)), 0);
  }
}

TEST(LayoutTest, GroupIndicesDisjoint) {
  const MegatronLayout layout(16, 2, 2);
  std::set<int> tp_groups;
  for (int rank = 0; rank < 16; ++rank) {
    tp_groups.insert(layout.TpGroupIndex(rank));
  }
  EXPECT_EQ(tp_groups.size(), 8u);  // 16 ranks / tp2
}

// ---- TrainConfig validation --------------------------------------------------

TEST(TrainConfigTest, ValidatesDivisibility) {
  const ClusterSpec cluster = H100Cluster(8);
  const ModelConfig model = TinyGpt();
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  EXPECT_TRUE(config.Validate(model, cluster).ok());
  config.tensor_parallel = 3;
  EXPECT_FALSE(config.Validate(model, cluster).ok());
}

TEST(TrainConfigTest, SequenceParallelRequiresTp) {
  const ClusterSpec cluster = H100Cluster(8);
  TrainConfig config;
  config.global_batch_size = 32;
  config.sequence_parallel = true;
  EXPECT_FALSE(config.Validate(TinyGpt(), cluster).ok());
  config.tensor_parallel = 2;
  EXPECT_TRUE(config.Validate(TinyGpt(), cluster).ok());
}

TEST(TrainConfigTest, VirtualStagesRequirePipeline) {
  const ClusterSpec cluster = H100Cluster(8);
  TrainConfig config;
  config.global_batch_size = 32;
  config.virtual_pipeline_stages = 2;
  EXPECT_FALSE(config.Validate(TinyGpt(), cluster).ok());
  config.pipeline_parallel = 2;
  EXPECT_TRUE(config.Validate(TinyGpt(), cluster).ok());
}

TEST(TrainConfigTest, TpCannotSpanNodes) {
  TrainConfig config;
  config.global_batch_size = 64;
  config.tensor_parallel = 8;
  EXPECT_TRUE(config.Validate(TinyGpt(), H100Cluster(16)).ok());
  ClusterSpec small_nodes = H100Cluster(16);
  small_nodes.gpus_per_node = 4;
  small_nodes.num_nodes = 4;
  EXPECT_FALSE(config.Validate(TinyGpt(), small_nodes).ok());
}

TEST(TrainConfigTest, LayerDivisibilityIntoChunks) {
  const ClusterSpec cluster = H100Cluster(8);
  TrainConfig config;
  config.global_batch_size = 32;
  config.pipeline_parallel = 4;
  config.virtual_pipeline_stages = 4;  // 16 chunks > 8 layers
  EXPECT_FALSE(config.Validate(TinyGpt(), cluster).ok());
  config.virtual_pipeline_stages = 2;  // 8 chunks of 1 layer
  EXPECT_TRUE(config.Validate(TinyGpt(), cluster).ok());
}

TEST(TrainConfigTest, DerivedQuantities) {
  TrainConfig config;
  config.global_batch_size = 64;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  EXPECT_EQ(config.data_parallel(16), 4);
  EXPECT_EQ(config.num_microbatches(), 4);
  EXPECT_EQ(config.microbatch_size(16), 4);
  EXPECT_NE(config.CacheKey(), TrainConfig{}.CacheKey());
}

// ---- Model config --------------------------------------------------------------

TEST(ModelConfigTest, ParameterCountsMatchPaperModels) {
  EXPECT_NEAR(Gpt3_1_3B().ParameterCount() / 1e9, 1.3, 0.15);
  EXPECT_NEAR(Gpt3_2_7B().ParameterCount() / 1e9, 2.7, 0.25);
  EXPECT_NEAR(Gpt3_18_4B().ParameterCount() / 1e9, 18.4, 1.0);
  EXPECT_NEAR(Gpt3_145_6B().ParameterCount() / 1e9, 145.6, 6.0);
  EXPECT_NEAR(Llama2_7B().ParameterCount() / 1e9, 6.8, 0.7);
  EXPECT_NEAR(ResNet152().ParameterCount() / 1e6, 60.0, 15.0);
}

TEST(ModelConfigTest, FlopsScaleWithBatch) {
  const ModelConfig model = Gpt3_2_7B();
  EXPECT_NEAR(model.FlopsPerIteration(512) / model.FlopsPerIteration(256), 2.0, 1e-9);
}

TEST(ModelConfigTest, DefaultBatchesMatchPaper) {
  EXPECT_EQ(DefaultGlobalBatch(Gpt3_2_7B()), 256);
  EXPECT_EQ(DefaultGlobalBatch(Gpt3_18_4B()), 512);
  EXPECT_EQ(DefaultGlobalBatch(Gpt3_145_6B()), 12288);
}

TEST(ModelConfigTest, GeneralityZooHasNineModels) {
  EXPECT_EQ(GeneralityZoo().size(), 9u);  // Table 4
}

// ---- Transformer ops accounting ----------------------------------------------------

TEST(TransformerOpsTest, LayerParamsMatchFormula) {
  TransformerDims dims;
  dims.hidden = 1024;
  dims.ffn_hidden = 4096;
  dims.tp = 1;
  // 4h^2 + 2*4h^2 = 12h^2 (+4h LN).
  EXPECT_EQ(TransformerLayerParams(dims), 12 * 1024 * 1024 + 4 * 1024);
  dims.tp = 4;
  EXPECT_EQ(TransformerLayerParams(dims), 3 * 1024 * 1024 + 4 * 1024);
}

TEST(TransformerOpsTest, ActivationMemoryShrinksWithTpAndSp) {
  TransformerDims dims;
  dims.seq = 2048;
  dims.mbs = 4;
  dims.hidden = 2048;
  dims.heads = 16;
  dims.ffn_hidden = 8192;
  dims.tp = 1;
  const uint64_t base = TransformerActivationBytes(dims, false);
  dims.tp = 4;
  const uint64_t tp = TransformerActivationBytes(dims, false);
  dims.sequence_parallel = true;
  const uint64_t tp_sp = TransformerActivationBytes(dims, false);
  EXPECT_GT(base, tp);
  EXPECT_GT(tp, tp_sp);
  // Full recomputation keeps only the boundary.
  EXPECT_GT(tp_sp, TransformerActivationBytes(dims, true));
}

// ---- End-to-end engine sweeps (schedule correctness) --------------------------------

struct EngineCase {
  int tp;
  int pp;
  int mult;
  int vpp;
  bool recomp;
  bool sp;
  bool dist_opt;
};

class MegatronEngineSweep : public ::testing::TestWithParam<EngineCase> {};

TEST_P(MegatronEngineSweep, EmulatesCollatesAndSimulates) {
  const EngineCase param = GetParam();
  const ClusterSpec cluster = H100Cluster(8);
  const ModelConfig model = TinyGpt();
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = param.tp;
  config.pipeline_parallel = param.pp;
  config.microbatch_multiplier = param.mult;
  config.virtual_pipeline_stages = param.vpp;
  config.activation_recomputation = param.recomp;
  config.sequence_parallel = param.sp;
  config.distributed_optimizer = param.dist_opt;
  ASSERT_TRUE(config.Validate(model, cluster).ok());

  Result<LaunchResult> launched = EmulateJob(model, config, cluster);
  ASSERT_TRUE(launched.ok()) << launched.status().ToString();
  ASSERT_FALSE(launched->oom) << launched->oom_detail;
  EXPECT_EQ(launched->traces.size(), 8u);
  for (const WorkerTrace& trace : launched->traces) {
    EXPECT_GT(trace.KernelLaunchCount(), 0u) << trace.Summary();
    EXPECT_GT(trace.peak_device_bytes, 0u);
  }

  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  ASSERT_TRUE(job.ok()) << job.status().ToString();

  // Replaying through the ground-truth executor catches any schedule
  // mismatch (unpaired send/recv, wrong seq) as a deadlock error.
  GroundTruthExecutor executor(cluster, 3);
  Result<SimReport> report = executor.Execute(*job);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->total_time_us, 0.0);
  EXPECT_GT(report->peak_memory_bytes, 0u);
  if (param.tp * param.pp > 1 || config.data_parallel(8) > 1) {
    EXPECT_GT(report->comm_time_us, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParallelismKnobs, MegatronEngineSweep,
    ::testing::Values(EngineCase{1, 1, 1, 1, false, false, false},   // single GPU per replica
                      EngineCase{2, 1, 1, 1, false, false, false},   // pure TP
                      EngineCase{1, 2, 1, 1, false, false, false},   // pure PP
                      EngineCase{2, 2, 1, 1, false, false, false},   // TP x PP
                      EngineCase{2, 2, 2, 1, false, false, false},   // + grad accumulation
                      EngineCase{2, 2, 2, 1, true, false, false},    // + recomputation
                      EngineCase{2, 2, 1, 1, false, true, false},    // + sequence parallel
                      EngineCase{2, 2, 2, 1, false, false, true},    // + distributed optimizer
                      EngineCase{1, 2, 2, 2, false, false, false},   // interleaved 1F1B
                      EngineCase{2, 4, 2, 2, true, true, true},      // everything at once
                      EngineCase{8, 1, 2, 1, false, true, false},    // full-node TP
                      EngineCase{1, 8, 1, 1, false, false, false},   // deep pipeline
                      EngineCase{1, 4, 2, 2, false, false, false},   // interleave, dp>1
                      EngineCase{4, 2, 4, 1, true, true, false}),
    [](const auto& info) {
      const EngineCase& c = info.param;
      return StrFormat("tp%d_pp%d_m%d_v%d_r%d_s%d_d%d", c.tp, c.pp, c.mult, c.vpp,
                       c.recomp ? 1 : 0, c.sp ? 1 : 0, c.dist_opt ? 1 : 0);
    });

// ---- OOM propagation -----------------------------------------------------------------

TEST(MegatronEngineTest, OomSurfacesForOversizedModel) {
  ClusterSpec cluster = H100Cluster(8);
  cluster.gpu.hbm_bytes = 4ULL << 30;  // shrink the device to force OOM
  const ModelConfig model = TinyGpt();
  TrainConfig config;
  config.global_batch_size = 32;
  Result<LaunchResult> launched = EmulateJob(model, config, cluster);
  ASSERT_TRUE(launched.ok()) << launched.status().ToString();
  EXPECT_TRUE(launched->oom);
  EXPECT_FALSE(launched->oom_detail.empty());
}

TEST(MegatronEngineTest, RecomputationRescuesMemory) {
  // A memory-limited device where only the recomputation variant fits.
  ClusterSpec cluster = H100Cluster(8);
  cluster.gpu.hbm_bytes = 11ULL << 30;
  ModelConfig model = TinyGpt();
  model.seq_length = 2048;
  TrainConfig config;
  config.global_batch_size = 64;
  config.microbatch_multiplier = 1;
  Result<LaunchResult> without = EmulateJob(model, config, cluster);
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(without->oom);
  config.activation_recomputation = true;
  Result<LaunchResult> with = EmulateJob(model, config, cluster);
  ASSERT_TRUE(with.ok());
  EXPECT_FALSE(with->oom) << with->oom_detail;
}

// ---- Selective launch -------------------------------------------------------------------

TEST(SelectiveLaunchTest, StubsCoverNonUniqueRanks) {
  const ClusterSpec cluster = H100Cluster(8);
  const ModelConfig model = TinyGpt();
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  LaunchOptions options;
  options.selective_launch = true;
  Result<LaunchResult> launched = EmulateJob(model, config, cluster, options);
  ASSERT_TRUE(launched.ok()) << launched.status().ToString();
  EXPECT_EQ(launched->full_workers_emulated, 2);  // one per pipeline stage
  int stubs = 0;
  for (const WorkerTrace& trace : launched->traces) {
    if (trace.comm_init_only) {
      ++stubs;
      EXPECT_GE(trace.duplicate_of, 0);
      EXPECT_TRUE(trace.ops.empty());
      EXPECT_FALSE(trace.comm_inits.empty());
    }
  }
  EXPECT_EQ(stubs, 6);
}

TEST(SelectiveLaunchTest, MatchesFullEmulationPrediction) {
  const ClusterSpec cluster = H100Cluster(8);
  const ModelConfig model = TinyGpt();
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  GroundTruthExecutor executor(cluster, 17);

  auto run = [&](bool selective) {
    LaunchOptions options;
    options.selective_launch = selective;
    Result<LaunchResult> launched = EmulateJob(model, config, cluster, options);
    CHECK(launched.ok());
    TraceCollator collator;  // dedup on
    Result<JobTrace> job = collator.Collate(std::move(launched->traces));
    CHECK(job.ok()) << job.status().ToString();
    Result<SimReport> report = executor.Execute(*job);
    CHECK(report.ok()) << report.status().ToString();
    return report->total_time_us;
  };
  const double full = run(false);
  const double selective = run(true);
  // Same representatives, same instance keys, same simulation.
  EXPECT_NEAR(selective / full, 1.0, 1e-9);
}

// ---- Generalized selective launch (FSDP / vision) ---------------------------

// Exact (bit-level) equality of two launches: trace ops (including measured
// host delays), comm evidence, memory highwater, and the launcher's counters.
void ExpectLaunchIdentical(const LaunchResult& a, const LaunchResult& b) {
  ASSERT_EQ(a.oom, b.oom);
  EXPECT_EQ(a.oom_detail, b.oom_detail);
  EXPECT_EQ(a.full_workers_emulated, b.full_workers_emulated);
  EXPECT_EQ(a.total_api_calls, b.total_api_calls);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (size_t i = 0; i < a.traces.size(); ++i) {
    EXPECT_TRUE(a.traces[i] == b.traces[i])
        << "rank " << a.traces[i].rank << " trace mismatch: " << a.traces[i].Summary()
        << " vs " << b.traces[i].Summary();
  }
}

TEST(SelectiveLaunchTest, FsdpFoldsEveryRankOntoRankZero) {
  TrainConfig config;
  config.framework = ParallelFramework::kFsdp;
  config.global_batch_size = 32;
  LaunchOptions options;
  options.selective_launch = true;
  Result<LaunchResult> launched = EmulateJob(TinyGpt(), config, H100Cluster(8), options);
  ASSERT_TRUE(launched.ok()) << launched.status().ToString();
  EXPECT_EQ(launched->full_workers_emulated, 1);
  for (const WorkerTrace& trace : launched->traces) {
    if (trace.rank == 0) {
      EXPECT_FALSE(trace.comm_init_only);
      continue;
    }
    EXPECT_TRUE(trace.comm_init_only);
    EXPECT_EQ(trace.duplicate_of, 0);
    EXPECT_TRUE(trace.ops.empty());
    ASSERT_EQ(trace.comm_inits.size(), 1u);  // world-comm membership evidence
    EXPECT_EQ(trace.comm_inits[0].rank_in_comm, trace.rank);
  }
  // The representative's trace is byte-identical to its full-emulation twin —
  // selective launch changes which ranks run, never what a rank records.
  Result<LaunchResult> full = EmulateJob(TinyGpt(), config, H100Cluster(8));
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(launched->traces[0] == full->traces[0]);
  // Fold criterion: every full rank shares the representative's structural
  // fingerprint (the FSDP script is rank-symmetric).
  for (const WorkerTrace& trace : full->traces) {
    EXPECT_EQ(trace.Fingerprint(), full->traces[0].Fingerprint());
  }
  // Collation accepts the stubs and folds the job to one simulated worker.
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->workers.size(), 1u);
  EXPECT_EQ(job->folded_ranks[0].size(), 8u);
}

TEST(SelectiveLaunchTest, VisionFoldsDataParallelTwins) {
  const ClusterSpec cluster = A40Node();
  TrainConfig config;
  config.framework = ParallelFramework::kDdp;
  config.global_batch_size = 256;
  config.microbatch_multiplier = 1;
  LaunchOptions options;
  options.selective_launch = true;
  Result<LaunchResult> launched = EmulateJob(ResNet152(), config, cluster, options);
  ASSERT_TRUE(launched.ok()) << launched.status().ToString();
  EXPECT_EQ(launched->full_workers_emulated, 1);
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  EXPECT_EQ(job->workers.size(), 1u);
  GroundTruthExecutor executor(cluster, 7);
  Result<SimReport> report = executor.Execute(*job);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->comm_time_us, 0.0);
}

// ---- Parallel emulation ------------------------------------------------------

struct ParallelCase {
  const char* label;
  ParallelFramework framework;
  bool vision = false;
  bool selective = false;
};

class ParallelLaunchSweep : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelLaunchSweep, BitIdenticalToSequential) {
  const ParallelCase param = GetParam();
  const ClusterSpec cluster = H100Cluster(8);
  ModelConfig model = param.vision ? ResNet152() : TinyGpt();
  TrainConfig config;
  config.framework = param.framework;
  if (param.vision) {
    config.global_batch_size = 256;
    config.microbatch_multiplier = 1;
  } else if (param.framework == ParallelFramework::kMegatron) {
    config.global_batch_size = 32;
    config.tensor_parallel = 2;
    config.pipeline_parallel = 2;
    config.microbatch_multiplier = 2;
  } else {
    config.global_batch_size = 32;
  }
  ThreadPool pool(4);
  LaunchOptions sequential;
  sequential.selective_launch = param.selective;
  LaunchOptions parallel = sequential;
  parallel.emulation_pool = &pool;
  parallel.min_parallel_ranks = 1;  // force the parallel arm below the adaptive floor
  Result<LaunchResult> a = EmulateJob(model, config, cluster, sequential);
  Result<LaunchResult> b = EmulateJob(model, config, cluster, parallel);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_FALSE(a->oom) << a->oom_detail;
  ExpectLaunchIdentical(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(
    Frameworks, ParallelLaunchSweep,
    ::testing::Values(ParallelCase{"megatron", ParallelFramework::kMegatron, false, false},
                      ParallelCase{"megatron_sel", ParallelFramework::kMegatron, false, true},
                      ParallelCase{"fsdp", ParallelFramework::kFsdp, false, false},
                      ParallelCase{"fsdp_sel", ParallelFramework::kFsdp, false, true},
                      ParallelCase{"vision", ParallelFramework::kDdp, true, false},
                      ParallelCase{"vision_sel", ParallelFramework::kDdp, true, true}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(ParallelLaunchTest, BorrowedPoolMatchesSequential) {
  ThreadPool pool(3);
  TrainConfig config;
  config.framework = ParallelFramework::kDeepSpeed;
  config.zero_stage = 2;
  config.global_batch_size = 32;
  config.microbatch_multiplier = 2;
  LaunchOptions borrowed;
  borrowed.emulation_pool = &pool;
  borrowed.min_parallel_ranks = 1;
  Result<LaunchResult> a = EmulateJob(TinyGpt(), config, H100Cluster(8));
  Result<LaunchResult> b = EmulateJob(TinyGpt(), config, H100Cluster(8), borrowed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectLaunchIdentical(*a, *b);
}

TEST(ParallelLaunchTest, OomPathBitIdenticalToSequential) {
  // Shrink the device so emulation OOMs: the parallel launch must report the
  // same lowest-failing rank, detail string, and pre-OOM counters the
  // sequential early-exit produces.
  ClusterSpec cluster = H100Cluster(8);
  cluster.gpu.hbm_bytes = 4ULL << 30;
  TrainConfig config;
  config.global_batch_size = 32;
  ThreadPool pool(4);
  LaunchOptions parallel;
  parallel.emulation_pool = &pool;
  parallel.min_parallel_ranks = 1;
  Result<LaunchResult> a = EmulateJob(TinyGpt(), config, cluster);
  Result<LaunchResult> b = EmulateJob(TinyGpt(), config, cluster, parallel);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(a->oom);
  EXPECT_TRUE(b->oom);
  EXPECT_EQ(a->oom_detail, b->oom_detail);
  EXPECT_EQ(a->total_api_calls, b->total_api_calls);
  EXPECT_EQ(a->full_workers_emulated, b->full_workers_emulated);
  EXPECT_TRUE(a->traces.empty());
  EXPECT_TRUE(b->traces.empty());
}

// ---- FSDP / DeepSpeed / DDP engines ----------------------------------------------------

class ZeroStageSweep : public ::testing::TestWithParam<int> {};

TEST_P(ZeroStageSweep, DeepSpeedStagesEmulateAndSimulate) {
  const ClusterSpec cluster = H100Cluster(8);
  ModelConfig model = TinyGpt();
  TrainConfig config;
  config.framework = ParallelFramework::kDeepSpeed;
  config.zero_stage = GetParam();
  config.global_batch_size = 32;
  config.microbatch_multiplier = 2;
  Result<LaunchResult> launched = EmulateJob(model, config, cluster);
  ASSERT_TRUE(launched.ok()) << launched.status().ToString();
  ASSERT_FALSE(launched->oom) << launched->oom_detail;
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  // All 8 DP ranks are twins: dedup folds to one.
  EXPECT_EQ(job->workers.size(), 1u);
  GroundTruthExecutor executor(cluster, 5);
  Result<SimReport> report = executor.Execute(*job);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->comm_time_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Stages, ZeroStageSweep, ::testing::Values(1, 2, 3));

TEST(FsdpEngineTest, Zero3ShardsParameterMemory) {
  const ClusterSpec cluster = H100Cluster(8);
  ModelConfig model = TinyGpt();
  auto peak_for = [&](ParallelFramework framework, int stage) {
    TrainConfig config;
    config.framework = framework;
    config.zero_stage = stage;
    config.global_batch_size = 32;
    Result<LaunchResult> launched = EmulateJob(model, config, cluster);
    CHECK(launched.ok());
    CHECK(!launched->oom);
    uint64_t peak = 0;
    for (const WorkerTrace& trace : launched->traces) {
      peak = std::max(peak, trace.peak_device_bytes);
    }
    return peak;
  };
  const uint64_t ddp = peak_for(ParallelFramework::kDdp, 0);
  const uint64_t zero1 = peak_for(ParallelFramework::kDeepSpeed, 1);
  const uint64_t zero3 = peak_for(ParallelFramework::kDeepSpeed, 3);
  EXPECT_GT(ddp, zero1);
  EXPECT_GT(zero1, zero3);
}

TEST(FsdpEngineTest, ActivationOffloadEmitsHostTransfers) {
  const ClusterSpec cluster = H100Cluster(8);
  TrainConfig config;
  config.framework = ParallelFramework::kDeepSpeed;
  config.zero_stage = 1;
  config.activation_offload = true;
  config.global_batch_size = 32;
  Result<LaunchResult> launched = EmulateJob(TinyGpt(), config, cluster);
  ASSERT_TRUE(launched.ok());
  ASSERT_FALSE(launched->oom);
  size_t d2h = 0;
  size_t h2d = 0;
  for (const TraceOp& op : launched->traces[0].ops) {
    if (op.type == TraceOpType::kKernelLaunch) {
      d2h += op.kernel.kind == KernelKind::kMemcpyD2H ? 1 : 0;
      h2d += op.kernel.kind == KernelKind::kMemcpyH2D ? 1 : 0;
    }
  }
  // One offload store per layer and one fetch per layer (plus input loads).
  EXPECT_GE(d2h, 8u);
  EXPECT_GE(h2d, 8u);
}

TEST(FsdpEngineTest, TorchCompileEmitsTritonAndCutsHostTime) {
  const ClusterSpec cluster = H100Cluster(8);
  TrainConfig eager_config;
  eager_config.framework = ParallelFramework::kDdp;
  eager_config.global_batch_size = 32;
  TrainConfig compiled_config = eager_config;
  compiled_config.torch_compile = true;

  Result<LaunchResult> eager = EmulateJob(TinyGpt(), eager_config, cluster);
  Result<LaunchResult> compiled = EmulateJob(TinyGpt(), compiled_config, cluster);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(compiled.ok());
  size_t triton = 0;
  for (const TraceOp& op : compiled->traces[0].ops) {
    triton += op.type == TraceOpType::kKernelLaunch &&
                      op.kernel.kind == KernelKind::kTritonFused
                  ? 1
                  : 0;
  }
  EXPECT_GT(triton, 0u);
  EXPECT_LT(compiled->traces[0].TotalHostDelayUs(), eager->traces[0].TotalHostDelayUs());
}

// ---- Vision engine ------------------------------------------------------------------------

TEST(VisionEngineTest, ResNetEmulatesThroughCudnnPath) {
  const ClusterSpec cluster = A40Node();
  TrainConfig config;
  config.framework = ParallelFramework::kDdp;
  config.global_batch_size = 256;
  config.microbatch_multiplier = 1;
  Result<LaunchResult> launched = EmulateJob(ResNet152(), config, cluster);
  ASSERT_TRUE(launched.ok()) << launched.status().ToString();
  ASSERT_FALSE(launched->oom) << launched->oom_detail;
  size_t convs = 0;
  size_t bns = 0;
  for (const TraceOp& op : launched->traces[0].ops) {
    if (op.type != TraceOpType::kKernelLaunch) {
      continue;
    }
    convs += op.kernel.kind == KernelKind::kConvForward ||
                     op.kernel.kind == KernelKind::kConvBackwardData ||
                     op.kernel.kind == KernelKind::kConvBackwardFilter
                 ? 1
                 : 0;
    bns += op.kernel.kind == KernelKind::kBatchNormForward ||
                   op.kernel.kind == KernelKind::kBatchNormBackward
               ? 1
               : 0;
  }
  // ResNet152: 50 bottleneck blocks x 3 convs + stem + downsamples, fwd+bwd.
  EXPECT_GT(convs, 300u);
  EXPECT_GT(bns, 100u);

  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  GroundTruthExecutor executor(cluster, 7);
  Result<SimReport> report = executor.Execute(*job);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
}

// ---- Host cost model -------------------------------------------------------------------------

TEST(HostCostModelTest, CompiledModeCutsLaunchOverhead) {
  const HostCostModel eager;
  const HostCostModel compiled = eager.Compiled();
  EXPECT_LT(compiled.kernel_launch_us, eager.kernel_launch_us / 3.0);
}

TEST(HostCostModelTest, ChargeAdvancesClockWithJitter) {
  VirtualHostClock clock;
  Rng rng(1);
  HostCostModel costs;
  ChargeHost(clock, rng, costs, 10.0);
  EXPECT_GT(clock.NowUs(), 10.0 * (1.0 - costs.jitter_fraction) - 1e-9);
  EXPECT_LT(clock.NowUs(), 10.0 * (1.0 + costs.jitter_fraction) + 1e-9);
}

}  // namespace
}  // namespace maya
