// Unit tests for src/cuda: type helpers and kernel metadata factories
// (flop/byte accounting that estimator features depend on).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/cuda/kernel_desc.h"
#include "src/cuda/types.h"

namespace maya {
namespace {

TEST(TypesTest, DTypeSizes) {
  EXPECT_EQ(DTypeSize(DType::kFp32), 4u);
  EXPECT_EQ(DTypeSize(DType::kBf16), 2u);
  EXPECT_EQ(DTypeSize(DType::kFp16), 2u);
  EXPECT_EQ(DTypeSize(DType::kInt64), 8u);
  EXPECT_EQ(DTypeSize(DType::kInt8), 1u);
}

TEST(TypesTest, ErrorNamesMirrorCuda) {
  EXPECT_STREQ(CudaErrorName(CudaError::kSuccess), "cudaSuccess");
  EXPECT_STREQ(CudaErrorName(CudaError::kErrorMemoryAllocation), "cudaErrorMemoryAllocation");
  EXPECT_STREQ(CudaErrorName(CudaError::kErrorInvalidResourceHandle),
               "cudaErrorInvalidResourceHandle");
}

TEST(TypesTest, MemcpyKindNamesMatchProfilerConvention) {
  EXPECT_STREQ(MemcpyKindName(MemcpyKind::kHostToDevice), "MemcpyHtoD");
  EXPECT_STREQ(MemcpyKindName(MemcpyKind::kDeviceToHost), "MemcpyDtoH");
}

TEST(KernelDescTest, GemmFlopsAndBytes) {
  const KernelDesc gemm = MakeGemm(128, 256, 512, DType::kBf16);
  EXPECT_EQ(gemm.kind, KernelKind::kGemm);
  EXPECT_DOUBLE_EQ(gemm.flops, 2.0 * 128 * 256 * 512);
  EXPECT_DOUBLE_EQ(gemm.bytes_read, 2.0 * (128.0 * 512 + 512.0 * 256));
  EXPECT_DOUBLE_EQ(gemm.bytes_written, 2.0 * 128 * 256);
  EXPECT_GT(gemm.intensity(), 1.0);
}

TEST(KernelDescTest, BatchedGemmScalesWithBatch) {
  const KernelDesc single = MakeGemm(64, 64, 64, DType::kFp16);
  const KernelDesc batched = MakeGemm(64, 64, 64, DType::kFp16, 8);
  EXPECT_EQ(batched.kind, KernelKind::kGemmStridedBatched);
  EXPECT_DOUBLE_EQ(batched.flops, 8.0 * single.flops);
}

TEST(KernelDescTest, ConvImplicitGemmFlops) {
  // 3x3 conv, 64->128 channels, 56x56, stride 1, batch 4.
  const KernelDesc conv = MakeConv(KernelKind::kConvForward, 4, 64, 56, 56, 128, 3, 3, 1,
                                   DType::kFp32);
  EXPECT_DOUBLE_EQ(conv.flops, 2.0 * 4 * 128 * 56 * 56 * 64 * 9);
  EXPECT_GT(conv.bytes_read, 0.0);
}

TEST(KernelDescTest, ConvStrideShrinksOutput) {
  const KernelDesc s1 = MakeConv(KernelKind::kConvForward, 1, 64, 56, 56, 64, 3, 3, 1,
                                 DType::kFp32);
  const KernelDesc s2 = MakeConv(KernelKind::kConvForward, 1, 64, 56, 56, 64, 3, 3, 2,
                                 DType::kFp32);
  EXPECT_NEAR(s1.flops / s2.flops, 4.0, 1e-9);
}

TEST(KernelDescTest, MemoryOpsHaveNoFlops) {
  EXPECT_EQ(MakeMemcpy(KernelKind::kMemcpyH2D, 1 << 20).flops, 0.0);
  EXPECT_EQ(MakeMemset(1 << 20).flops, 0.0);
  EXPECT_EQ(MakeCat(1 << 10, DType::kBf16).flops, 0.0);
  EXPECT_EQ(MakeMemcpy(KernelKind::kMemcpyD2H, 123).bytes_read, 123.0);
}

TEST(KernelDescTest, LayerNormBackwardCostsMoreThanForward) {
  const KernelDesc fwd = MakeLayerNorm(KernelKind::kLayerNormForward, 4096, 1024, DType::kBf16);
  const KernelDesc bwd = MakeLayerNorm(KernelKind::kLayerNormBackward, 4096, 1024, DType::kBf16);
  EXPECT_GT(bwd.flops, fwd.flops);
  EXPECT_GT(bwd.bytes_read, fwd.bytes_read);
}

TEST(KernelDescTest, TritonFusedTracksOpCount) {
  const KernelDesc fused = MakeTritonFused(1 << 20, 7, DType::kBf16);
  EXPECT_EQ(fused.fused_op_count, 7);
  EXPECT_DOUBLE_EQ(fused.flops, 7.0 * (1 << 20));
}

TEST(KernelDescTest, OptimizerBandwidthScalesWithStates) {
  const KernelDesc adam = MakeOptimizerApply(1 << 20, 4, DType::kFp32);
  const KernelDesc sgd = MakeOptimizerApply(1 << 20, 2, DType::kFp32);
  EXPECT_GT(adam.total_bytes(), sgd.total_bytes());
}

TEST(KernelDescTest, EmbeddingMovesTokenRows) {
  const KernelDesc emb =
      MakeEmbedding(KernelKind::kEmbeddingForward, 8192, 4096, 50304, DType::kBf16);
  EXPECT_DOUBLE_EQ(emb.bytes_written, 8192.0 * 4096 * 2);
  EXPECT_EQ(emb.flops, 0.0);
}

TEST(KernelDescTest, EveryKindHasDistinctCudaSymbol) {
  std::set<std::string> symbols;
  for (int i = 0; i < static_cast<int>(KernelKind::kNumKinds); ++i) {
    symbols.insert(KernelKindCudaSymbol(static_cast<KernelKind>(i)));
  }
  EXPECT_EQ(symbols.size(), static_cast<size_t>(KernelKind::kNumKinds));
}

TEST(KernelDescTest, ToStringIsInformative) {
  const std::string str = MakeGemm(128, 256, 512, DType::kBf16).ToString();
  EXPECT_NE(str.find("cublasSgemm_v2"), std::string::npos);
  EXPECT_NE(str.find("bf16"), std::string::npos);
}

// Parameterized sanity sweep: every factory produces internally consistent
// descriptors (non-negative flops/bytes; dtype preserved).
struct FactoryCase {
  const char* name;
  KernelDesc desc;
};

class KernelFactoryTest : public ::testing::TestWithParam<FactoryCase> {};

TEST_P(KernelFactoryTest, ConsistentAccounting) {
  const KernelDesc& desc = GetParam().desc;
  EXPECT_GE(desc.flops, 0.0);
  EXPECT_GE(desc.bytes_read, 0.0);
  EXPECT_GT(desc.total_bytes(), 0.0);
  EXPECT_GE(desc.intensity(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllFactories, KernelFactoryTest,
    ::testing::Values(
        FactoryCase{"gemm", MakeGemm(64, 64, 64, DType::kBf16)},
        FactoryCase{"batched", MakeGemm(64, 64, 64, DType::kBf16, 16)},
        FactoryCase{"ln_fwd", MakeLayerNorm(KernelKind::kLayerNormForward, 1024, 512,
                                            DType::kBf16)},
        FactoryCase{"ln_gw", MakeLayerNorm(KernelKind::kLayerNormGradWeights, 1024, 512,
                                           DType::kBf16)},
        FactoryCase{"bn", MakeBatchNorm(KernelKind::kBatchNormForward, 32, 64, 3136,
                                        DType::kFp32)},
        FactoryCase{"softmax", MakeSoftmax(KernelKind::kSoftmaxForward, 2048, 2048,
                                           DType::kBf16)},
        FactoryCase{"dropout", MakeDropout(1 << 16, DType::kBf16)},
        FactoryCase{"elementwise", MakeElementwise(1 << 16, DType::kBf16, 2)},
        FactoryCase{"reduce", MakeReduce(1 << 16, DType::kFp32)},
        FactoryCase{"cat", MakeCat(1 << 16, DType::kBf16)},
        FactoryCase{"embedding", MakeEmbedding(KernelKind::kEmbeddingForward, 4096, 1024,
                                               50304, DType::kBf16)},
        FactoryCase{"xent", MakeCrossEntropy(KernelKind::kCrossEntropyForward, 4096, 50304,
                                             DType::kFp32)},
        FactoryCase{"adam", MakeOptimizerApply(1 << 20, 4, DType::kFp32)},
        FactoryCase{"conv", MakeConv(KernelKind::kConvForward, 8, 64, 56, 56, 128, 3, 3, 1,
                                     DType::kFp32)},
        FactoryCase{"pool", MakePooling(8, 64, 112, 112, 2, DType::kFp32)},
        FactoryCase{"triton", MakeTritonFused(1 << 20, 5, DType::kBf16)},
        FactoryCase{"h2d", MakeMemcpy(KernelKind::kMemcpyH2D, 1 << 20)},
        FactoryCase{"memset", MakeMemset(1 << 20)}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace maya
