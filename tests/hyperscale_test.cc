// Hyperscale virtual-folds tests: RankSet/RankLookup primitives, bit-identity
// of the virtual (never-materialized) launch against the materialized paths
// across engines / caches / parallelism / OOM, serialization of folded spans
// (including the legacy folded_ranks format), and the service-layer wire and
// batch-grouping contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/estimator_bank.h"
#include "src/core/execution_context.h"
#include "src/core/pipeline.h"
#include "src/estimator/collective_estimator.h"
#include "src/models/model_zoo.h"
#include "src/service/service_engine.h"
#include "src/trace/rank_set.h"
#include "src/trace/serialization.h"

namespace maya {
namespace {

// ---- RankSet / RankLookup primitives ---------------------------------------

TEST(RankSetTest, AddBuildsCanonicalContiguousSpan) {
  RankSet set;
  EXPECT_TRUE(set.empty());
  for (int rank : {0, 1, 2, 3}) {
    set.Add(rank);
  }
  EXPECT_EQ(set.size(), 4u);
  ASSERT_EQ(set.spans().size(), 1u);
  EXPECT_EQ(set.spans()[0].base, 0);
  EXPECT_EQ(set.spans()[0].count, 4);
  EXPECT_EQ(set.spans()[0].stride, 1);
  EXPECT_EQ(set.min_rank(), 0);
  EXPECT_EQ(set.max_rank(), 3);
  EXPECT_TRUE(set.contains(2));
  EXPECT_FALSE(set.contains(4));
}

TEST(RankSetTest, AddDetectsStridedProgressions) {
  RankSet set;
  for (int rank : {3, 7, 11, 15}) {
    set.Add(rank);
  }
  ASSERT_EQ(set.spans().size(), 1u);
  EXPECT_EQ(set.spans()[0].base, 3);
  EXPECT_EQ(set.spans()[0].count, 4);
  EXPECT_EQ(set.spans()[0].stride, 4);
  EXPECT_TRUE(set.contains(11));
  EXPECT_FALSE(set.contains(12));
  EXPECT_EQ(set.Materialize(), (std::vector<int>{3, 7, 11, 15}));
}

TEST(RankSetTest, AddSpanMatchesElementwiseConstruction) {
  RankSet bulk;
  bulk.AddSpan(5, 1000, 3);
  RankSet elementwise;
  for (int64_t i = 0; i < 1000; ++i) {
    elementwise.Add(5 + i * 3);
  }
  EXPECT_EQ(bulk, elementwise);
  EXPECT_EQ(bulk.size(), 1000u);
  EXPECT_EQ(bulk.spans().size(), 1u);  // O(1) spans for O(N) members
  EXPECT_EQ(bulk.max_rank(), 5 + 999 * 3);
}

TEST(RankSetTest, IteratorWalksElementsInAscendingOrder) {
  RankSet set;
  set.AddSpan(0, 3, 1);   // 0 1 2
  set.AddSpan(10, 3, 5);  // 10 15 20
  std::vector<int64_t> seen(set.begin(), set.end());
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2, 10, 15, 20}));
}

TEST(RankSetTest, MergeFromInterleavedStridesStaysCanonical) {
  RankSet evens;
  evens.AddSpan(0, 4, 2);  // 0 2 4 6
  RankSet odds;
  odds.AddSpan(1, 4, 2);  // 1 3 5 7
  evens.MergeFrom(odds);
  EXPECT_EQ(evens.size(), 8u);
  EXPECT_EQ(evens.Materialize(), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Canonical invariant: spans ascending and disjoint.
  for (size_t i = 1; i < evens.spans().size(); ++i) {
    EXPECT_GT(evens.spans()[i].base, evens.spans()[i - 1].last());
  }
}

TEST(RankSetTest, MergeFromSpanOrderedFastPathFusesAdjacentSpans) {
  RankSet low{0, 1, 2, 3};
  RankSet high{4, 5, 6, 7};
  low.MergeFrom(high);
  ASSERT_EQ(low.spans().size(), 1u);
  EXPECT_EQ(low.spans()[0].count, 8);
}

TEST(RankLookupTest, FindMapsMembersAndRejectsOutsiders) {
  std::vector<RankSet> folds;
  folds.push_back(RankSet{0, 1, 2, 3});
  RankSet strided;
  strided.AddSpan(4, 3, 4);  // 4 8 12
  folds.push_back(strided);
  folds.push_back(RankSet{5});
  const RankLookup lookup(folds);
  EXPECT_EQ(lookup.Find(0), 0);
  EXPECT_EQ(lookup.Find(3), 0);
  EXPECT_EQ(lookup.Find(4), 1);
  EXPECT_EQ(lookup.Find(8), 1);
  EXPECT_EQ(lookup.Find(12), 1);
  EXPECT_EQ(lookup.Find(5), 2);
  EXPECT_EQ(lookup.Find(6), -1);   // stride hole
  EXPECT_EQ(lookup.Find(13), -1);  // past every span
  EXPECT_EQ(lookup.Find(-1), -1);
}

// ---- Shared prediction fixture ---------------------------------------------

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig MegatronConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

TrainConfig FsdpConfig() {
  TrainConfig config;
  config.framework = ParallelFramework::kFsdp;
  config.global_batch_size = 32;
  return config;
}

TrainConfig VisionConfig() {
  TrainConfig config;
  config.framework = ParallelFramework::kDdp;
  config.global_batch_size = 256;
  config.microbatch_multiplier = 1;
  return config;
}

// Everything a caller can observe about a prediction, minus wall-clock
// timings and launch-mode byproducts (total_api_calls is not in the report;
// full_workers_emulated legitimately differs from the full-emulation path).
void ExpectSameOutcome(const PredictionReport& a, const PredictionReport& b) {
  EXPECT_EQ(a.oom, b.oom);
  EXPECT_EQ(a.oom_detail, b.oom_detail);
  EXPECT_EQ(a.iteration_time_us, b.iteration_time_us);
  EXPECT_EQ(a.mfu, b.mfu);
  EXPECT_EQ(a.sim.total_time_us, b.sim.total_time_us);
  EXPECT_EQ(a.sim.comm_time_us, b.sim.comm_time_us);
  EXPECT_EQ(a.sim.exposed_comm_us, b.sim.exposed_comm_us);
  EXPECT_EQ(a.sim.host_time_us, b.sim.host_time_us);
  EXPECT_EQ(a.sim.peak_memory_bytes, b.sim.peak_memory_bytes);
  ASSERT_EQ(a.sim.workers.size(), b.sim.workers.size());
  for (size_t i = 0; i < a.sim.workers.size(); ++i) {
    EXPECT_EQ(a.sim.workers[i], b.sim.workers[i]) << "worker row " << i;
  }
  EXPECT_EQ(a.collation.total_workers, b.collation.total_workers);
  EXPECT_EQ(a.collation.unique_workers, b.collation.unique_workers);
  EXPECT_EQ(a.collation.duplicates_folded, b.collation.duplicates_folded);
}

class HyperscaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 13);
    ProfileSweepOptions sweep;  // trimmed for test speed
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, sweep));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  static MayaPipeline MakePipeline(MayaPipelineOptions options = {}) {
    return MayaPipeline(*cluster_, bank_->kernel.get(), bank_->collective.get(), options);
  }

  static PredictionReport PredictOrDie(const MayaPipeline& pipeline, const ModelConfig& model,
                                       const TrainConfig& config, bool virtual_folds,
                                       bool selective_launch = false) {
    PredictionRequest request;
    request.model = model;
    request.config = config;
    request.virtual_folds = virtual_folds;
    request.selective_launch = selective_launch;
    Result<PredictionReport> report = pipeline.Predict(request);
    CHECK(report.ok()) << report.status().ToString();
    return *std::move(report);
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
};

ClusterSpec* HyperscaleTest::cluster_ = nullptr;
GroundTruthExecutor* HyperscaleTest::executor_ = nullptr;
EstimatorBank* HyperscaleTest::bank_ = nullptr;

// ---- Virtual vs materialized bit-identity ----------------------------------

TEST_F(HyperscaleTest, VirtualFoldsMatchFullEmulationMegatron) {
  const MayaPipeline pipeline = MakePipeline();
  const PredictionReport materialized =
      PredictOrDie(pipeline, TinyGpt(), MegatronConfig(), /*virtual_folds=*/false);
  const PredictionReport virtualized =
      PredictOrDie(pipeline, TinyGpt(), MegatronConfig(), /*virtual_folds=*/true);
  ASSERT_FALSE(materialized.oom) << materialized.oom_detail;
  ExpectSameOutcome(materialized, virtualized);
}

TEST_F(HyperscaleTest, VirtualFoldsMatchSelectiveLaunchCounters) {
  // Selective launch and virtual folds emulate the same representative set,
  // so even the launch-mode byproducts line up.
  const MayaPipeline pipeline = MakePipeline();
  const PredictionReport selective = PredictOrDie(pipeline, TinyGpt(), MegatronConfig(),
                                                  /*virtual_folds=*/false,
                                                  /*selective_launch=*/true);
  const PredictionReport virtualized =
      PredictOrDie(pipeline, TinyGpt(), MegatronConfig(), /*virtual_folds=*/true);
  ExpectSameOutcome(selective, virtualized);
  EXPECT_EQ(selective.full_workers_emulated, virtualized.full_workers_emulated);
}

TEST_F(HyperscaleTest, VirtualFoldsMatchFullEmulationFsdp) {
  const MayaPipeline pipeline = MakePipeline();
  const PredictionReport materialized =
      PredictOrDie(pipeline, TinyGpt(), FsdpConfig(), /*virtual_folds=*/false);
  const PredictionReport virtualized =
      PredictOrDie(pipeline, TinyGpt(), FsdpConfig(), /*virtual_folds=*/true);
  ASSERT_FALSE(materialized.oom) << materialized.oom_detail;
  ExpectSameOutcome(materialized, virtualized);
  EXPECT_EQ(virtualized.full_workers_emulated, 1);  // one DP equivalence class
}

TEST_F(HyperscaleTest, VirtualFoldsMatchFullEmulationVision) {
  const MayaPipeline pipeline = MakePipeline();
  const PredictionReport materialized =
      PredictOrDie(pipeline, ResNet152(), VisionConfig(), /*virtual_folds=*/false);
  const PredictionReport virtualized =
      PredictOrDie(pipeline, ResNet152(), VisionConfig(), /*virtual_folds=*/true);
  ASSERT_FALSE(materialized.oom) << materialized.oom_detail;
  ExpectSameOutcome(materialized, virtualized);
}

TEST_F(HyperscaleTest, VirtualFoldsMatchAcrossWorldSizes) {
  // The analytic classes must reproduce the materialized fold at any
  // verifiable world size; kernel estimators transfer across cluster sizes
  // of one arch and the network model prices collectives analytically.
  AstraLikeNetworkModel astra;
  NetworkModelCollectiveEstimator astra_estimator(&astra);
  for (const int world : {16, 64}) {
    const ClusterSpec cluster = H100Cluster(world);
    const MayaPipeline pipeline(cluster, bank_->kernel.get(), &astra_estimator);
    TrainConfig config = MegatronConfig();
    config.tensor_parallel = 2;
    config.pipeline_parallel = 4;
    config.global_batch_size = 64;
    ASSERT_TRUE(config.Validate(TinyGpt(), cluster).ok()) << config.Summary();
    const PredictionReport materialized =
        PredictOrDie(pipeline, TinyGpt(), config, /*virtual_folds=*/false);
    const PredictionReport virtualized =
        PredictOrDie(pipeline, TinyGpt(), config, /*virtual_folds=*/true);
    ASSERT_FALSE(materialized.oom) << materialized.oom_detail;
    ExpectSameOutcome(materialized, virtualized);
    EXPECT_EQ(virtualized.full_workers_emulated, 4);  // one class per stage
  }
}

TEST_F(HyperscaleTest, VirtualFoldsBitIdenticalAcrossCacheAndParallelModes) {
  // One request, four execution strategies: {trace/sim caches on, off} x
  // {shared pool, sequential}, with the adaptive thresholds forced low so
  // the parallel arms actually engage at world 8. All bit-identical.
  const PredictionReport reference =
      PredictOrDie(MakePipeline(), TinyGpt(), MegatronConfig(), /*virtual_folds=*/true);

  MayaPipelineOptions cached;
  cached.enable_trace_cache = true;
  MayaPipeline cached_pipeline = MakePipeline(cached);
  const PredictionReport cold =
      PredictOrDie(cached_pipeline, TinyGpt(), MegatronConfig(), /*virtual_folds=*/true);
  const PredictionReport warm =
      PredictOrDie(cached_pipeline, TinyGpt(), MegatronConfig(), /*virtual_folds=*/true);
  EXPECT_FALSE(cold.trace_cache_hit);
  EXPECT_TRUE(warm.trace_cache_hit);
  ExpectSameOutcome(reference, cold);
  ExpectSameOutcome(reference, warm);

  MayaPipelineOptions uncached;
  uncached.enable_estimate_cache = false;
  uncached.enable_sim_cache = false;
  uncached.partition_simulation = false;
  ExpectSameOutcome(
      reference, PredictOrDie(MakePipeline(uncached), TinyGpt(), MegatronConfig(),
                              /*virtual_folds=*/true));

  MayaPipelineOptions parallel;
  parallel.context = ExecutionContext::Create(4);
  parallel.min_parallel_emulation_ranks = 1;
  parallel.min_parallel_simulation_components = 1;
  parallel.parallel_estimation_threshold = 1;
  ExpectSameOutcome(
      reference, PredictOrDie(MakePipeline(parallel), TinyGpt(), MegatronConfig(),
                              /*virtual_folds=*/true));
}

TEST_F(HyperscaleTest, VirtualFoldsOomParityWithMaterializedPaths) {
  // Shrink the device so every rank OOMs: the virtual path must surface the
  // same lowest-failing representative and detail string.
  ClusterSpec small = H100Cluster(8);
  small.gpu.hbm_bytes = 4ULL << 30;
  const MayaPipeline pipeline(small, bank_->kernel.get(), bank_->collective.get());

  PredictionRequest request;
  request.model = TinyGpt();
  TrainConfig unsharded;  // tp1 pp1: every rank holds the full model
  unsharded.global_batch_size = 32;
  request.config = unsharded;
  Result<PredictionReport> materialized = pipeline.Predict(request);
  request.virtual_folds = true;
  Result<PredictionReport> virtualized = pipeline.Predict(request);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ASSERT_TRUE(virtualized.ok()) << virtualized.status().ToString();
  ASSERT_TRUE(materialized->oom);
  EXPECT_TRUE(virtualized->oom);
  EXPECT_EQ(materialized->oom_detail, virtualized->oom_detail);
}

TEST_F(HyperscaleTest, SearchTrialsBitIdenticalUnderVirtualFolds) {
  const MayaPipeline pipeline = MakePipeline();
  const ConfigSpace space = ConfigSpace::MegatronTable5(32);
  SearchOptions options;
  options.algorithm = "random";
  options.sample_budget = 12;
  options.seed = 3;
  options.concurrency = 1;
  Result<SearchOutcome> materialized = RunSearch(pipeline, TinyGpt(), space, options);
  options.virtual_folds = true;
  Result<SearchOutcome> virtualized = RunSearch(pipeline, TinyGpt(), space, options);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ASSERT_TRUE(virtualized.ok()) << virtualized.status().ToString();
  EXPECT_EQ(materialized->found, virtualized->found);
  EXPECT_EQ(materialized->best_mfu, virtualized->best_mfu);
  EXPECT_EQ(materialized->best_iteration_us, virtualized->best_iteration_us);
  EXPECT_EQ(materialized->best_config.CacheKey(), virtualized->best_config.CacheKey());
  EXPECT_EQ(materialized->oom, virtualized->oom);
}

// ---- Serialization of folded spans ------------------------------------------

JobTrace CollateVirtualJob(const ModelConfig& model, const TrainConfig& config,
                           const ClusterSpec& cluster) {
  LaunchOptions launch;
  launch.virtual_folds = true;
  Result<LaunchResult> launched = EmulateJob(model, config, cluster, launch);
  CHECK(launched.ok()) << launched.status().ToString();
  CHECK(!launched->oom) << launched->oom_detail;
  TraceCollator collator;
  Result<JobTrace> job =
      collator.Collate(std::move(launched->traces), std::move(launched->resolved_comms));
  CHECK(job.ok()) << job.status().ToString();
  return *std::move(job);
}

TEST_F(HyperscaleTest, VirtualJobTraceRoundTripsByteIdentical) {
  const JobTrace job = CollateVirtualJob(TinyGpt(), MegatronConfig(), *cluster_);
  const std::string json = SerializeJobTrace(job);
  // Folded membership travels as spans, never as materialized rank lists.
  EXPECT_NE(json.find("\"folded_spans\""), std::string::npos);
  EXPECT_EQ(json.find("\"folded_ranks\""), std::string::npos);
  Result<JobTrace> parsed = ParseJobTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->world_size, job.world_size);
  EXPECT_EQ(parsed->folded_ranks, job.folded_ranks);
  ASSERT_EQ(parsed->workers.size(), job.workers.size());
  for (size_t i = 0; i < job.workers.size(); ++i) {
    EXPECT_EQ(parsed->workers[i].rank, job.workers[i].rank) << "worker " << i;
    EXPECT_EQ(parsed->workers[i].represented_ranks, job.workers[i].represented_ranks)
        << "worker " << i;
    EXPECT_EQ(parsed->workers[i].ops.size(), job.workers[i].ops.size()) << "worker " << i;
    EXPECT_EQ(parsed->workers[i].Fingerprint(), job.workers[i].Fingerprint()) << "worker " << i;
  }
  EXPECT_EQ(SerializeJobTrace(*parsed), json);
}

TEST_F(HyperscaleTest, LegacyFoldedRanksFormatStillParses) {
  // Pre-span serializations carried materialized rank lists; they must keep
  // parsing (sorted or not) into the canonical span form.
  const JobTrace job = CollateVirtualJob(TinyGpt(), FsdpConfig(), *cluster_);
  ASSERT_EQ(job.workers.size(), 1u);
  WorkerTrace legacy_worker = job.workers[0];
  legacy_worker.represented_ranks = RankSet{};  // legacy traces had no represented key
  std::string comms_json;
  {
    const std::string json = SerializeJobTrace(job);
    const size_t begin = json.find("\"comms\":");
    const size_t end = json.find(",\"folded_spans\"");
    ASSERT_NE(begin, std::string::npos);
    ASSERT_NE(end, std::string::npos);
    comms_json = json.substr(begin, end - begin);
  }
  const std::string legacy = "{\"world_size\":8," + comms_json +
                             R"(,"folded_ranks":[[0,1,2,3,4,5,6,7]],"workers":[)" +
                             SerializeWorkerTrace(legacy_worker) + "]}";
  Result<JobTrace> parsed = ParseJobTrace(legacy);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->world_size, 8);
  ASSERT_EQ(parsed->folded_ranks.size(), 1u);
  EXPECT_EQ(parsed->folded_ranks[0], (RankSet{0, 1, 2, 3, 4, 5, 6, 7}));
  // Legacy lists with duplicate ranks are rejected, not silently folded.
  const std::string duplicated = "{\"world_size\":8," + comms_json +
                                 R"(,"folded_ranks":[[0,1,1,2,3,4,5,6]],"workers":[)" +
                                 SerializeWorkerTrace(legacy_worker) + "]}";
  EXPECT_FALSE(ParseJobTrace(duplicated).ok());
}

// ---- Service wire + batch grouping ------------------------------------------

class HyperscaleServiceTest : public HyperscaleTest {
 protected:
  static std::unique_ptr<ServiceEngine> MakeEngine() {
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    return *ServiceEngine::Create(*cluster_, bank_->kernel.get(), bank_->collective.get(),
                                  ServiceEngineOptions{});
  }
};

TEST_F(HyperscaleServiceTest, PredictWireBitIdenticalUnderVirtualFolds) {
  std::unique_ptr<ServiceEngine> engine = MakeEngine();
  PredictPayload payload;
  payload.model = TinyGpt();
  payload.config = MegatronConfig();
  ServiceRequest request;
  request.id = 1;
  request.payload = payload;
  const ServiceResponse materialized = engine->Execute(request);
  payload.virtual_folds = true;
  request.id = 2;
  request.payload = payload;
  const ServiceResponse virtualized = engine->Execute(request);
  ASSERT_TRUE(materialized.ok) << materialized.error;
  ASSERT_TRUE(virtualized.ok) << virtualized.error;
  EXPECT_EQ(materialized.iteration_time_us, virtualized.iteration_time_us);
  EXPECT_EQ(materialized.mfu, virtualized.mfu);
  EXPECT_EQ(materialized.peak_memory_bytes, virtualized.peak_memory_bytes);
  EXPECT_EQ(materialized.oom, virtualized.oom);

  // The flag survives the wire byte-identically.
  const std::string line = SerializeServiceRequest(request);
  EXPECT_NE(line.find("\"virtual_folds\":true"), std::string::npos);
  Result<ServiceRequest> reparsed = ParseServiceRequest(line);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(SerializeServiceRequest(*reparsed), line);
}

TEST_F(HyperscaleServiceTest, WhatIfOomWireParityUnderVirtualFolds) {
  std::unique_ptr<ServiceEngine> engine = MakeEngine();
  WhatIfOomPayload payload;
  payload.model = TinyGpt();
  payload.config = MegatronConfig();
  ServiceRequest request;
  request.id = 3;
  request.payload = payload;
  const ServiceResponse materialized = engine->Execute(request);
  payload.virtual_folds = true;
  request.payload = payload;
  const ServiceResponse virtualized = engine->Execute(request);
  ASSERT_TRUE(materialized.ok) << materialized.error;
  ASSERT_TRUE(virtualized.ok) << virtualized.error;
  EXPECT_EQ(materialized.oom, virtualized.oom);
  EXPECT_EQ(materialized.oom_detail, virtualized.oom_detail);
  EXPECT_EQ(materialized.peak_memory_bytes, virtualized.peak_memory_bytes);
}

TEST_F(HyperscaleServiceTest, TracePredictAcceptsVirtualFoldedBundles) {
  std::unique_ptr<ServiceEngine> engine = MakeEngine();
  // A virtual-folds bundle (spans + resolved comms) must predict identically
  // to the materialized bundle of the same configuration.
  TracePredictPayload virtual_payload;
  virtual_payload.trace = CollateVirtualJob(TinyGpt(), MegatronConfig(), *cluster_);

  LaunchOptions materialized_launch;
  Result<LaunchResult> launched =
      EmulateJob(TinyGpt(), MegatronConfig(), *cluster_, materialized_launch);
  ASSERT_TRUE(launched.ok()) << launched.status().ToString();
  TraceCollator collator;
  Result<JobTrace> materialized_job = collator.Collate(std::move(launched->traces));
  ASSERT_TRUE(materialized_job.ok()) << materialized_job.status().ToString();
  TracePredictPayload materialized_payload;
  materialized_payload.trace = *std::move(materialized_job);

  // Round-trip BOTH requests over the wire: folded spans and represented
  // worker sets must survive the trace_predict payload codec, and both arms
  // see the same (wire-normalized) double formatting.
  ServiceRequest request;
  request.id = 4;
  request.payload = std::move(virtual_payload);
  Result<ServiceRequest> wired_virtual = ParseServiceRequest(SerializeServiceRequest(request));
  ASSERT_TRUE(wired_virtual.ok()) << wired_virtual.status().ToString();
  const ServiceResponse virtualized = engine->Execute(*wired_virtual);
  request.id = 5;
  request.payload = std::move(materialized_payload);
  Result<ServiceRequest> wired_materialized =
      ParseServiceRequest(SerializeServiceRequest(request));
  ASSERT_TRUE(wired_materialized.ok()) << wired_materialized.status().ToString();
  const ServiceResponse materialized = engine->Execute(*wired_materialized);
  ASSERT_TRUE(virtualized.ok) << virtualized.error;
  ASSERT_TRUE(materialized.ok) << materialized.error;
  EXPECT_EQ(materialized.iteration_time_us, virtualized.iteration_time_us);
  EXPECT_EQ(materialized.mfu, virtualized.mfu);
  EXPECT_EQ(materialized.peak_memory_bytes, virtualized.peak_memory_bytes);
}

TEST_F(HyperscaleServiceTest, BatchPredictGroupingPreservesOrderAndResults) {
  std::unique_ptr<ServiceEngine> engine = MakeEngine();
  // An interleaved batch (fingerprint twins deliberately non-adjacent): the
  // cache-aware grouping may execute in any order, but slots must stay in
  // submission order and every item must equal its standalone predict.
  TrainConfig a = MegatronConfig();
  TrainConfig b = MegatronConfig();
  b.tensor_parallel = 1;
  b.pipeline_parallel = 2;
  BatchPredictPayload batch;
  batch.model = TinyGpt();
  batch.configs = {a, b, a, b, a};
  batch.virtual_folds = true;
  ServiceRequest request;
  request.id = 6;
  request.payload = batch;
  const ServiceResponse response = engine->Execute(request);
  ASSERT_TRUE(response.ok) << response.error;
  ASSERT_EQ(response.batch.size(), 5u);

  auto single = [&](const TrainConfig& config) {
    PredictPayload payload;
    payload.model = TinyGpt();
    payload.config = config;
    payload.virtual_folds = true;
    ServiceRequest one;
    one.id = 7;
    one.payload = std::move(payload);
    const ServiceResponse answer = engine->Execute(one);
    CHECK(answer.ok) << answer.error;
    return SinglePredictResult(answer);
  };
  const PredictResult expect_a = single(a);
  const PredictResult expect_b = single(b);
  for (size_t i : {0u, 2u, 4u}) {
    EXPECT_EQ(response.batch[i].iteration_time_us, expect_a.iteration_time_us) << i;
    EXPECT_EQ(response.batch[i].mfu, expect_a.mfu) << i;
    EXPECT_EQ(response.batch[i].peak_memory_bytes, expect_a.peak_memory_bytes) << i;
  }
  for (size_t i : {1u, 3u}) {
    EXPECT_EQ(response.batch[i].iteration_time_us, expect_b.iteration_time_us) << i;
    EXPECT_EQ(response.batch[i].mfu, expect_b.mfu) << i;
    EXPECT_EQ(response.batch[i].peak_memory_bytes, expect_b.peak_memory_bytes) << i;
  }
}

}  // namespace
}  // namespace maya
