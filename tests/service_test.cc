// ServiceEngine / protocol / warm-start tests: typed-payload NDJSON
// round-trips (serialize -> parse -> serialize byte-identical per variant),
// deployment targeting incl. cross-arch what-ifs over registered per-arch
// banks, batch_predict bit-identity vs sequential predicts, weighted
// admission control, concurrent mixed workloads with per-request isolation,
// deadlines, cancellation, and v2 artifact-bundle warm starts with >= 90%
// estimate-cache hit rate and bit-identical predictions.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/json_parser.h"
#include "src/common/telemetry.h"
#include "src/dlf/worker_launcher.h"
#include "src/service/artifact_store.h"
#include "src/service/service_client.h"
#include "src/service/service_engine.h"
#include "src/sim/simulator.h"
#include "src/trace/collator.h"
#include "src/trace/serialization.h"

namespace maya {
namespace {

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig BaseConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

ProfileSweepOptions TestSweep() {
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1200;
  sweep.conv_samples = 100;
  sweep.generic_samples = 60;
  sweep.collective_sizes = 12;
  return sweep;
}

// One trained bank per test binary; engines borrow it.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 7);
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, TestSweep()));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  static std::unique_ptr<ServiceEngine> MakeEngine(ServiceEngineOptions options = {}) {
    return *ServiceEngine::Create(*cluster_, bank_->kernel.get(),
                                  bank_->collective.get(), options);
  }

  static ServiceRequest PredictRequest(uint64_t id, const TrainConfig& config) {
    ServiceRequest request;
    request.id = id;
    PredictPayload payload;
    payload.model = TinyGpt();
    payload.config = config;
    request.payload = std::move(payload);
    return request;
  }

  // The configuration sweep used by the warm-start and concurrency tests.
  static std::vector<TrainConfig> SweepConfigs() {
    std::vector<TrainConfig> configs;
    for (int tp : {1, 2}) {
      for (int pp : {1, 2}) {
        TrainConfig config = BaseConfig();
        config.tensor_parallel = tp;
        config.pipeline_parallel = pp;
        configs.push_back(config);
      }
    }
    return configs;
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
};

ClusterSpec* ServiceTest::cluster_ = nullptr;
GroundTruthExecutor* ServiceTest::executor_ = nullptr;
EstimatorBank* ServiceTest::bank_ = nullptr;

// ---- Protocol round-trips ---------------------------------------------------

// Serialize(parse(serialize(request))) must be byte-identical for every
// payload variant — the v2 wire format's fixed-point property.
void ExpectRequestFixedPoint(const ServiceRequest& request) {
  const std::string line = SerializeServiceRequest(request);
  Result<ServiceRequest> parsed = ParseServiceRequest(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  EXPECT_EQ(parsed->id, request.id);
  EXPECT_EQ(parsed->kind(), request.kind());
  EXPECT_EQ(SerializeServiceRequest(*parsed), line);
}

TEST(ServiceProtocolTest, EveryPayloadVariantRoundTripsByteIdentical) {
  ServiceRequest predict;
  predict.id = 42;
  predict.deadline_ms = 1500.0;
  PredictPayload predict_payload;
  predict_payload.model = TinyGpt();
  predict_payload.config = BaseConfig();
  predict_payload.selective_launch = true;
  predict_payload.deployment = "h100x32";
  predict.payload = predict_payload;
  ExpectRequestFixedPoint(predict);

  ServiceRequest batch;
  batch.id = 43;
  BatchPredictPayload batch_payload;
  batch_payload.model = TinyGpt();
  batch_payload.configs.push_back(BaseConfig());
  TrainConfig second = BaseConfig();
  second.tensor_parallel = 1;
  batch_payload.configs.push_back(second);
  batch_payload.deduplicate_workers = false;
  batch_payload.deployment = "v100x16";
  batch.payload = batch_payload;
  ExpectRequestFixedPoint(batch);

  ServiceRequest search;
  search.id = 44;
  SearchPayload search_payload;
  search_payload.model = TinyGpt();
  search_payload.search.algorithm = "random";
  search_payload.search.sample_budget = 64;
  search_payload.search.seed = 5;
  search_payload.global_batch = 32;
  search_payload.deployment = "a40";
  search.payload = search_payload;
  ExpectRequestFixedPoint(search);

  ServiceRequest whatif;
  whatif.id = 45;
  WhatIfOomPayload whatif_payload;
  whatif_payload.model = TinyGpt();
  whatif_payload.config = BaseConfig();
  whatif.payload = whatif_payload;
  ExpectRequestFixedPoint(whatif);

  ServiceRequest trace_predict;
  trace_predict.id = 46;
  TracePredictPayload trace_payload;
  trace_payload.trace.world_size = 1;
  WorkerTrace worker;
  worker.rank = 0;
  TraceOp op;
  op.type = TraceOpType::kKernelLaunch;
  op.kernel = MakeGemm(128, 64, 64, DType::kBf16);
  worker.ops.push_back(op);
  trace_payload.trace.workers.push_back(worker);
  trace_payload.trace.folded_ranks.push_back({0});
  trace_payload.deployment = "h100x8";
  trace_predict.payload = trace_payload;
  ExpectRequestFixedPoint(trace_predict);

  ServiceRequest stats;
  stats.id = 47;
  stats.payload = StatsPayload{};
  ExpectRequestFixedPoint(stats);

  ServiceRequest cancel;
  cancel.id = 48;
  cancel.payload = CancelPayload{7};
  ExpectRequestFixedPoint(cancel);

  ServiceRequest metrics;
  metrics.id = 49;
  metrics.payload = MetricsPayload{};
  ExpectRequestFixedPoint(metrics);

  ServiceRequest dump_trace;
  dump_trace.id = 50;
  dump_trace.payload = DumpTracePayload{};
  ExpectRequestFixedPoint(dump_trace);

  ServiceRequest health;
  health.id = 51;
  health.payload = HealthPayload{};
  ExpectRequestFixedPoint(health);
}

TEST(ServiceProtocolTest, HealthResponseRoundTripsEveryField) {
  ServiceResponse response;
  response.id = 60;
  response.kind = ServiceRequestKind::kHealth;
  response.ok = true;
  response.health.live = true;
  response.health.ready = true;
  response.health.draining = true;
  response.health.journal_enabled = true;
  response.health.journal_appends = 17;
  response.health.journal_lag = 3;
  response.health.journal_append_failures = 2;
  response.health.checkpoints = 5;
  response.health.last_checkpoint_age_s = 12.625;
  response.health.replayed_records = 4;
  response.health.torn_records_dropped = 1;
  response.health.queue_depth = 9;
  const std::string line = SerializeServiceResponse(response);
  Result<ServiceResponse> parsed = ParseServiceResponse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->health.live);
  EXPECT_TRUE(parsed->health.ready);
  EXPECT_TRUE(parsed->health.draining);
  EXPECT_TRUE(parsed->health.journal_enabled);
  EXPECT_EQ(parsed->health.journal_appends, 17u);
  EXPECT_EQ(parsed->health.journal_lag, 3u);
  EXPECT_EQ(parsed->health.journal_append_failures, 2u);
  EXPECT_EQ(parsed->health.checkpoints, 5u);
  EXPECT_EQ(parsed->health.last_checkpoint_age_s, 12.625);
  EXPECT_EQ(parsed->health.replayed_records, 4u);
  EXPECT_EQ(parsed->health.torn_records_dropped, 1u);
  EXPECT_EQ(parsed->health.queue_depth, 9u);
  EXPECT_EQ(SerializeServiceResponse(*parsed), line);
}

TEST(ServiceProtocolTest, DeploymentGovernanceCountersSurviveTheWire) {
  ServiceResponse stats;
  stats.id = 61;
  stats.kind = ServiceRequestKind::kStats;
  stats.ok = true;
  DeploymentStats deployment;
  deployment.name = "default";
  deployment.cancelled = 6;
  deployment.deadline_expired = 2;
  stats.stats.per_deployment.push_back(deployment);
  const std::string line = SerializeServiceResponse(stats);
  Result<ServiceResponse> parsed = ParseServiceResponse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->stats.per_deployment.size(), 1u);
  EXPECT_EQ(parsed->stats.per_deployment[0].cancelled, 6u);
  EXPECT_EQ(parsed->stats.per_deployment[0].deadline_expired, 2u);
  EXPECT_EQ(SerializeServiceResponse(*parsed), line);
}

TEST(ServiceProtocolTest, ParsedFieldsSurviveTheWire) {
  ServiceRequest request;
  request.id = 42;
  request.deadline_ms = 1500.0;
  PredictPayload payload;
  payload.model = TinyGpt();
  payload.config = BaseConfig();
  payload.selective_launch = true;
  payload.deployment = "h100x32";
  request.payload = std::move(payload);
  Result<ServiceRequest> parsed = ParseServiceRequest(SerializeServiceRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->deadline_ms, 1500.0);
  const PredictPayload& round = std::get<PredictPayload>(parsed->payload);
  EXPECT_EQ(round.model.name, "tiny-gpt");
  EXPECT_EQ(round.model.hidden_size, 1024);
  EXPECT_EQ(round.config.tensor_parallel, 2);
  EXPECT_TRUE(round.selective_launch);
  EXPECT_EQ(round.deployment, "h100x32");
}

TEST(ServiceProtocolTest, LegacyWhatIfClusterParsesAsDeploymentPredict) {
  // v1 clients sent kind whatif_cluster with a `cluster` field; v2 maps it
  // onto deployment-targeted predict (the migration path in the README).
  const std::string line =
      R"({"id":9,"kind":"whatif_cluster","model":{"name":"m","family":"GPT"},)"
      R"("config":{"tensor_parallel":2},"cluster":"h100x32"})";
  Result<ServiceRequest> parsed = ParseServiceRequest(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind(), ServiceRequestKind::kPredict);
  const PredictPayload& payload = std::get<PredictPayload>(parsed->payload);
  EXPECT_EQ(payload.deployment, "h100x32");
  EXPECT_EQ(payload.config.tensor_parallel, 2);
  // Without the cluster field the legacy kind is malformed.
  EXPECT_FALSE(ParseServiceRequest(
                   R"({"id":9,"kind":"whatif_cluster","model":{"name":"m","family":"GPT"},)"
                   R"("config":{}})")
                   .ok());
}

TEST(ServiceProtocolTest, SearchAndCancelRequestRoundTrip) {
  ServiceRequest search;
  search.id = 7;
  SearchPayload search_payload;
  search_payload.model = TinyGpt();
  search_payload.search.algorithm = "random";
  search_payload.search.sample_budget = 64;
  search_payload.search.seed = 5;
  search_payload.global_batch = 32;
  search.payload = std::move(search_payload);
  Result<ServiceRequest> parsed = ParseServiceRequest(SerializeServiceRequest(search));
  ASSERT_TRUE(parsed.ok());
  const SearchPayload& round = std::get<SearchPayload>(parsed->payload);
  EXPECT_EQ(round.search.algorithm, "random");
  EXPECT_EQ(round.search.sample_budget, 64);
  EXPECT_EQ(round.search.seed, 5u);
  EXPECT_EQ(round.global_batch, 32);

  ServiceRequest cancel;
  cancel.id = 8;
  cancel.payload = CancelPayload{7};
  Result<ServiceRequest> parsed_cancel = ParseServiceRequest(SerializeServiceRequest(cancel));
  ASSERT_TRUE(parsed_cancel.ok());
  EXPECT_EQ(std::get<CancelPayload>(parsed_cancel->payload).target_id, 7u);
}

TEST(ServiceProtocolTest, BatchPredictResponseRoundTripsByteIdentical) {
  ServiceResponse response;
  response.id = 12;
  response.kind = ServiceRequestKind::kBatchPredict;
  response.ok = true;
  PredictResult fits;
  fits.iteration_time_us = 123456.789;
  fits.mfu = 0.421;
  fits.peak_memory_bytes = 1ull << 33;
  fits.estimation.kernel_ops = 100;
  fits.estimation.unique_kernels = 10;
  fits.estimation.cache_hits = 10;
  response.batch.push_back(fits);
  PredictResult blown;
  blown.oom = true;
  blown.oom_detail = "rank 3: allocation of 2.0 GiB exceeds device memory";
  response.batch.push_back(blown);
  const std::string line = SerializeServiceResponse(response);
  Result<ServiceResponse> parsed = ParseServiceResponse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->batch.size(), 2u);
  EXPECT_EQ(parsed->batch[0].iteration_time_us, fits.iteration_time_us);
  EXPECT_EQ(parsed->batch[0].mfu, fits.mfu);
  EXPECT_TRUE(parsed->batch[1].oom);
  EXPECT_EQ(parsed->batch[1].oom_detail, blown.oom_detail);
  EXPECT_EQ(SerializeServiceResponse(*parsed), line);
}

TEST(ServiceProtocolTest, LatencyMetricsAndTraceResponsesRoundTripByteIdentical) {
  // stats response carrying per-kind latency percentiles.
  ServiceResponse stats;
  stats.id = 20;
  stats.kind = ServiceRequestKind::kStats;
  stats.ok = true;
  KindLatencyStats predict_latency;
  predict_latency.kind = "predict";
  predict_latency.queue_wait = {3, 12.5, 80.25, 95.125};
  predict_latency.latency = {3, 1500.5, 2200.75, 2300.875};
  stats.stats.latency.push_back(predict_latency);
  const std::string stats_line = SerializeServiceResponse(stats);
  Result<ServiceResponse> stats_parsed = ParseServiceResponse(stats_line);
  ASSERT_TRUE(stats_parsed.ok()) << stats_parsed.status().ToString();
  ASSERT_EQ(stats_parsed->stats.latency.size(), 1u);
  EXPECT_EQ(stats_parsed->stats.latency[0].kind, "predict");
  EXPECT_EQ(stats_parsed->stats.latency[0].queue_wait.count, 3u);
  EXPECT_EQ(stats_parsed->stats.latency[0].latency.p99_us, 2300.875);
  EXPECT_EQ(SerializeServiceResponse(*stats_parsed), stats_line);

  // metrics response carrying a counter, a labelled gauge and a histogram.
  ServiceResponse metrics;
  metrics.id = 21;
  metrics.kind = ServiceRequestKind::kMetrics;
  metrics.ok = true;
  MetricFamily counter;
  counter.name = "maya_requests_completed_total";
  counter.type = MetricType::kCounter;
  counter.help = "Completed requests";
  counter.series.push_back({.value = 42.0});
  metrics.metrics.push_back(counter);
  MetricFamily histogram;
  histogram.name = "maya_request_latency_us";
  histogram.type = MetricType::kHistogram;
  MetricSeries series;
  series.labels = "kind=\"predict\"";
  series.count = 7;
  series.sum_us = 1234.5;
  series.buckets = {{128.0, 3}, {256.0, 4}};
  series.p50_us = 150.5;
  series.p95_us = 240.25;
  series.p99_us = 250.125;
  histogram.series.push_back(series);
  metrics.metrics.push_back(histogram);
  const std::string metrics_line = SerializeServiceResponse(metrics);
  Result<ServiceResponse> metrics_parsed = ParseServiceResponse(metrics_line);
  ASSERT_TRUE(metrics_parsed.ok()) << metrics_parsed.status().ToString();
  ASSERT_EQ(metrics_parsed->metrics.size(), 2u);
  EXPECT_EQ(metrics_parsed->metrics[0].series[0].value, 42.0);
  ASSERT_EQ(metrics_parsed->metrics[1].series.size(), 1u);
  EXPECT_EQ(metrics_parsed->metrics[1].series[0].labels, "kind=\"predict\"");
  ASSERT_EQ(metrics_parsed->metrics[1].series[0].buckets.size(), 2u);
  EXPECT_EQ(metrics_parsed->metrics[1].series[0].buckets[1].count, 4u);
  EXPECT_EQ(SerializeServiceResponse(*metrics_parsed), metrics_line);

  // dump_trace response: inline JSON (embedded quotes must survive escaping)
  // and file-path variants.
  ServiceResponse trace;
  trace.id = 22;
  trace.kind = ServiceRequestKind::kDumpTrace;
  trace.ok = true;
  trace.trace_events = 5;
  trace.trace_json = R"({"traceEvents":[{"name":"emulate","ph":"X"}]})";
  const std::string trace_line = SerializeServiceResponse(trace);
  Result<ServiceResponse> trace_parsed = ParseServiceResponse(trace_line);
  ASSERT_TRUE(trace_parsed.ok()) << trace_parsed.status().ToString();
  EXPECT_EQ(trace_parsed->trace_events, 5u);
  EXPECT_EQ(trace_parsed->trace_json, trace.trace_json);
  EXPECT_EQ(SerializeServiceResponse(*trace_parsed), trace_line);

  ServiceResponse trace_file;
  trace_file.id = 23;
  trace_file.kind = ServiceRequestKind::kDumpTrace;
  trace_file.ok = true;
  trace_file.trace_events = 9;
  trace_file.trace_path = "/tmp/traces/trace_1.json";
  Result<ServiceResponse> file_parsed =
      ParseServiceResponse(SerializeServiceResponse(trace_file));
  ASSERT_TRUE(file_parsed.ok());
  EXPECT_EQ(file_parsed->trace_path, trace_file.trace_path);
  EXPECT_TRUE(file_parsed->trace_json.empty());
}

TEST(ServiceProtocolTest, MalformedRequestsRejected) {
  EXPECT_FALSE(ParseServiceRequest("not json").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1})").ok());              // no kind
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1,"kind":"nope"})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1,"kind":"predict"})").ok());  // no payload
  EXPECT_FALSE(  // batch_predict needs a configs array
      ParseServiceRequest(
          R"({"id":1,"kind":"batch_predict","model":{"name":"m","family":"GPT"}})")
          .ok());
}

TEST(ServiceProtocolTest, WrongTypedFieldsRejectedNotAborted) {
  // Typed JSON accessors CHECK-abort; the wire parsers must return errors
  // instead so one malformed client request cannot kill the server.
  EXPECT_FALSE(ParseServiceRequest(R"({"id":"x","kind":"stats"})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":-1,"kind":"stats"})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1,"kind":true})").ok());
  EXPECT_FALSE(ParseServiceRequest(
                   R"({"id":1,"kind":"predict","model":{"name":42,"family":"GPT"},"config":{}})")
                   .ok());
  EXPECT_FALSE(
      ParseServiceRequest(
          R"({"id":1,"kind":"predict","model":{"name":"m","family":"GPT","num_layers":"8"},"config":{}})")
          .ok());
  EXPECT_FALSE(
      ParseServiceRequest(
          R"({"id":1,"kind":"predict","model":{"name":"m","family":"GPT"},"config":{"sequence_parallel":3}})")
          .ok());
  EXPECT_FALSE(
      ParseServiceRequest(R"({"id":1,"kind":"stats","deadline_ms":"soon"})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1,"kind":"cancel","target_id":"x"})").ok());
  EXPECT_FALSE(
      ParseServiceRequest(
          R"({"id":1,"kind":"predict","model":{"name":"m","family":"GPT"},"config":{},"deployment":7})")
          .ok());
}

TEST(ServiceProtocolTest, ErrorResponseRoundTrip) {
  ServiceResponse error;
  error.id = 3;
  error.kind = ServiceRequestKind::kSearch;
  error.ok = false;
  error.error = "queued weight 64.0 + 16.0 (search) exceeds bound 64.0";
  error.error_code = kErrQueueFull;
  Result<ServiceResponse> parsed = ParseServiceResponse(SerializeServiceResponse(error));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->error_code, kErrQueueFull);
  EXPECT_EQ(parsed->error, error.error);
}

TEST(ServiceProtocolTest, ClusterNames) {
  Result<ClusterSpec> h100 = ClusterSpecByName("h100x32");
  ASSERT_TRUE(h100.ok());
  EXPECT_EQ(h100->total_gpus(), 32);
  EXPECT_EQ(h100->gpu.arch, GpuArch::kH100);
  Result<ClusterSpec> v100 = ClusterSpecByName("v100x16");
  ASSERT_TRUE(v100.ok());
  EXPECT_EQ(v100->gpu.arch, GpuArch::kV100);
  EXPECT_TRUE(ClusterSpecByName("a40").ok());
  EXPECT_TRUE(ClusterSpecByName("h100x4").ok());  // sub-node counts are one node
  EXPECT_FALSE(ClusterSpecByName("tpu").ok());
  EXPECT_FALSE(ClusterSpecByName("h100x").ok());
  EXPECT_FALSE(ClusterSpecByName("h100x-8").ok());
  // Names come off the wire (deployment targeting): counts the cluster
  // builders would CHECK-abort on must come back as Status errors.
  EXPECT_FALSE(ClusterSpecByName("h100x12").ok());  // not a node multiple
  EXPECT_FALSE(ClusterSpecByName("h100x4294967296").ok());  // int overflow
  EXPECT_FALSE(ClusterSpecByName("v100x99999999999999999999").ok());  // long overflow
}

// ---- Engine behaviour -------------------------------------------------------

TEST_F(ServiceTest, PredictMatchesDirectPipeline) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  Result<ServiceResponse> response = client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok) << response->error;
  ASSERT_FALSE(response->oom);

  PredictionRequest direct;
  direct.model = TinyGpt();
  direct.config = BaseConfig();
  const Result<PredictionReport> report = engine->pipeline().Predict(direct);
  ASSERT_TRUE(report.ok());
  // Bit-identical through the wire: responses carry hex-encoded doubles.
  EXPECT_EQ(response->iteration_time_us, report->iteration_time_us);
  EXPECT_EQ(response->mfu, report->mfu);
  EXPECT_GT(response->estimation.kernel_ops, 0u);
}

TEST_F(ServiceTest, BatchPredictBitIdenticalToSequentialPredicts) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  const std::vector<TrainConfig> configs = SweepConfigs();

  // Sequential reference on a second engine sharing the estimators (fresh
  // caches, so the batch's cold path is compared against a cold path).
  auto reference = MakeEngine();
  InProcessTransport reference_transport(reference.get());
  ServiceClient reference_client(&reference_transport);
  std::vector<ServiceResponse> sequential;
  for (const TrainConfig& config : configs) {
    Result<ServiceResponse> response = reference_client.Predict(TinyGpt(), config);
    ASSERT_TRUE(response.ok() && response->ok);
    sequential.push_back(*response);
  }

  Result<ServiceResponse> batch = client.BatchPredict(TinyGpt(), configs);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch->ok) << batch->error;
  ASSERT_EQ(batch->batch.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(batch->batch[i].iteration_time_us, sequential[i].iteration_time_us)
        << "config " << i;
    EXPECT_EQ(batch->batch[i].mfu, sequential[i].mfu) << "config " << i;
    EXPECT_EQ(batch->batch[i].peak_memory_bytes, sequential[i].peak_memory_bytes);
    EXPECT_EQ(batch->batch[i].oom, sequential[i].oom);
  }
  // The whole batch occupied one queue slot but counted every item's stage
  // timings, like the sequential predicts did.
  EXPECT_EQ(engine->stats().timed_requests, configs.size());
}

TEST_F(ServiceTest, StatsSurfaceStageTimings) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  Result<ServiceResponse> predict = client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(predict.ok());
  ASSERT_TRUE(predict->ok) << predict->error;

  // Per-stage wall time accumulates across executed requests and survives
  // the NDJSON wire format — dedup/parallel-emulation wins are observable
  // from a live maya_serve.
  ServiceRequest request;
  request.id = 2;
  request.payload = StatsPayload{};
  Result<ServiceRequest> wire = ParseServiceRequest(SerializeServiceRequest(request));
  ASSERT_TRUE(wire.ok());
  const ServiceResponse direct = engine->Execute(*wire);
  Result<ServiceResponse> stats = ParseServiceResponse(SerializeServiceResponse(direct));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->stats.timed_requests, 1u);
  EXPECT_GT(stats->stats.stage_totals.emulation_ms, 0.0);
  EXPECT_GT(stats->stats.stage_totals.estimation_ms, 0.0);
  EXPECT_GT(stats->stats.stage_totals.simulation_ms, 0.0);
  // Timings travel as approximate decimals (%.9g), unlike result doubles.
  EXPECT_NEAR(stats->stats.stage_totals.total_ms(), direct.stats.stage_totals.total_ms(),
              direct.stats.stage_totals.total_ms() * 1e-6);
  // The deployment fleet is visible in stats.
  ASSERT_EQ(stats->stats.deployments.size(), 1u);
  EXPECT_EQ(stats->stats.deployments[0], kDefaultDeploymentName);
  EXPECT_EQ(stats->stats.registered_deployments, 1u);
  EXPECT_EQ(stats->stats.max_queue_weight, 64.0);
}

TEST_F(ServiceTest, PerDeploymentStatsRoundTrip) {
  // PR 4 follow-up: the `stats` response reports every resident deployment's
  // cache/stage counters, not just the default deployment's — and the block
  // survives the NDJSON wire format.
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  Result<ServiceResponse> predict = client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(predict.ok() && predict->ok);
  TrainConfig derived_config = BaseConfig();
  derived_config.global_batch_size = 64;
  Result<ServiceResponse> derived = client.Predict(TinyGpt(), derived_config, "h100x16");
  ASSERT_TRUE(derived.ok() && derived->ok) << derived->error;

  ServiceRequest request;
  request.id = 9;
  request.payload = StatsPayload{};
  const ServiceResponse direct = engine->Execute(request);
  Result<ServiceResponse> stats = ParseServiceResponse(SerializeServiceResponse(direct));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  ASSERT_EQ(stats->stats.per_deployment.size(), 2u);
  const DeploymentStats& fallback = stats->stats.per_deployment[0];
  EXPECT_EQ(fallback.name, kDefaultDeploymentName);
  EXPECT_FALSE(fallback.derived);
  EXPECT_EQ(fallback.timed_requests, 1u);
  EXPECT_GT(fallback.stage_totals.simulation_ms, 0.0);
  EXPECT_GT(fallback.kernel_cache.insertions, 0u);
  EXPECT_GT(fallback.sim_cache.insertions, 0u);
  const DeploymentStats& whatif = stats->stats.per_deployment[1];
  EXPECT_EQ(whatif.name, "h100x16");
  EXPECT_TRUE(whatif.derived);
  EXPECT_EQ(whatif.timed_requests, 1u);
  EXPECT_GT(whatif.kernel_cache.insertions, 0u);
  // Per-deployment counters are isolated: the derived pipeline's caches are
  // not the default pipeline's.
  EXPECT_EQ(direct.stats.per_deployment[0].kernel_cache.insertions,
            fallback.kernel_cache.insertions);
  // Top-level sim cache mirrors the default deployment's.
  EXPECT_EQ(stats->stats.sim_cache.insertions, fallback.sim_cache.insertions);
  // Fixed point: serialize(parse(serialize(x))) is byte-identical.
  EXPECT_EQ(SerializeServiceResponse(*stats), SerializeServiceResponse(direct));
}

TEST_F(ServiceTest, StatsLatencyPercentilesTrackWorkerExecutedRequests) {
  auto engine = MakeEngine();
  const std::vector<TrainConfig> configs = SweepConfigs();
  uint64_t id = 1;
  for (const TrainConfig& config : configs) {
    ServiceResponse response = engine->Submit(PredictRequest(id++, config)).get();
    ASSERT_TRUE(response.ok) << response.error;
  }

  // Queue-wait + e2e latency percentiles appear per kind, measured by the
  // engine's always-on histograms, and survive the NDJSON wire format.
  ServiceRequest request;
  request.id = id;
  request.payload = StatsPayload{};
  const ServiceResponse direct = engine->Execute(request);
  Result<ServiceResponse> stats = ParseServiceResponse(SerializeServiceResponse(direct));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->stats.latency.size(), 1u);  // only predict ran via workers
  const KindLatencyStats& predict = stats->stats.latency[0];
  EXPECT_EQ(predict.kind, "predict");
  EXPECT_EQ(predict.queue_wait.count, configs.size());
  EXPECT_EQ(predict.latency.count, configs.size());
  EXPECT_GT(predict.latency.p50_us, 0.0);
  EXPECT_LE(predict.latency.p50_us, predict.latency.p95_us);
  EXPECT_LE(predict.latency.p95_us, predict.latency.p99_us);
  // Latency includes queue wait, so the percentiles dominate queue-wait ones.
  EXPECT_GE(predict.latency.p50_us, predict.queue_wait.p50_us);
  // Fixed point: serialize(parse(serialize(x))) is byte-identical.
  EXPECT_EQ(SerializeServiceResponse(*stats), SerializeServiceResponse(direct));
  // The engine-owned histograms are the single source feeding both stats and
  // the metrics exposition.
  EXPECT_EQ(engine->RequestLatencyHistogram(ServiceRequestKind::kPredict).count(),
            configs.size());
}

TEST_F(ServiceTest, MetricsResponseReconcilesWithServiceStats) {
  auto engine = MakeEngine();
  const std::vector<TrainConfig> configs = SweepConfigs();
  uint64_t id = 1;
  for (const TrainConfig& config : configs) {
    ServiceResponse response = engine->Submit(PredictRequest(id++, config)).get();
    ASSERT_TRUE(response.ok) << response.error;
  }
  const ServiceStats stats = engine->stats();

  ServiceRequest request;
  request.id = id;
  request.payload = MetricsPayload{};
  const ServiceResponse direct = engine->Submit(request).get();
  ASSERT_TRUE(direct.ok) << direct.error;
  Result<ServiceResponse> wire = ParseServiceResponse(SerializeServiceResponse(direct));
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(SerializeServiceResponse(*wire), SerializeServiceResponse(direct));

  // Families arrive sorted and reconcile with the stats snapshot taken
  // before the metrics request itself (completed moved by the metrics
  // request; the counters below are untouched by control kinds).
  std::map<std::string, const MetricFamily*> families;
  for (const MetricFamily& family : wire->metrics) {
    families[family.name] = &family;
  }
  ASSERT_TRUE(families.count("maya_requests_submitted_total"));
  ASSERT_TRUE(families.count("maya_timed_requests_total"));
  ASSERT_TRUE(families.count("maya_request_latency_us"));
  ASSERT_TRUE(families.count("maya_cache_hits_total"));
  EXPECT_EQ(families["maya_timed_requests_total"]->series[0].value,
            static_cast<double>(stats.timed_requests));
  EXPECT_EQ(families["maya_queue_weight_bound"]->series[0].value,
            stats.max_queue_weight);

  // The per-kind latency histogram count equals the worker-executed predict
  // count — which is exactly timed_requests here.
  const MetricFamily* latency = families["maya_request_latency_us"];
  uint64_t histogram_total = 0;
  for (const MetricSeries& series : latency->series) {
    if (series.labels == "kind=\"predict\"") {
      histogram_total += series.count;
    }
  }
  EXPECT_EQ(histogram_total, stats.timed_requests);
  EXPECT_EQ(histogram_total, static_cast<uint64_t>(configs.size()));

  // Cache hit/miss counters reconcile with the per-deployment cache stats.
  uint64_t exported_kernel_hits = 0;
  for (const MetricSeries& series : families["maya_cache_hits_total"]->series) {
    if (series.labels.find("layer=\"kernel\"") != std::string::npos) {
      exported_kernel_hits += static_cast<uint64_t>(series.value);
    }
  }
  uint64_t stats_kernel_hits = 0;
  for (const DeploymentStats& deployment : stats.per_deployment) {
    stats_kernel_hits += deployment.kernel_cache.hits;
  }
  EXPECT_EQ(exported_kernel_hits, stats_kernel_hits);

  // And the exposition renders without blowing up, carrying the same totals.
  const std::string prometheus = RenderPrometheus(wire->metrics);
  EXPECT_NE(prometheus.find("# TYPE maya_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(prometheus.find("maya_requests_submitted_total"), std::string::npos);
}

TEST_F(ServiceTest, DumpTraceCoversQueueWaitAndEveryPipelineStage) {
  Telemetry::Options tracing;
  tracing.tracing = true;
  Telemetry::Instance().Configure(tracing);

  auto engine = MakeEngine();
  const std::vector<TrainConfig> configs = SweepConfigs();
  std::vector<std::future<ServiceResponse>> inflight;
  uint64_t id = 1;
  for (const TrainConfig& config : configs) {
    inflight.push_back(engine->Submit(PredictRequest(id++, config)));
  }
  for (std::future<ServiceResponse>& future : inflight) {
    ServiceResponse response = future.get();
    ASSERT_TRUE(response.ok) << response.error;
  }

  ServiceRequest request;
  request.id = id;
  request.payload = DumpTracePayload{};
  const ServiceResponse direct = engine->Submit(request).get();
  Telemetry::Instance().Disable();
  ASSERT_TRUE(direct.ok) << direct.error;
  EXPECT_TRUE(direct.trace_path.empty());  // no trace_dir -> inline JSON
  ASSERT_FALSE(direct.trace_json.empty());
  EXPECT_GT(direct.trace_events, 0u);

  // The export is Chrome trace-event JSON parseable by the repo's own
  // parser; group spans by trace id and check each predict's span tree.
  Result<JsonValue> root = ParseJson(direct.trace_json);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  Result<const JsonArray*> events = ToArray(root->at("traceEvents"));
  ASSERT_TRUE(events.ok());
  EXPECT_EQ((*events)->size(), direct.trace_events);
  std::map<uint64_t, std::map<std::string, int>> spans_by_trace;
  for (const JsonValue& event : **events) {
    Result<std::string> name = ToString(event.at("name"));
    ASSERT_TRUE(name.ok());
    Result<uint64_t> trace_id = ToUint(event.at("args").at("trace_id"));
    ASSERT_TRUE(trace_id.ok());
    spans_by_trace[*trace_id][*name] += 1;
  }
  size_t traced_predicts = 0;
  for (const auto& [trace_id, spans] : spans_by_trace) {
    if (trace_id == 0 || spans.count("predict") == 0) {
      continue;  // spans outside any request, or non-predict work
    }
    ++traced_predicts;
    EXPECT_EQ(spans.at("predict"), 1) << "trace " << trace_id;
    EXPECT_EQ(spans.count("queue_wait"), 1u) << "trace " << trace_id;
    // All four pipeline stages appear under the request's trace id even
    // though stages fan out across the shared execution context's pool.
    for (const char* stage : {"emulate", "collate", "estimate", "simulate"}) {
      EXPECT_GE(spans.count(stage), 1u) << "trace " << trace_id << " missing " << stage;
    }
  }
  EXPECT_EQ(traced_predicts, configs.size());
}

TEST_F(ServiceTest, BatchPredictSimCacheOnVsOffBitIdentical) {
  // A batch over a repeated config answers from the sim cache after the
  // first item — bit-identically to a cache-less engine.
  ServiceEngineOptions cached_options;
  ASSERT_TRUE(cached_options.pipeline.enable_sim_cache);
  auto cached = MakeEngine(cached_options);
  ServiceEngineOptions uncached_options;
  uncached_options.pipeline.enable_sim_cache = false;
  auto uncached = MakeEngine(uncached_options);

  std::vector<TrainConfig> configs = {BaseConfig(), BaseConfig(), BaseConfig()};
  configs[2].tensor_parallel = 1;
  ServiceRequest request;
  request.id = 1;
  BatchPredictPayload payload;
  payload.model = TinyGpt();
  payload.configs = configs;
  request.payload = std::move(payload);

  const ServiceResponse a = cached->Execute(request);
  const ServiceResponse b = uncached->Execute(request);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.batch.size(), configs.size());
  ASSERT_EQ(b.batch.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(a.batch[i].iteration_time_us, b.batch[i].iteration_time_us) << "item " << i;
    EXPECT_EQ(a.batch[i].mfu, b.batch[i].mfu) << "item " << i;
    EXPECT_EQ(a.batch[i].peak_memory_bytes, b.batch[i].peak_memory_bytes) << "item " << i;
    EXPECT_EQ(b.batch[i].simulation.cache_hits, 0u);
  }
  // Item 2 repeats item 1's config: its components all replay from cache.
  EXPECT_EQ(a.batch[0].simulation.cache_hits, 0u);
  EXPECT_GT(a.batch[1].simulation.cache_hits, 0u);
  EXPECT_EQ(a.batch[1].simulation.simulated_components, 0u);
}

TEST_F(ServiceTest, WhatIfOomReportsVerdict) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);

  Result<ServiceResponse> fits = client.CheckOom(TinyGpt(), BaseConfig());
  ASSERT_TRUE(fits.ok());
  ASSERT_TRUE(fits->ok);
  EXPECT_FALSE(fits->oom);
  EXPECT_GT(fits->peak_memory_bytes, 0u);

  ModelConfig heavy = TinyGpt();
  heavy.seq_length = 8192;
  TrainConfig config = BaseConfig();
  config.microbatch_multiplier = 1;
  Result<ServiceResponse> blown = client.CheckOom(heavy, config);
  ASSERT_TRUE(blown.ok());
  ASSERT_TRUE(blown->ok);
  EXPECT_TRUE(blown->oom);
  EXPECT_FALSE(blown->oom_detail.empty());
}

TEST_F(ServiceTest, DeploymentTargetedPredictSharesEstimators) {
  // Same-arch what-if: an unregistered H100 cluster name derives a
  // deployment over the default deployment's estimators.
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  TrainConfig config = BaseConfig();
  config.global_batch_size = 64;  // divisible across 16 GPUs
  Result<ServiceResponse> response = client.Predict(TinyGpt(), config, "h100x16");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok) << response->error;
  ASSERT_FALSE(response->oom);

  // Reference: a pipeline over the same estimators on the target cluster.
  const ClusterSpec target = H100Cluster(16);
  MayaPipeline reference(target, bank_->kernel.get(), bank_->collective.get());
  PredictionRequest direct;
  direct.model = TinyGpt();
  direct.config = config;
  const Result<PredictionReport> report = reference.Predict(direct);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(response->iteration_time_us, report->iteration_time_us);

  // The derived deployment is now resident and visible in stats.
  EXPECT_TRUE(engine->registry().IsResident("h100x16"));
  EXPECT_EQ(engine->registry().derived_count(), 1u);

  // Cross-arch what-ifs are refused while no V100 bank is registered.
  Result<ServiceResponse> cross = client.Predict(TinyGpt(), config, "v100x8");
  ASSERT_TRUE(cross.ok());
  EXPECT_FALSE(cross->ok);
  EXPECT_EQ(cross->error_code, kErrInvalidRequest);

  // A malformed deployment-cluster name is an error response, not an abort.
  Result<ServiceResponse> bad_count = client.Predict(TinyGpt(), config, "h100x12");
  ASSERT_TRUE(bad_count.ok());
  EXPECT_FALSE(bad_count->ok);
  EXPECT_EQ(bad_count->error_code, kErrInvalidRequest);
}

TEST_F(ServiceTest, CrossArchWhatIfViaRegisteredBank) {
  // The ISSUE acceptance path: an engine trained on one arch (V100) answers
  // a predict targeted at a second-arch cluster (h100x32) once an H100 bank
  // is registered — and the answer is bit-identical to a pipeline built
  // directly over that bank on the target cluster.
  const ClusterSpec v100 = V100Cluster(8);
  GroundTruthExecutor v100_hardware(v100, 21);
  auto engine = *ServiceEngine::Create(
      v100, TrainEstimators(v100, v100_hardware, TestSweep()), ServiceEngineOptions{});

  GroundTruthExecutor h100_hardware(*cluster_, 22);
  Result<std::shared_ptr<const Deployment>> h100_deployment = engine->AddDeployment(
      "h100x8", *cluster_, TrainEstimators(*cluster_, h100_hardware, TestSweep()));
  ASSERT_TRUE(h100_deployment.ok()) << h100_deployment.status().ToString();

  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  TrainConfig config = BaseConfig();
  config.global_batch_size = 64;

  // Cross-arch what-if at a cluster shape that is NOT itself registered:
  // resolution parses "h100x32", finds the registered same-arch bank, and
  // derives a pipeline for 32 GPUs over it.
  Result<ServiceResponse> cross = client.Predict(TinyGpt(), config, "h100x32");
  ASSERT_TRUE(cross.ok()) << cross.status().ToString();
  ASSERT_TRUE(cross->ok) << cross->error;
  ASSERT_FALSE(cross->oom);

  MayaPipeline reference(H100Cluster(32), (*h100_deployment)->kernel_estimator,
                         (*h100_deployment)->collective_estimator);
  PredictionRequest direct;
  direct.model = TinyGpt();
  direct.config = config;
  const Result<PredictionReport> report = reference.Predict(direct);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->oom);
  EXPECT_EQ(cross->iteration_time_us, report->iteration_time_us);
  EXPECT_EQ(cross->mfu, report->mfu);

  // The default (V100) path still answers on its own bank.
  Result<ServiceResponse> native = client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(native.ok() && native->ok);
  // And an arch with no registered bank still refuses.
  Result<ServiceResponse> a40 = client.Predict(TinyGpt(), config, "a40");
  ASSERT_TRUE(a40.ok());
  EXPECT_FALSE(a40->ok);
  EXPECT_EQ(a40->error_code, kErrInvalidRequest);
}

TEST_F(ServiceTest, TracePredictSkipsEmulation) {
  auto engine = MakeEngine();
  // Build a collated trace out-of-band (a client with its own emulator).
  Result<LaunchResult> launched = EmulateJob(TinyGpt(), BaseConfig(), *cluster_);
  ASSERT_TRUE(launched.ok());
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  ASSERT_TRUE(job.ok());

  ServiceRequest request;
  request.id = 77;
  TracePredictPayload payload;
  payload.trace = *job;
  request.payload = std::move(payload);
  // Exercise the full wire path: the trace payload round-trips as NDJSON.
  Result<ServiceRequest> wire = ParseServiceRequest(SerializeServiceRequest(request));
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ServiceResponse response = engine->Submit(*std::move(wire)).get();
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.timings.emulation_ms, 0.0);

  // Reference: annotate + simulate the same wire-format trace directly (the
  // trace JSON carries decimal doubles, so the reference must consume the
  // identical round-tripped payload for a bit-exact comparison).
  Result<JobTrace> round_tripped = ParseJobTrace(SerializeJobTrace(*job));
  ASSERT_TRUE(round_tripped.ok());
  JobTrace reference = *std::move(round_tripped);
  engine->pipeline().AnnotateDurations(reference, nullptr);
  Simulator simulator(reference, *cluster_, SimOptions{});
  Result<SimReport> sim = simulator.Run();
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(response.iteration_time_us, sim->total_time_us);
}

TEST_F(ServiceTest, ConcurrentMixedWorkloadMatchesSequential) {
  ServiceEngineOptions options;
  options.worker_threads = 4;
  auto engine = MakeEngine(options);

  // Sequential reference for every request, on a second engine sharing the
  // same estimators (fresh caches: proves cold-concurrent == warm-sequential
  // via the bit-identical cache invariant).
  ServiceEngineOptions reference_options;
  reference_options.worker_threads = 1;
  auto reference = MakeEngine(reference_options);

  struct Case {
    ServiceRequest request;
    ServiceResponse expected;
  };
  std::vector<Case> cases;
  uint64_t next_id = 1;
  for (const TrainConfig& config : SweepConfigs()) {
    Case c;
    c.request = PredictRequest(next_id++, config);
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.request.id = next_id++;
    SearchPayload payload;
    payload.model = TinyGpt();
    payload.search.algorithm = "random";
    payload.search.sample_budget = 24;
    payload.search.seed = 11;
    payload.search.early_stop_patience = 0;
    payload.global_batch = 32;
    c.request.payload = std::move(payload);
    cases.push_back(std::move(c));
  }
  {
    // A batch sharing the queue with singles: items must match sequential.
    Case c;
    c.request.id = next_id++;
    BatchPredictPayload payload;
    payload.model = TinyGpt();
    payload.configs = SweepConfigs();
    c.request.payload = std::move(payload);
    cases.push_back(std::move(c));
  }
  for (Case& c : cases) {
    c.expected = reference->Execute(c.request);
    ASSERT_TRUE(c.expected.ok) << c.expected.error;
  }

  // Issue everything concurrently from client threads, twice, so both cold
  // and warm cache paths run under contention.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::future<ServiceResponse>> futures(cases.size());
    std::vector<std::thread> clients;
    clients.reserve(cases.size());
    for (size_t i = 0; i < cases.size(); ++i) {
      clients.emplace_back([&, i] { futures[i] = engine->Submit(cases[i].request); });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    for (size_t i = 0; i < cases.size(); ++i) {
      const ServiceResponse response = futures[i].get();
      const ServiceResponse& expected = cases[i].expected;
      ASSERT_TRUE(response.ok) << response.error;
      // Per-request isolation: the response is for this id and kind.
      EXPECT_EQ(response.id, cases[i].request.id);
      EXPECT_EQ(response.kind, cases[i].request.kind());
      if (response.kind == ServiceRequestKind::kPredict) {
        EXPECT_EQ(response.iteration_time_us, expected.iteration_time_us)
            << "request " << i << " round " << round;
        EXPECT_EQ(response.mfu, expected.mfu);
      } else if (response.kind == ServiceRequestKind::kBatchPredict) {
        ASSERT_EQ(response.batch.size(), expected.batch.size());
        for (size_t j = 0; j < response.batch.size(); ++j) {
          EXPECT_EQ(response.batch[j].iteration_time_us,
                    expected.batch[j].iteration_time_us)
              << "item " << j << " round " << round;
          EXPECT_EQ(response.batch[j].mfu, expected.batch[j].mfu);
        }
      } else {
        EXPECT_EQ(response.best_mfu, expected.best_mfu) << "round " << round;
        EXPECT_EQ(response.best_iteration_us, expected.best_iteration_us);
        EXPECT_EQ(response.samples, expected.samples);
      }
    }
  }
  const ServiceStats stats = engine->stats();
  EXPECT_EQ(stats.completed, 2 * cases.size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ServiceTest, WeightedAdmissionControl) {
  // Deterministic paused-queue admission: weights, not counts, fill the
  // queue. Bound 4 with predict=1/search=16: predicts fill to the bound,
  // a search never fits behind them — but a search on an idle queue is
  // admitted (otherwise a small bound could never serve one).
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.max_queue_weight = 4.0;
  options.start_paused = true;
  auto engine = MakeEngine(options);

  ServiceRequest search;
  search.id = 100;
  SearchPayload search_payload;
  search_payload.model = TinyGpt();
  search.payload = std::move(search_payload);

  std::vector<std::future<ServiceResponse>> futures;
  for (uint64_t id = 1; id <= 4; ++id) {
    futures.push_back(engine->Submit(PredictRequest(id, BaseConfig())));
  }
  EXPECT_EQ(engine->stats().queued_weight, 4.0);
  // Weight 4 is at the bound: one more predict (4 + 1 > 4) is rejected...
  const ServiceResponse overflow = engine->Submit(PredictRequest(5, BaseConfig())).get();
  EXPECT_FALSE(overflow.ok);
  EXPECT_EQ(overflow.error_code, kErrQueueFull);
  // ...and a search (4 + 16 > 4) more so, with the weights in the message.
  const ServiceResponse rejected_search = engine->Submit(search).get();
  EXPECT_FALSE(rejected_search.ok);
  EXPECT_EQ(rejected_search.error_code, kErrQueueFull);
  EXPECT_NE(rejected_search.error.find("search"), std::string::npos);

  // A 3-config batch weighs 3 predicts: it cannot fit either.
  ServiceRequest batch;
  batch.id = 101;
  BatchPredictPayload batch_payload;
  batch_payload.model = TinyGpt();
  batch_payload.configs = {BaseConfig(), BaseConfig(), BaseConfig()};
  batch.payload = std::move(batch_payload);
  const ServiceResponse rejected_batch = engine->Submit(batch).get();
  EXPECT_FALSE(rejected_batch.ok);
  EXPECT_EQ(rejected_batch.error_code, kErrQueueFull);

  EXPECT_EQ(engine->stats().rejected, 3u);

  // Cancel two queued predicts (weight back to 2): a single predict
  // (2 + 1 <= 4) fits again.
  EXPECT_TRUE(engine->Cancel(1));
  EXPECT_TRUE(engine->Cancel(2));
  EXPECT_EQ(engine->stats().queued_weight, 2.0);
  std::future<ServiceResponse> refill = engine->Submit(PredictRequest(6, BaseConfig()));
  EXPECT_EQ(engine->stats().queued_weight, 3.0);

  engine->Resume();
  for (std::future<ServiceResponse>& future : futures) {
    const ServiceResponse response = future.get();
    if (response.ok) {
      EXPECT_FALSE(response.oom);
    } else {
      EXPECT_EQ(response.error_code, kErrCancelled);
    }
  }
  EXPECT_TRUE(refill.get().ok);
  EXPECT_EQ(engine->stats().queued_weight, 0.0);

  // An idle engine admits one over-weight request.
  ServiceEngineOptions idle_options;
  idle_options.worker_threads = 1;
  idle_options.max_queue_weight = 4.0;
  idle_options.start_paused = true;
  auto idle = MakeEngine(idle_options);
  ServiceRequest big_search;
  big_search.id = 1;
  SearchPayload big_payload;
  big_payload.model = TinyGpt();
  big_payload.search.algorithm = "random";
  big_payload.search.sample_budget = 8;
  big_payload.search.seed = 2;
  big_payload.search.early_stop_patience = 0;
  big_search.payload = std::move(big_payload);
  std::future<ServiceResponse> admitted = idle->Submit(big_search);
  EXPECT_EQ(idle->stats().queued_weight, 16.0);
  idle->Resume();
  EXPECT_TRUE(admitted.get().ok);
}

TEST_F(ServiceTest, QueueBoundRejectsAndCancelWorks) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.max_queue_weight = 2.0;
  options.start_paused = true;
  auto engine = MakeEngine(options);

  std::future<ServiceResponse> first = engine->Submit(PredictRequest(1, BaseConfig()));
  std::future<ServiceResponse> second = engine->Submit(PredictRequest(2, BaseConfig()));
  std::future<ServiceResponse> third = engine->Submit(PredictRequest(3, BaseConfig()));

  // Weight bound 2: the third submission is rejected immediately.
  const ServiceResponse rejected = third.get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error_code, kErrQueueFull);

  // Cancel one queued request through the protocol.
  ServiceRequest cancel;
  cancel.id = 4;
  cancel.payload = CancelPayload{2};
  const ServiceResponse cancel_ack = engine->Submit(cancel).get();
  ASSERT_TRUE(cancel_ack.ok);
  EXPECT_TRUE(cancel_ack.cancel_found);
  const ServiceResponse cancelled = second.get();
  EXPECT_FALSE(cancelled.ok);
  EXPECT_EQ(cancelled.error_code, kErrCancelled);

  // Cancelling an unknown id reports not-found.
  cancel.id = 5;
  cancel.payload = CancelPayload{999};
  EXPECT_FALSE(engine->Submit(cancel).get().cancel_found);

  engine->Resume();
  const ServiceResponse completed = first.get();
  EXPECT_TRUE(completed.ok) << completed.error;
  const ServiceStats stats = engine->stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST_F(ServiceTest, ExpiredDeadlineNeverExecutes) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.start_paused = true;
  auto engine = MakeEngine(options);

  ServiceRequest request = PredictRequest(1, BaseConfig());
  request.deadline_ms = 1.0;
  std::future<ServiceResponse> future = engine->Submit(request);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine->Resume();
  const ServiceResponse response = future.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, kErrDeadlineExceeded);
  EXPECT_EQ(engine->stats().deadline_expired, 1u);
}

// ---- Health ----------------------------------------------------------------

// `health` answers synchronously without a queue slot: a paused engine with
// queued work still responds immediately, and the snapshot reflects the
// queue depth and readiness transitions.
TEST_F(ServiceTest, HealthAnswersSynchronouslyEvenWhenQueueIsPaused) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.start_paused = true;
  auto engine = MakeEngine(options);

  std::future<ServiceResponse> first = engine->Submit(PredictRequest(1, BaseConfig()));
  std::future<ServiceResponse> second = engine->Submit(PredictRequest(2, BaseConfig()));

  ServiceRequest probe;
  probe.id = 3;
  probe.payload = HealthPayload{};
  std::future<ServiceResponse> health_future = engine->Submit(probe);
  // Workers are paused, so only a synchronous answer can resolve this.
  ASSERT_EQ(health_future.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  const ServiceResponse health = health_future.get();
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_TRUE(health.health.live);
  EXPECT_TRUE(health.health.ready);
  EXPECT_FALSE(health.health.draining);
  EXPECT_FALSE(health.health.journal_enabled);
  EXPECT_EQ(health.health.queue_depth, 2u);

  // Readiness is a transport-controlled flag, independent of liveness.
  engine->SetReady(false);
  EXPECT_FALSE(engine->Health().ready);
  EXPECT_TRUE(engine->Health().live);
  engine->SetReady(true);

  engine->Resume();
  EXPECT_TRUE(first.get().ok);
  EXPECT_TRUE(second.get().ok);

  engine->Shutdown();
  EXPECT_TRUE(engine->Health().draining);
  EXPECT_FALSE(engine->Health().ready);
}

// ---- Executing-request governance ------------------------------------------

std::string CacheSig(const ShardedCacheStats& stats) {
  return std::to_string(stats.hits) + "/" + std::to_string(stats.misses) + "/" +
         std::to_string(stats.insertions) + "/" + std::to_string(stats.evictions) + "/" +
         std::to_string(stats.entries);
}

// One string capturing every counter of all four cache layers of every
// resident deployment — byte-compared to prove a governed request published
// nothing anywhere.
std::string AllCacheSig(const ServiceEngine& engine) {
  std::string sig;
  for (const DeploymentStats& deployment : engine.stats().per_deployment) {
    sig += deployment.name + ":" + CacheSig(deployment.kernel_cache) + "|" +
           CacheSig(deployment.collective_cache) + "|" + CacheSig(deployment.trace_cache) +
           "|" + CacheSig(deployment.sim_cache) + "\n";
  }
  return sig;
}

ServiceRequest LongSearchRequest(uint64_t id) {
  ServiceRequest request;
  request.id = id;
  SearchPayload payload;
  payload.model = TinyGpt();
  payload.search.algorithm = "random";
  payload.search.sample_budget = 20000;
  payload.search.seed = 3;
  payload.search.early_stop_patience = 0;
  payload.global_batch = 32;
  request.payload = std::move(payload);
  return request;
}

// Deterministic acceptance variant: a search entered with an already-expired
// deadline (or pre-cancelled token) must answer the typed error at the first
// stage checkpoint and leave every cache layer byte-identical to never
// having run.
TEST_F(ServiceTest, GovernedSearchPublishesNothingToAnyCacheLayer) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.pipeline.enable_trace_cache = true;  // all three layers armed
  auto engine = MakeEngine(options);

  // Warm the caches so the comparison is against a non-trivial baseline.
  ASSERT_TRUE(engine->Execute(PredictRequest(1, BaseConfig())).ok);
  const std::string baseline = AllCacheSig(*engine);
  ASSERT_FALSE(baseline.empty());

  CancelToken expired;
  expired.ArmDeadline(std::chrono::steady_clock::now() - std::chrono::seconds(1));
  const ServiceResponse timed_out = engine->Execute(LongSearchRequest(2), &expired);
  EXPECT_FALSE(timed_out.ok);
  EXPECT_EQ(timed_out.error_code, kErrDeadlineExceeded);
  EXPECT_EQ(AllCacheSig(*engine), baseline);

  CancelToken cancelled;
  cancelled.Cancel();
  const ServiceResponse aborted = engine->Execute(LongSearchRequest(3), &cancelled);
  EXPECT_FALSE(aborted.ok);
  EXPECT_EQ(aborted.error_code, kErrCancelled);
  EXPECT_EQ(AllCacheSig(*engine), baseline);

  // The same predict still answers — and bit-identically — afterwards.
  const ServiceResponse again = engine->Execute(PredictRequest(4, BaseConfig()));
  ASSERT_TRUE(again.ok);
}

// An EXECUTING search whose deadline expires mid-flight is interrupted at a
// stage checkpoint: the worker is released within bounded time, the response
// is typed DEADLINE_EXCEEDED, and the engine keeps serving.
TEST_F(ServiceTest, ExecutingSearchInterruptedByDeadline) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  // Disable every cache so repeated trials cannot finish the budget early.
  options.pipeline.enable_estimate_cache = false;
  options.pipeline.enable_sim_cache = false;
  auto engine = MakeEngine(options);

  ServiceRequest search = LongSearchRequest(1);
  search.deadline_ms = 250.0;
  std::future<ServiceResponse> future = engine->Submit(search);
  // A 20000-trial search takes far longer than 250ms; the deadline must
  // interrupt it while executing, well before the search could finish.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)), std::future_status::ready);
  const ServiceResponse response = future.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, kErrDeadlineExceeded);

  const ServiceStats stats = engine->stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  ASSERT_FALSE(stats.per_deployment.empty());
  EXPECT_EQ(stats.per_deployment[0].deadline_expired, 1u);

  // The released worker immediately serves the next request.
  EXPECT_TRUE(engine->Submit(PredictRequest(2, BaseConfig())).get().ok);
}

// An EXECUTING search is interrupted by a protocol `cancel`: the cancel must
// find the request after it left the queue, and the typed CANCELLED response
// must resolve promptly.
TEST_F(ServiceTest, ExecutingSearchInterruptedByCancel) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.pipeline.enable_estimate_cache = false;
  options.pipeline.enable_sim_cache = false;
  auto engine = MakeEngine(options);

  std::future<ServiceResponse> future = engine->Submit(LongSearchRequest(1));
  // Wait for the request to leave the queue (it is then executing).
  while (engine->stats().queue_depth != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // There is a small window between dequeue and executing-registration;
  // retry the cancel until it lands.
  bool cancel_found = false;
  for (int attempt = 0; attempt < 1000 && !cancel_found; ++attempt) {
    ServiceRequest cancel;
    cancel.id = 100 + static_cast<uint64_t>(attempt);
    cancel.payload = CancelPayload{1};
    const ServiceResponse ack = engine->Submit(cancel).get();
    ASSERT_TRUE(ack.ok);
    cancel_found = ack.cancel_found;
    if (!cancel_found) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(cancel_found);

  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)), std::future_status::ready);
  const ServiceResponse response = future.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, kErrCancelled);

  const ServiceStats stats = engine->stats();
  EXPECT_EQ(stats.cancelled, 1u);
  ASSERT_FALSE(stats.per_deployment.empty());
  EXPECT_EQ(stats.per_deployment[0].cancelled, 1u);

  // Worker released: the engine still serves.
  EXPECT_TRUE(engine->Submit(PredictRequest(2, BaseConfig())).get().ok);
}

TEST_F(ServiceTest, ShutdownDrainsQueueAndRejectsNewWork) {
  ServiceEngineOptions options;
  options.worker_threads = 2;
  options.start_paused = true;
  auto engine = MakeEngine(options);
  std::future<ServiceResponse> queued = engine->Submit(PredictRequest(1, BaseConfig()));
  engine->Shutdown();  // drains the paused queue before joining
  EXPECT_TRUE(queued.get().ok);
  const ServiceResponse refused = engine->Submit(PredictRequest(2, BaseConfig())).get();
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error_code, kErrShuttingDown);
}

// ---- Fault isolation: hostile payloads --------------------------------------

// Every request-reachable validation failure must answer a typed error and
// leave the engine serving — a poisoned request fails only that request.
TEST_F(ServiceTest, HostilePayloadSweepAnswersTypedErrorsAndKeepsServing) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);

  const auto expect_invalid = [&](Result<ServiceResponse> response, const char* what) {
    ASSERT_TRUE(response.ok()) << what << ": " << response.status().ToString();
    EXPECT_FALSE(response->ok) << what;
    EXPECT_EQ(response->error_code, kErrInvalidRequest) << what << ": " << response->error;
  };

  // Hostile models: indivisible heads, zero layers, zero vocab.
  ModelConfig bad_heads = TinyGpt();
  bad_heads.hidden_size = 1000;  // not divisible by 16 heads
  expect_invalid(client.Predict(bad_heads, BaseConfig()), "indivisible heads");
  ModelConfig no_layers = TinyGpt();
  no_layers.num_layers = 0;
  expect_invalid(client.Predict(no_layers, BaseConfig()), "zero layers");
  ModelConfig no_vocab = TinyGpt();
  no_vocab.vocab_size = 0;
  expect_invalid(client.CheckOom(no_vocab, BaseConfig()), "zero vocab whatif");

  // Hostile train configs: zero parallelism, negative batch.
  TrainConfig zero_tp = BaseConfig();
  zero_tp.tensor_parallel = 0;
  expect_invalid(client.Predict(TinyGpt(), zero_tp), "zero tensor parallel");
  TrainConfig negative_batch = BaseConfig();
  negative_batch.global_batch_size = -4;
  expect_invalid(client.Predict(TinyGpt(), negative_batch), "negative batch");

  // A poisoned item mid-batch fails the batch with a typed error naming the
  // item — not the server.
  std::vector<TrainConfig> batch = {BaseConfig(), zero_tp, BaseConfig()};
  Result<ServiceResponse> poisoned = client.BatchPredict(TinyGpt(), batch);
  ASSERT_TRUE(poisoned.ok());
  EXPECT_FALSE(poisoned->ok);
  EXPECT_EQ(poisoned->error_code, kErrInvalidRequest);
  EXPECT_NE(poisoned->error.find("batch item 1"), std::string::npos) << poisoned->error;

  // Unknown search algorithm and hostile search model.
  SearchOptions unknown_algorithm;
  unknown_algorithm.algorithm = "simulated-annealing";
  unknown_algorithm.sample_budget = 4;
  expect_invalid(client.Search(TinyGpt(), unknown_algorithm), "unknown algorithm");

  // Unknown deployment target.
  expect_invalid(client.Predict(TinyGpt(), BaseConfig(), "tpu-v9"), "unknown deployment");

  // Wire-level garbage never reaches the engine: the transport answers with
  // the same INVALID_REQUEST failure response the stdio loop and the TCP
  // server produce, not a transport error and not a crash.
  for (const char* garbage :
       {"this is not json", R"({"id": "forty-two", "kind": "predict"})",
        R"({"kind": "predict"})"}) {
    Result<std::string> line = transport.RoundTrip(garbage);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    Result<ServiceResponse> failure = ParseServiceResponse(*line);
    ASSERT_TRUE(failure.ok()) << failure.status().ToString();
    EXPECT_FALSE(failure->ok);
    EXPECT_EQ(failure->error_code, kErrInvalidRequest) << *line;
  }

  // The engine survived the sweep: a well-formed predict still answers, and
  // the admission counters reconcile.
  Result<ServiceResponse> good = client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->ok) << good->error;
  const ServiceStats stats = engine->stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected + stats.cancelled +
                                 stats.deadline_expired);
}

// ---- Drain ------------------------------------------------------------------

TEST_F(ServiceTest, DrainCompletesBacklogThenRejectsNewCompute) {
  ServiceEngineOptions options;
  options.worker_threads = 2;
  options.start_paused = true;  // build a backlog before any work starts
  auto engine = MakeEngine(options);

  std::vector<std::future<ServiceResponse>> backlog;
  for (uint64_t id = 1; id <= 4; ++id) {
    backlog.push_back(engine->Submit(PredictRequest(id, BaseConfig())));
  }

  // Drain unpauses, waits for the backlog (queued AND in-flight) to finish,
  // and only then returns.
  engine->Drain();
  for (std::future<ServiceResponse>& future : backlog) {
    const ServiceResponse response = future.get();
    EXPECT_TRUE(response.ok) << response.error;
  }

  // New compute is refused with the draining message; the control plane
  // (stats) still answers, so an operator can watch the drain complete.
  const ServiceResponse refused = engine->Submit(PredictRequest(9, BaseConfig())).get();
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error_code, kErrShuttingDown);
  EXPECT_NE(refused.error.find("draining"), std::string::npos) << refused.error;

  ServiceRequest stats_request;
  stats_request.id = 10;
  stats_request.payload = StatsPayload{};
  const ServiceResponse stats_response = engine->Submit(std::move(stats_request)).get();
  ASSERT_TRUE(stats_response.ok);
  EXPECT_EQ(stats_response.stats.queue_depth, 0u);

  // Post-drain reconciliation on the quiesced engine: every submission is
  // accounted for exactly once.
  const ServiceStats stats = engine->stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected + stats.cancelled +
                                 stats.deadline_expired);
  engine->Shutdown();
}

// ---- Client retry -----------------------------------------------------------

// Fails the first `failures` round-trips at the transport layer, then
// delegates to the wrapped transport.
class FlakyTransport final : public LineTransport {
 public:
  FlakyTransport(LineTransport* wrapped, int failures)
      : wrapped_(wrapped), failures_(failures) {}

  Result<std::string> RoundTrip(const std::string& line) override {
    ++calls_;
    if (calls_ <= failures_) {
      return Status::Internal("connection reset by peer");
    }
    return wrapped_->RoundTrip(line);
  }

  int calls() const { return calls_; }

 private:
  LineTransport* wrapped_;
  int failures_;
  int calls_ = 0;
};

// Answers the first `rejections` round-trips with a typed QUEUE_FULL
// response, then delegates.
class SheddingTransport final : public LineTransport {
 public:
  SheddingTransport(LineTransport* wrapped, int rejections)
      : wrapped_(wrapped), rejections_(rejections) {}

  Result<std::string> RoundTrip(const std::string& line) override {
    ++calls_;
    if (calls_ <= rejections_) {
      Result<ServiceRequest> request = ParseServiceRequest(line);
      if (!request.ok()) {
        return request.status();
      }
      ServiceResponse response;
      response.id = request->id;
      response.kind = request->kind();
      response.ok = false;
      response.error_code = kErrQueueFull;
      response.error = "queued weight 8.0 + 1.0 (predict) exceeds bound 8.0";
      return SerializeServiceResponse(response);
    }
    return wrapped_->RoundTrip(line);
  }

  int calls() const { return calls_; }

 private:
  LineTransport* wrapped_;
  int rejections_;
  int calls_ = 0;
};

TEST_F(ServiceTest, RetryPolicyOutwaitsTransportFailures) {
  auto engine = MakeEngine();
  InProcessTransport inner(engine.get());
  FlakyTransport flaky(&inner, 2);

  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.seed = 99;
  std::vector<double> slept;
  retry.sleeper = [&slept](double delay_ms) { slept.push_back(delay_ms); };
  ServiceClient client(&flaky, retry);

  ServiceRequest request = PredictRequest(77, BaseConfig());
  Result<ServiceResponse> response = client.Call(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->ok) << response->error;
  EXPECT_EQ(flaky.calls(), 3);  // two failures + the success
  // Every sleep is the deterministic schedule the client advertises.
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_DOUBLE_EQ(slept[0], client.BackoffMs(77, 1));
  EXPECT_DOUBLE_EQ(slept[1], client.BackoffMs(77, 2));
}

TEST_F(ServiceTest, RetryPolicyOutwaitsQueueFullButNeverTypedServerErrors) {
  auto engine = MakeEngine();
  InProcessTransport inner(engine.get());

  // QUEUE_FULL is transient: two rejections, then the engine admits.
  SheddingTransport shedding(&inner, 2);
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.sleeper = [](double) {};
  ServiceClient client(&shedding, retry);
  Result<ServiceResponse> admitted = client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_TRUE(admitted->ok) << admitted->error;
  EXPECT_EQ(shedding.calls(), 3);

  // Exhausted attempts return the typed QUEUE_FULL answer, not a bare status.
  SheddingTransport always_full(&inner, 1000);
  ServiceClient exhausted_client(&always_full, retry);
  Result<ServiceResponse> exhausted = exhausted_client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(exhausted.ok()) << exhausted.status().ToString();
  EXPECT_FALSE(exhausted->ok);
  EXPECT_EQ(exhausted->error_code, kErrQueueFull);
  EXPECT_EQ(always_full.calls(), 4);

  // A typed INVALID_REQUEST is never retried: one round trip, typed answer.
  SheddingTransport counting(&inner, 0);
  ServiceClient invalid_client(&counting, retry);
  TrainConfig poisoned = BaseConfig();
  poisoned.tensor_parallel = 0;
  Result<ServiceResponse> invalid = invalid_client.Predict(TinyGpt(), poisoned);
  ASSERT_TRUE(invalid.ok());
  EXPECT_FALSE(invalid->ok);
  EXPECT_EQ(invalid->error_code, kErrInvalidRequest);
  EXPECT_EQ(counting.calls(), 1);

  // The default client (no policy) never retries QUEUE_FULL either.
  SheddingTransport default_full(&inner, 1000);
  ServiceClient default_client(&default_full);
  Result<ServiceResponse> shed = default_client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->error_code, kErrQueueFull);
  EXPECT_EQ(default_full.calls(), 1);
}

TEST_F(ServiceTest, BackoffIsExponentialCappedAndDeterministicallyJittered) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  RetryPolicy retry;
  retry.base_backoff_ms = 10.0;
  retry.max_backoff_ms = 80.0;
  retry.seed = 5;
  ServiceClient client(&transport, retry);

  std::vector<double> id1;
  std::vector<double> id2;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double nominal = std::min(10.0 * (1 << (attempt - 1)), 80.0);
    const double delay = client.BackoffMs(1, attempt);
    // Full jitter keeps the delay in [0.5, 1.0) x nominal.
    EXPECT_GE(delay, 0.5 * nominal) << attempt;
    EXPECT_LT(delay, nominal) << attempt;
    // Pure function of (seed, id, attempt).
    EXPECT_DOUBLE_EQ(delay, client.BackoffMs(1, attempt));
    id1.push_back(delay);
    id2.push_back(client.BackoffMs(2, attempt));
  }
  // Two clients retrying the same outage spread out: different ids jitter
  // differently.
  EXPECT_NE(id1, id2);
}

// ---- Artifact warm start ----------------------------------------------------

TEST_F(ServiceTest, WarmStartBitIdenticalWithHighHitRate) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "service_warm_bundle").string();
  std::filesystem::remove_all(dir);

  // Process 1: train (shared fixture bank), serve a sweep, save the v2
  // bundle. The engine owns its own bank here so the registry save path
  // (estimators + caches) is exercised end to end.
  GroundTruthExecutor profiling(*cluster_, 7);  // same seed as the fixture
  auto original = *ServiceEngine::Create(
      *cluster_, TrainEstimators(*cluster_, profiling, TestSweep()), ServiceEngineOptions{});
  InProcessTransport original_transport(original.get());
  ServiceClient original_client(&original_transport);
  std::vector<ServiceResponse> original_responses;
  for (const TrainConfig& config : SweepConfigs()) {
    Result<ServiceResponse> response = original_client.Predict(TinyGpt(), config);
    ASSERT_TRUE(response.ok() && response->ok);
    original_responses.push_back(*response);
  }
  ArtifactStore store(dir);
  ASSERT_TRUE(store.SaveRegistry(original->registry()).ok());
  original->Shutdown();

  // Process 2 (simulated): restart from the bundle — no re-training — and
  // answer the same sweep.
  Result<std::unique_ptr<ServiceEngine>> restarted =
      ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{});
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  InProcessTransport transport(restarted->get());
  ServiceClient client(&transport);

  uint64_t hits = 0;
  uint64_t misses = 0;
  const std::vector<TrainConfig> configs = SweepConfigs();
  for (size_t i = 0; i < configs.size(); ++i) {
    Result<ServiceResponse> response = client.Predict(TinyGpt(), configs[i]);
    ASSERT_TRUE(response.ok() && response->ok);
    // Bit-identical to the original process's answers.
    EXPECT_EQ(response->iteration_time_us, original_responses[i].iteration_time_us)
        << "config " << i;
    EXPECT_EQ(response->mfu, original_responses[i].mfu) << "config " << i;
    hits += response->estimation.cache_hits;
    misses += response->estimation.cache_misses;
  }
  // The acceptance bar: a warm-started server answers a repeated sweep with
  // >= 90% estimate-cache hit rate (in fact 100%: every unique key was
  // bundled).
  ASSERT_GT(hits, 0u);
  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(hits + misses);
  EXPECT_GE(hit_rate, 0.9);
  EXPECT_EQ(misses, 0u);
}

}  // namespace
}  // namespace maya
