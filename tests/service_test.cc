// ServiceEngine / protocol / warm-start tests: NDJSON round-trips, concurrent
// mixed workloads with per-request isolation, deadlines, cancellation, queue
// backpressure, what-if requests, and artifact-bundle warm starts with
// >= 90% estimate-cache hit rate and bit-identical predictions.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "src/dlf/worker_launcher.h"
#include "src/service/artifact_store.h"
#include "src/service/service_client.h"
#include "src/service/service_engine.h"
#include "src/sim/simulator.h"
#include "src/trace/collator.h"
#include "src/trace/serialization.h"

namespace maya {
namespace {

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig BaseConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

// One trained bank per test binary; engines borrow it.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 7);
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, sweep));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  static std::unique_ptr<ServiceEngine> MakeEngine(ServiceEngineOptions options = {}) {
    return std::make_unique<ServiceEngine>(*cluster_, bank_->kernel.get(),
                                           bank_->collective.get(), options);
  }

  // The configuration sweep used by the warm-start and concurrency tests.
  static std::vector<TrainConfig> SweepConfigs() {
    std::vector<TrainConfig> configs;
    for (int tp : {1, 2}) {
      for (int pp : {1, 2}) {
        TrainConfig config = BaseConfig();
        config.tensor_parallel = tp;
        config.pipeline_parallel = pp;
        configs.push_back(config);
      }
    }
    return configs;
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
};

ClusterSpec* ServiceTest::cluster_ = nullptr;
GroundTruthExecutor* ServiceTest::executor_ = nullptr;
EstimatorBank* ServiceTest::bank_ = nullptr;

// ---- Protocol round-trips ---------------------------------------------------

TEST(ServiceProtocolTest, PredictRequestRoundTrip) {
  ServiceRequest request;
  request.id = 42;
  request.kind = ServiceRequestKind::kPredict;
  request.deadline_ms = 1500.0;
  request.model = TinyGpt();
  request.config = BaseConfig();
  request.selective_launch = true;
  const std::string line = SerializeServiceRequest(request);
  Result<ServiceRequest> parsed = ParseServiceRequest(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, 42u);
  EXPECT_EQ(parsed->kind, ServiceRequestKind::kPredict);
  EXPECT_EQ(parsed->deadline_ms, 1500.0);
  EXPECT_EQ(parsed->model.name, "tiny-gpt");
  EXPECT_EQ(parsed->model.hidden_size, 1024);
  EXPECT_EQ(parsed->config.tensor_parallel, 2);
  EXPECT_TRUE(parsed->selective_launch);
  // Serialize(parse(line)) is the fixed point.
  EXPECT_EQ(SerializeServiceRequest(*parsed), line);
}

TEST(ServiceProtocolTest, SearchAndCancelRequestRoundTrip) {
  ServiceRequest search;
  search.id = 7;
  search.kind = ServiceRequestKind::kSearch;
  search.model = TinyGpt();
  search.search.algorithm = "random";
  search.search.sample_budget = 64;
  search.search.seed = 5;
  search.global_batch = 32;
  Result<ServiceRequest> parsed = ParseServiceRequest(SerializeServiceRequest(search));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->search.algorithm, "random");
  EXPECT_EQ(parsed->search.sample_budget, 64);
  EXPECT_EQ(parsed->search.seed, 5u);
  EXPECT_EQ(parsed->global_batch, 32);

  ServiceRequest cancel;
  cancel.id = 8;
  cancel.kind = ServiceRequestKind::kCancel;
  cancel.target_id = 7;
  Result<ServiceRequest> parsed_cancel = ParseServiceRequest(SerializeServiceRequest(cancel));
  ASSERT_TRUE(parsed_cancel.ok());
  EXPECT_EQ(parsed_cancel->target_id, 7u);
}

TEST(ServiceProtocolTest, MalformedRequestsRejected) {
  EXPECT_FALSE(ParseServiceRequest("not json").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1})").ok());              // no kind
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1,"kind":"nope"})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1,"kind":"predict"})").ok());  // no payload
}

TEST(ServiceProtocolTest, WrongTypedFieldsRejectedNotAborted) {
  // Typed JSON accessors CHECK-abort; the wire parsers must return errors
  // instead so one malformed client request cannot kill the server.
  EXPECT_FALSE(ParseServiceRequest(R"({"id":"x","kind":"stats"})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":-1,"kind":"stats"})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1,"kind":true})").ok());
  EXPECT_FALSE(ParseServiceRequest(
                   R"({"id":1,"kind":"predict","model":{"name":42,"family":"GPT"},"config":{}})")
                   .ok());
  EXPECT_FALSE(
      ParseServiceRequest(
          R"({"id":1,"kind":"predict","model":{"name":"m","family":"GPT","num_layers":"8"},"config":{}})")
          .ok());
  EXPECT_FALSE(
      ParseServiceRequest(
          R"({"id":1,"kind":"predict","model":{"name":"m","family":"GPT"},"config":{"sequence_parallel":3}})")
          .ok());
  EXPECT_FALSE(
      ParseServiceRequest(R"({"id":1,"kind":"stats","deadline_ms":"soon"})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":1,"kind":"cancel","target_id":"x"})").ok());
}

TEST(ServiceProtocolTest, ErrorResponseRoundTrip) {
  ServiceResponse error;
  error.id = 3;
  error.kind = ServiceRequestKind::kSearch;
  error.ok = false;
  error.error = "queue depth 64 at bound 64";
  error.error_code = kErrQueueFull;
  Result<ServiceResponse> parsed = ParseServiceResponse(SerializeServiceResponse(error));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->error_code, kErrQueueFull);
  EXPECT_EQ(parsed->error, error.error);
}

TEST(ServiceProtocolTest, ClusterNames) {
  Result<ClusterSpec> h100 = ClusterSpecByName("h100x32");
  ASSERT_TRUE(h100.ok());
  EXPECT_EQ(h100->total_gpus(), 32);
  EXPECT_EQ(h100->gpu.arch, GpuArch::kH100);
  Result<ClusterSpec> v100 = ClusterSpecByName("v100x16");
  ASSERT_TRUE(v100.ok());
  EXPECT_EQ(v100->gpu.arch, GpuArch::kV100);
  EXPECT_TRUE(ClusterSpecByName("a40").ok());
  EXPECT_FALSE(ClusterSpecByName("tpu").ok());
  EXPECT_FALSE(ClusterSpecByName("h100x").ok());
  EXPECT_FALSE(ClusterSpecByName("h100x-8").ok());
}

// ---- Engine behaviour -------------------------------------------------------

TEST_F(ServiceTest, PredictMatchesDirectPipeline) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  Result<ServiceResponse> response = client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok) << response->error;
  ASSERT_FALSE(response->oom);

  PredictionRequest direct;
  direct.model = TinyGpt();
  direct.config = BaseConfig();
  const Result<PredictionReport> report = engine->pipeline().Predict(direct);
  ASSERT_TRUE(report.ok());
  // Bit-identical through the wire: responses carry hex-encoded doubles.
  EXPECT_EQ(response->iteration_time_us, report->iteration_time_us);
  EXPECT_EQ(response->mfu, report->mfu);
  EXPECT_GT(response->estimation.kernel_ops, 0u);
}

TEST_F(ServiceTest, StatsSurfaceStageTimings) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  Result<ServiceResponse> predict = client.Predict(TinyGpt(), BaseConfig());
  ASSERT_TRUE(predict.ok());
  ASSERT_TRUE(predict->ok) << predict->error;

  // Per-stage wall time accumulates across executed requests and survives
  // the NDJSON wire format — dedup/parallel-emulation wins are observable
  // from a live maya_serve.
  ServiceRequest request;
  request.kind = ServiceRequestKind::kStats;
  request.id = 2;
  Result<ServiceRequest> wire = ParseServiceRequest(SerializeServiceRequest(request));
  ASSERT_TRUE(wire.ok());
  const ServiceResponse direct = engine->Execute(*wire);
  Result<ServiceResponse> stats = ParseServiceResponse(SerializeServiceResponse(direct));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->stats.timed_requests, 1u);
  EXPECT_GT(stats->stats.stage_totals.emulation_ms, 0.0);
  EXPECT_GT(stats->stats.stage_totals.estimation_ms, 0.0);
  EXPECT_GT(stats->stats.stage_totals.simulation_ms, 0.0);
  // Timings travel as approximate decimals (%.9g), unlike result doubles.
  EXPECT_NEAR(stats->stats.stage_totals.total_ms(), direct.stats.stage_totals.total_ms(),
              direct.stats.stage_totals.total_ms() * 1e-6);
}

TEST_F(ServiceTest, WhatIfOomReportsVerdict) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);

  Result<ServiceResponse> fits = client.CheckOom(TinyGpt(), BaseConfig());
  ASSERT_TRUE(fits.ok());
  ASSERT_TRUE(fits->ok);
  EXPECT_FALSE(fits->oom);
  EXPECT_GT(fits->peak_memory_bytes, 0u);

  ModelConfig heavy = TinyGpt();
  heavy.seq_length = 8192;
  TrainConfig config = BaseConfig();
  config.microbatch_multiplier = 1;
  Result<ServiceResponse> blown = client.CheckOom(heavy, config);
  ASSERT_TRUE(blown.ok());
  ASSERT_TRUE(blown->ok);
  EXPECT_TRUE(blown->oom);
  EXPECT_FALSE(blown->oom_detail.empty());
}

TEST_F(ServiceTest, WhatIfClusterSharesEstimators) {
  auto engine = MakeEngine();
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);
  TrainConfig config = BaseConfig();
  config.global_batch_size = 64;  // divisible across 16 GPUs
  Result<ServiceResponse> response = client.PredictOnCluster(TinyGpt(), config, "h100x16");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok) << response->error;
  ASSERT_FALSE(response->oom);

  // Reference: a pipeline over the same estimators on the target cluster.
  const ClusterSpec target = H100Cluster(16);
  MayaPipeline reference(target, bank_->kernel.get(), bank_->collective.get());
  PredictionRequest direct;
  direct.model = TinyGpt();
  direct.config = config;
  const Result<PredictionReport> report = reference.Predict(direct);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(response->iteration_time_us, report->iteration_time_us);

  // Cross-arch what-ifs are refused: V100 forests were never trained here.
  Result<ServiceResponse> cross = client.PredictOnCluster(TinyGpt(), config, "v100x8");
  ASSERT_TRUE(cross.ok());
  EXPECT_FALSE(cross->ok);
  EXPECT_EQ(cross->error_code, kErrInvalidRequest);
}

TEST_F(ServiceTest, TracePredictSkipsEmulation) {
  auto engine = MakeEngine();
  // Build a collated trace out-of-band (a client with its own emulator).
  Result<LaunchResult> launched = EmulateJob(TinyGpt(), BaseConfig(), *cluster_);
  ASSERT_TRUE(launched.ok());
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  ASSERT_TRUE(job.ok());

  ServiceRequest request;
  request.kind = ServiceRequestKind::kTracePredict;
  request.id = 77;
  request.trace = *job;
  // Exercise the full wire path: the trace payload round-trips as NDJSON.
  Result<ServiceRequest> wire = ParseServiceRequest(SerializeServiceRequest(request));
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ServiceResponse response = engine->Submit(*std::move(wire)).get();
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.timings.emulation_ms, 0.0);

  // Reference: annotate + simulate the same wire-format trace directly (the
  // trace JSON carries decimal doubles, so the reference must consume the
  // identical round-tripped payload for a bit-exact comparison).
  Result<JobTrace> round_tripped = ParseJobTrace(SerializeJobTrace(*job));
  ASSERT_TRUE(round_tripped.ok());
  JobTrace reference = *std::move(round_tripped);
  engine->pipeline().AnnotateDurations(reference, nullptr);
  Simulator simulator(reference, *cluster_, SimOptions{});
  Result<SimReport> sim = simulator.Run();
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(response.iteration_time_us, sim->total_time_us);
}

TEST_F(ServiceTest, ConcurrentMixedWorkloadMatchesSequential) {
  ServiceEngineOptions options;
  options.worker_threads = 4;
  auto engine = MakeEngine(options);

  // Sequential reference for every request, on a second engine sharing the
  // same estimators (fresh caches: proves cold-concurrent == warm-sequential
  // via the bit-identical cache invariant).
  ServiceEngineOptions reference_options;
  reference_options.worker_threads = 1;
  auto reference = MakeEngine(reference_options);

  struct Case {
    ServiceRequest request;
    ServiceResponse expected;
  };
  std::vector<Case> cases;
  uint64_t next_id = 1;
  for (const TrainConfig& config : SweepConfigs()) {
    Case c;
    c.request.id = next_id++;
    c.request.kind = ServiceRequestKind::kPredict;
    c.request.model = TinyGpt();
    c.request.config = config;
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.request.id = next_id++;
    c.request.kind = ServiceRequestKind::kSearch;
    c.request.model = TinyGpt();
    c.request.search.algorithm = "random";
    c.request.search.sample_budget = 24;
    c.request.search.seed = 11;
    c.request.search.early_stop_patience = 0;
    c.request.global_batch = 32;
    cases.push_back(std::move(c));
  }
  for (Case& c : cases) {
    c.expected = reference->Execute(c.request);
    ASSERT_TRUE(c.expected.ok) << c.expected.error;
  }

  // Issue everything concurrently from client threads, twice, so both cold
  // and warm cache paths run under contention.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::future<ServiceResponse>> futures(cases.size());
    std::vector<std::thread> clients;
    clients.reserve(cases.size());
    for (size_t i = 0; i < cases.size(); ++i) {
      clients.emplace_back([&, i] { futures[i] = engine->Submit(cases[i].request); });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    for (size_t i = 0; i < cases.size(); ++i) {
      const ServiceResponse response = futures[i].get();
      const ServiceResponse& expected = cases[i].expected;
      ASSERT_TRUE(response.ok) << response.error;
      // Per-request isolation: the response is for this id and kind.
      EXPECT_EQ(response.id, cases[i].request.id);
      EXPECT_EQ(response.kind, cases[i].request.kind);
      if (response.kind == ServiceRequestKind::kPredict) {
        EXPECT_EQ(response.iteration_time_us, expected.iteration_time_us)
            << "request " << i << " round " << round;
        EXPECT_EQ(response.mfu, expected.mfu);
      } else {
        EXPECT_EQ(response.best_mfu, expected.best_mfu) << "round " << round;
        EXPECT_EQ(response.best_iteration_us, expected.best_iteration_us);
        EXPECT_EQ(response.samples, expected.samples);
      }
    }
  }
  const ServiceStats stats = engine->stats();
  EXPECT_EQ(stats.completed, 2 * cases.size());
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ServiceTest, QueueBoundRejectsAndCancelWorks) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 2;
  options.start_paused = true;
  auto engine = MakeEngine(options);

  ServiceRequest request;
  request.kind = ServiceRequestKind::kPredict;
  request.model = TinyGpt();
  request.config = BaseConfig();

  request.id = 1;
  std::future<ServiceResponse> first = engine->Submit(request);
  request.id = 2;
  std::future<ServiceResponse> second = engine->Submit(request);
  request.id = 3;
  std::future<ServiceResponse> third = engine->Submit(request);

  // Queue bound 2: the third submission is rejected immediately.
  const ServiceResponse rejected = third.get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error_code, kErrQueueFull);

  // Cancel one queued request through the protocol.
  ServiceRequest cancel;
  cancel.id = 4;
  cancel.kind = ServiceRequestKind::kCancel;
  cancel.target_id = 2;
  const ServiceResponse cancel_ack = engine->Submit(cancel).get();
  ASSERT_TRUE(cancel_ack.ok);
  EXPECT_TRUE(cancel_ack.cancel_found);
  const ServiceResponse cancelled = second.get();
  EXPECT_FALSE(cancelled.ok);
  EXPECT_EQ(cancelled.error_code, kErrCancelled);

  // Cancelling an unknown id reports not-found.
  cancel.id = 5;
  cancel.target_id = 999;
  EXPECT_FALSE(engine->Submit(cancel).get().cancel_found);

  engine->Resume();
  const ServiceResponse completed = first.get();
  EXPECT_TRUE(completed.ok) << completed.error;
  const ServiceStats stats = engine->stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST_F(ServiceTest, ExpiredDeadlineNeverExecutes) {
  ServiceEngineOptions options;
  options.worker_threads = 1;
  options.start_paused = true;
  auto engine = MakeEngine(options);

  ServiceRequest request;
  request.id = 1;
  request.kind = ServiceRequestKind::kPredict;
  request.model = TinyGpt();
  request.config = BaseConfig();
  request.deadline_ms = 1.0;
  std::future<ServiceResponse> future = engine->Submit(request);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine->Resume();
  const ServiceResponse response = future.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, kErrDeadlineExceeded);
  EXPECT_EQ(engine->stats().deadline_expired, 1u);
}

TEST_F(ServiceTest, ShutdownDrainsQueueAndRejectsNewWork) {
  ServiceEngineOptions options;
  options.worker_threads = 2;
  options.start_paused = true;
  auto engine = MakeEngine(options);
  ServiceRequest request;
  request.kind = ServiceRequestKind::kPredict;
  request.model = TinyGpt();
  request.config = BaseConfig();
  request.id = 1;
  std::future<ServiceResponse> queued = engine->Submit(request);
  engine->Shutdown();  // drains the paused queue before joining
  EXPECT_TRUE(queued.get().ok);
  request.id = 2;
  const ServiceResponse refused = engine->Submit(request).get();
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error_code, kErrShuttingDown);
}

// ---- Artifact warm start ----------------------------------------------------

TEST_F(ServiceTest, WarmStartBitIdenticalWithHighHitRate) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "service_warm_bundle").string();

  // Process 1: train (shared fixture bank), serve a sweep, save the bundle.
  // The engine owns its own bank here so the bundle save path (estimators +
  // caches) is exercised end to end.
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1200;
  sweep.conv_samples = 100;
  sweep.generic_samples = 60;
  sweep.collective_sizes = 12;
  GroundTruthExecutor profiling(*cluster_, 7);  // same seed as the fixture
  auto original = std::make_unique<ServiceEngine>(
      *cluster_, TrainEstimators(*cluster_, profiling, sweep), ServiceEngineOptions{});
  InProcessTransport original_transport(original.get());
  ServiceClient original_client(&original_transport);
  std::vector<ServiceResponse> original_responses;
  for (const TrainConfig& config : SweepConfigs()) {
    Result<ServiceResponse> response = original_client.Predict(TinyGpt(), config);
    ASSERT_TRUE(response.ok() && response->ok);
    original_responses.push_back(*response);
  }
  ArtifactStore store(dir);
  ASSERT_TRUE(store.Save(original->cluster(), original->bank(), original->pipeline()).ok());
  original->Shutdown();

  // Process 2 (simulated): restart from the bundle — no re-training — and
  // answer the same sweep.
  Result<std::unique_ptr<ServiceEngine>> restarted =
      ServiceEngine::FromArtifacts(*cluster_, store, ServiceEngineOptions{});
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  InProcessTransport transport(restarted->get());
  ServiceClient client(&transport);

  uint64_t hits = 0;
  uint64_t misses = 0;
  const std::vector<TrainConfig> configs = SweepConfigs();
  for (size_t i = 0; i < configs.size(); ++i) {
    Result<ServiceResponse> response = client.Predict(TinyGpt(), configs[i]);
    ASSERT_TRUE(response.ok() && response->ok);
    // Bit-identical to the original process's answers.
    EXPECT_EQ(response->iteration_time_us, original_responses[i].iteration_time_us)
        << "config " << i;
    EXPECT_EQ(response->mfu, original_responses[i].mfu) << "config " << i;
    hits += response->estimation.cache_hits;
    misses += response->estimation.cache_misses;
  }
  // The acceptance bar: a warm-started server answers a repeated sweep with
  // >= 90% estimate-cache hit rate (in fact 100%: every unique key was
  // bundled).
  ASSERT_GT(hits, 0u);
  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(hits + misses);
  EXPECT_GE(hit_rate, 0.9);
  EXPECT_EQ(misses, 0u);
}

}  // namespace
}  // namespace maya
