// Tests for the tracing + metrics layer (src/common/telemetry.h): metric
// primitives and Prometheus rendering, span recording and ring-buffer
// semantics, cross-thread context propagation (no cross-contamination under
// concurrency — run under TSan in CI), Chrome-trace export parseability, and
// slow-request accounting.
#include "src/common/telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json_parser.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"

namespace maya {
namespace {

// Telemetry and the registry are process-wide singletons; every test that
// arms them scopes the state so later tests start clean.
struct TelemetryGuard {
  explicit TelemetryGuard(Telemetry::Options options) {
    Telemetry::Instance().Configure(options);
  }
  ~TelemetryGuard() { Telemetry::Instance().Disable(); }
};

Telemetry::Options Tracing(size_t ring_capacity = 1 << 10) {
  Telemetry::Options options;
  options.tracing = true;
  options.ring_capacity = ring_capacity;
  return options;
}

// ---- Metric primitives ----------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.value(), 5u);

  Gauge gauge;
  gauge.Set(2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(MetricsTest, HistogramBucketsAreLogSpacedAndClassifyCorrectly) {
  // bound(i) = 2^((i+1)/2): two buckets per doubling.
  EXPECT_NEAR(LatencyHistogram::BucketBound(0), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(LatencyHistogram::BucketBound(1), 2.0, 1e-12);
  EXPECT_NEAR(LatencyHistogram::BucketBound(3), 4.0, 1e-12);
  EXPECT_TRUE(std::isinf(LatencyHistogram::BucketBound(LatencyHistogram::kNumBuckets - 1)));

  LatencyHistogram histogram;
  histogram.Record(1.0);    // <= bound(0) -> bucket 0
  histogram.Record(2.0);    // (bound(0), bound(1)] -> bucket 1
  histogram.Record(2.5);    // (2, 2.83] -> bucket 2
  histogram.Record(1e12);   // overflow bucket
  EXPECT_EQ(histogram.bucket_count(0), 1u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(LatencyHistogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_NEAR(histogram.sum_us(), 1e12 + 6.0, 1.0);
}

TEST(MetricsTest, HistogramPercentileTracksExactPercentile) {
  // Log-bucketed estimates cannot be exact, but they must stay within one
  // bucket (a factor of sqrt(2)) of the exact stats.h Percentile and be
  // monotone in p.
  LatencyHistogram histogram;
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) {
    const double v = static_cast<double>(i);  // uniform 1..1000 us
    xs.push_back(v);
    histogram.Record(v);
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = Percentile(xs, p);
    const double estimate = histogram.Percentile(p);
    EXPECT_GE(estimate, exact / std::sqrt(2.0)) << "p" << p;
    EXPECT_LE(estimate, exact * std::sqrt(2.0)) << "p" << p;
  }
  EXPECT_LE(histogram.Percentile(50.0), histogram.Percentile(95.0));
  EXPECT_LE(histogram.Percentile(95.0), histogram.Percentile(99.0));
  LatencyHistogram empty;
  EXPECT_EQ(empty.Percentile(50.0), 0.0);
}

TEST(MetricsTest, HistogramSeriesReconcilesWithRecords) {
  LatencyHistogram histogram;
  for (int i = 0; i < 17; ++i) {
    histogram.Record(100.0);
  }
  histogram.Record(1e12);  // overflow: implied by count, not a bucket entry
  const MetricSeries series = HistogramSeries(histogram);
  EXPECT_EQ(series.count, 18u);
  uint64_t bucketed = 0;
  for (const MetricBucket& bucket : series.buckets) {
    EXPECT_TRUE(std::isfinite(bucket.le));  // overflow never serializes
    bucketed += bucket.count;
  }
  EXPECT_EQ(bucketed, 17u);
}

// ---- Registry + Prometheus exposition -------------------------------------

TEST(MetricsTest, RegistryReturnsStableReferencesAndCollects) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetForTest();
  Counter& a = registry.GetCounter("maya_test_total", "help text");
  Counter& b = registry.GetCounter("maya_test_total");
  EXPECT_EQ(&a, &b);  // same name -> same metric
  a.Increment(3);
  registry.GetGauge("maya_test_gauge").Set(7.0);
  registry.GetCounter("maya_test_labeled_total{kind=\"x\"}").Increment();
  registry.GetCounter("maya_test_labeled_total{kind=\"y\"}").Increment(2);

  const MetricsReport report = registry.Collect();
  const MetricFamily* labeled = nullptr;
  for (const MetricFamily& family : report) {
    if (family.name == "maya_test_labeled_total") {
      labeled = &family;
    }
  }
  ASSERT_NE(labeled, nullptr);
  ASSERT_EQ(labeled->series.size(), 2u);  // grouped into one family
  EXPECT_EQ(labeled->series[0].labels, "kind=\"x\"");
  EXPECT_EQ(labeled->series[1].labels, "kind=\"y\"");

  const std::string text = RenderPrometheus(report);
  EXPECT_NE(text.find("# HELP maya_test_total help text"), std::string::npos);
  EXPECT_NE(text.find("# TYPE maya_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("maya_test_total 3"), std::string::npos);
  EXPECT_NE(text.find("maya_test_gauge 7"), std::string::npos);
  EXPECT_NE(text.find("maya_test_labeled_total{kind=\"x\"} 1"), std::string::npos);
  EXPECT_NE(text.find("maya_test_labeled_total{kind=\"y\"} 2"), std::string::npos);
  registry.ResetForTest();
}

TEST(MetricsTest, PrometheusHistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetForTest();
  LatencyHistogram& histogram = registry.GetHistogram("maya_test_us", "latency");
  histogram.Record(1.0);   // bucket 0 (le ~1.41)
  histogram.Record(2.0);   // bucket 1 (le 2)
  histogram.Record(1e12);  // overflow -> only the +Inf line
  const std::string text = RenderPrometheus(registry.Collect());
  EXPECT_NE(text.find("# TYPE maya_test_us histogram"), std::string::npos);
  EXPECT_NE(text.find("maya_test_us_bucket{le=\"2\"} 2"), std::string::npos);  // cumulative
  EXPECT_NE(text.find("maya_test_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("maya_test_us_count 3"), std::string::npos);
  registry.ResetForTest();
}

// ---- Tracing --------------------------------------------------------------

TEST(TelemetryTest, DisabledSpanSitesRecordNothing) {
  Telemetry::Instance().Disable();
  EXPECT_FALSE(Telemetry::IsActive());
  {
    ScopedSpan span("should_not_record", "test");
  }
  EXPECT_EQ(Telemetry::Instance().buffered_events(), 0u);
}

TEST(TelemetryTest, SpansCarryTheCurrentContext) {
  TelemetryGuard guard(Tracing());
  const uint64_t trace_id = Telemetry::Instance().NextTraceId();
  EXPECT_NE(trace_id, 0u);
  {
    ScopedTraceContext context(TraceContext{trace_id});
    ScopedSpan outer("outer", "test");
    { ScopedSpan inner("inner", "test"); }
  }
  // Context restored after the scope.
  EXPECT_EQ(Telemetry::CurrentContext().trace_id, 0u);
  const std::vector<TraceEvent> events = Telemetry::Instance().SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.trace_id, trace_id);
    EXPECT_GE(event.dur_us, 0.0);
  }
  // Snapshot order is by start time: outer opens first, inner nests inside.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us, events[1].ts_us + events[1].dur_us);
}

TEST(TelemetryTest, RingBufferWrapsAndCountsDrops) {
  Telemetry::Options options = Tracing(/*ring_capacity=*/8);
  TelemetryGuard guard(options);
  for (int i = 0; i < 20; ++i) {
    ScopedSpan span("wrap", "test");
  }
  EXPECT_EQ(Telemetry::Instance().buffered_events(), 8u);
  EXPECT_EQ(Telemetry::Instance().dropped_events(), 12u);
}

TEST(TelemetryTest, ExportIsParseableChromeTraceJson) {
  TelemetryGuard guard(Tracing());
  const uint64_t trace_id = Telemetry::Instance().NextTraceId();
  {
    ScopedTraceContext context(TraceContext{trace_id});
    ScopedSpan span("exported_span", "test");
  }
  size_t exported = 0;
  const std::string json = Telemetry::Instance().ExportChromeTrace(0, &exported);
  EXPECT_EQ(exported, 1u);
  Result<JsonValue> root = ParseJson(json);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  ASSERT_TRUE(root->is_object());
  Result<const JsonArray*> events = ToArray(root->at("traceEvents"));
  ASSERT_TRUE(events.ok());
  ASSERT_EQ((*events)->size(), 1u);
  const JsonValue& event = (**events)[0];
  Result<std::string> name = ToString(event.at("name"));
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "exported_span");
  Result<std::string> phase = ToString(event.at("ph"));
  ASSERT_TRUE(phase.ok());
  EXPECT_EQ(*phase, "X");
  EXPECT_TRUE(event.Has("ts"));
  EXPECT_TRUE(event.Has("dur"));
  Result<uint64_t> id = ToUint(event.at("args").at("trace_id"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, trace_id);
}

TEST(TelemetryTest, ExportFilterSelectsOneTrace) {
  TelemetryGuard guard(Tracing());
  const uint64_t first = Telemetry::Instance().NextTraceId();
  const uint64_t second = Telemetry::Instance().NextTraceId();
  {
    ScopedTraceContext context(TraceContext{first});
    ScopedSpan span("span_first", "test");
  }
  {
    ScopedTraceContext context(TraceContext{second});
    ScopedSpan span("span_second", "test");
  }
  size_t exported = 0;
  const std::string json = Telemetry::Instance().ExportChromeTrace(first, &exported);
  EXPECT_EQ(exported, 1u);
  EXPECT_NE(json.find("span_first"), std::string::npos);
  EXPECT_EQ(json.find("span_second"), std::string::npos);
}

TEST(TelemetryTest, ParallelForPropagatesContextIntoPoolTasks) {
  TelemetryGuard guard(Tracing());
  const uint64_t trace_id = Telemetry::Instance().NextTraceId();
  ThreadPool pool(4);
  {
    ScopedTraceContext context(TraceContext{trace_id});
    pool.ParallelFor(16, [](size_t) {
      ScopedSpan span("task_body", "test");
    });
  }
  size_t task_bodies = 0;
  size_t pool_tasks = 0;
  for (const TraceEvent& event : Telemetry::Instance().SnapshotEvents()) {
    if (std::strcmp(event.name, "task_body") == 0) {
      ++task_bodies;
      EXPECT_EQ(event.trace_id, trace_id);
    } else if (std::strcmp(event.name, "pool_task") == 0) {
      ++pool_tasks;
      EXPECT_EQ(event.trace_id, trace_id);
    }
  }
  EXPECT_EQ(task_bodies, 16u);  // every task saw the submitter's context
  EXPECT_EQ(pool_tasks, 16u);   // and the pool wrapped each in its own span
}

TEST(TelemetryTest, ConcurrentThreadsDoNotCrossContaminateContexts) {
  TelemetryGuard guard(Tracing());
  // Span names must be static-lifetime literals; one per thread lets the
  // events be attributed back to their recording thread afterwards.
  static const char* const kNames[] = {"ctx_t0", "ctx_t1", "ctx_t2", "ctx_t3"};
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      ScopedTraceContext context(TraceContext{static_cast<uint64_t>(t + 1)});
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(kNames[t], "test");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  size_t total = 0;
  for (const TraceEvent& event : Telemetry::Instance().SnapshotEvents()) {
    for (int t = 0; t < kThreads; ++t) {
      if (std::strcmp(event.name, kNames[t]) == 0) {
        ++total;
        // A cross-thread context leak would show up as a mismatched id.
        EXPECT_EQ(event.trace_id, static_cast<uint64_t>(t + 1));
      }
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kThreads * kSpansPerThread));
}

// ---- Slow-request accounting ----------------------------------------------

TEST(TelemetryTest, SlowRequestsAreRetainedAndSinked) {
  Telemetry::Options options;
  options.tracing = false;  // slow-only mode
  options.slow_request_threshold_ms = 5.0;
  TelemetryGuard guard(options);
  EXPECT_TRUE(Telemetry::IsActive());  // spans still record in slow-only mode

  std::vector<uint64_t> sinked_ids;
  std::vector<std::string> sinked_json;
  Telemetry::Instance().SetTraceSink(
      [&](uint64_t trace_id, const std::string& trace_json) {
        sinked_ids.push_back(trace_id);
        sinked_json.push_back(trace_json);
      });

  const uint64_t fast_id = Telemetry::Instance().NextTraceId();
  const uint64_t slow_id = Telemetry::Instance().NextTraceId();
  {
    ScopedTraceContext context(TraceContext{fast_id});
    ScopedSpan span("fast_request", "test");
  }
  {
    ScopedTraceContext context(TraceContext{slow_id});
    ScopedSpan span("slow_request", "test");
  }

  EXPECT_FALSE(Telemetry::Instance().OnRequestComplete(fast_id, 1.0));
  EXPECT_TRUE(Telemetry::Instance().OnRequestComplete(slow_id, 10.0));
  EXPECT_EQ(Telemetry::Instance().slow_requests(), 1u);

  ASSERT_EQ(sinked_ids.size(), 1u);
  EXPECT_EQ(sinked_ids[0], slow_id);
  // The sink receives only the slow request's span tree, as valid JSON.
  EXPECT_TRUE(ParseJson(sinked_json[0]).ok());
  EXPECT_NE(sinked_json[0].find("slow_request"), std::string::npos);
  EXPECT_EQ(sinked_json[0].find("fast_request"), std::string::npos);

  // With tracing off, an unfiltered export is slow-only: the fast request's
  // spans are not exported, the retained slow trace's are.
  size_t exported = 0;
  const std::string json = Telemetry::Instance().ExportChromeTrace(0, &exported);
  EXPECT_EQ(exported, 1u);
  EXPECT_NE(json.find("slow_request"), std::string::npos);
  EXPECT_EQ(json.find("fast_request"), std::string::npos);
}

}  // namespace
}  // namespace maya
