// Chaos harness for the serving stack: a concurrent mixed workload (predict,
// batch_predict, search, whatif_oom, incl. derived-deployment what-ifs) runs
// against one engine for many iterations while deterministic faults fire at
// every pipeline stage and in the engine's submit/worker paths.
//
// Invariants asserted every iteration:
//   1. The server never aborts — every submitted future resolves.
//   2. A faulted request fails alone, with the typed INTERNAL_ERROR code.
//   3. Every non-faulted response is bit-identical to the fault-free
//      baseline (faults fire before stages touch shared caches, so a lost
//      request never poisons cross-trial state).
//   4. Post-chaos stats reconcile: submitted == completed + rejected +
//      cancelled + deadline_expired.
// And once at the end: with faults disarmed, the chaos-scarred engine
// answers the whole workload bit-identically to the pristine baseline.
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/strings.h"
#include "src/estimator/serialization.h"
#include "src/service/service_client.h"
#include "src/service/service_engine.h"

namespace maya {
namespace {

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig MakeConfig(int tp, int pp, int mm = 2) {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = tp;
  config.pipeline_parallel = pp;
  config.microbatch_multiplier = mm;
  return config;
}

// The canonical identity of a response: model-level outputs only. Wall-clock
// timings and cache hit/miss splits legitimately vary between a cold and a
// warm run of the same request and are excluded.
std::string Signature(const ServiceResponse& response) {
  std::string signature = StrFormat("kind=%d ok=%d ", static_cast<int>(response.kind),
                                    response.ok ? 1 : 0);
  if (!response.ok) {
    return signature + response.error_code;
  }
  auto result = [](const char* tag, bool oom, const std::string& detail, double iteration_us,
                   double mfu, uint64_t peak) {
    return StrFormat("%s[oom=%d detail=%s it=%s mfu=%s peak=%llu] ", tag, oom ? 1 : 0,
                     detail.c_str(), DoubleBits(iteration_us).c_str(),
                     DoubleBits(mfu).c_str(), static_cast<unsigned long long>(peak));
  };
  switch (response.kind) {
    case ServiceRequestKind::kPredict:
    case ServiceRequestKind::kWhatIfOom:
    case ServiceRequestKind::kTracePredict:
      signature += result("single", response.oom, response.oom_detail,
                          response.iteration_time_us, response.mfu,
                          response.peak_memory_bytes);
      break;
    case ServiceRequestKind::kBatchPredict:
      for (const PredictResult& item : response.batch) {
        signature += result("item", item.oom, item.oom_detail, item.iteration_time_us,
                            item.mfu, item.peak_memory_bytes);
      }
      break;
    case ServiceRequestKind::kSearch:
      // executed/cached splits shift as the engine's caches warm; the found
      // optimum and the sample walk are the invariant outputs.
      signature += StrFormat("search[found=%d best=%s it=%s config=%s samples=%d] ",
                             response.found ? 1 : 0, DoubleBits(response.best_mfu).c_str(),
                             DoubleBits(response.best_iteration_us).c_str(),
                             response.best_config.Summary().c_str(), response.samples);
      break;
    case ServiceRequestKind::kStats:
    case ServiceRequestKind::kCancel:
    case ServiceRequestKind::kMetrics:
    case ServiceRequestKind::kDumpTrace:
      break;
  }
  return signature;
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 7);
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, sweep));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  // The mixed workload of one iteration. Ids are stable, so responses map
  // back onto baseline signatures.
  static std::vector<ServiceRequest> BuildWorkload() {
    std::vector<ServiceRequest> requests;
    uint64_t id = 1;
    for (int tp : {1, 2}) {
      for (int pp : {1, 2}) {
        ServiceRequest request;
        request.id = id++;
        PredictPayload payload;
        payload.model = TinyGpt();
        payload.config = MakeConfig(tp, pp);
        request.payload = std::move(payload);
        requests.push_back(std::move(request));
      }
    }
    {
      // Fleet path: a what-if against a derived deployment of the same arch.
      ServiceRequest request;
      request.id = id++;
      PredictPayload payload;
      payload.model = TinyGpt();
      payload.config = MakeConfig(2, 2);
      payload.deployment = "h100x16";
      request.payload = std::move(payload);
      requests.push_back(std::move(request));
    }
    {
      ServiceRequest request;
      request.id = id++;
      WhatIfOomPayload payload;
      payload.model = TinyGpt();
      payload.config = MakeConfig(1, 2, 4);
      request.payload = std::move(payload);
      requests.push_back(std::move(request));
    }
    {
      ServiceRequest request;
      request.id = id++;
      BatchPredictPayload payload;
      payload.model = TinyGpt();
      payload.configs = {MakeConfig(1, 1), MakeConfig(2, 1), MakeConfig(2, 2, 4)};
      request.payload = std::move(payload);
      requests.push_back(std::move(request));
    }
    {
      ServiceRequest request;
      request.id = id++;
      SearchPayload payload;
      payload.model = TinyGpt();
      payload.search.algorithm = "cma";
      payload.search.sample_budget = 6;
      payload.search.early_stop_patience = 0;
      payload.search.seed = 13;
      payload.global_batch = 32;
      request.payload = std::move(payload);
      requests.push_back(std::move(request));
    }
    return requests;
  }

  // Submits the whole workload from two threads, waits for every future, and
  // returns the responses keyed by request id. Never aborting means: this
  // function always returns.
  static std::map<uint64_t, ServiceResponse> RunWorkload(ServiceEngine& engine) {
    const std::vector<ServiceRequest> workload = BuildWorkload();
    std::mutex mutex;
    std::map<uint64_t, ServiceResponse> responses;
    auto submit_range = [&](size_t begin, size_t end) {
      std::vector<std::pair<uint64_t, std::future<ServiceResponse>>> futures;
      for (size_t i = begin; i < end; ++i) {
        futures.emplace_back(workload[i].id, engine.Submit(workload[i]));
      }
      for (auto& [id, future] : futures) {
        ServiceResponse response = future.get();
        std::lock_guard<std::mutex> lock(mutex);
        responses.emplace(id, std::move(response));
      }
    };
    const size_t half = workload.size() / 2;
    std::thread first(submit_range, 0, half);
    std::thread second(submit_range, half, workload.size());
    first.join();
    second.join();
    return responses;
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
};

ClusterSpec* ChaosTest::cluster_ = nullptr;
GroundTruthExecutor* ChaosTest::executor_ = nullptr;
EstimatorBank* ChaosTest::bank_ = nullptr;

TEST_F(ChaosTest, ServerSurvivesDeterministicFaultStorm) {
  constexpr int kIterations = 100;
  FaultInjection& faults = FaultInjection::Instance();
  faults.Disarm();

  ServiceEngineOptions options;
  options.worker_threads = 4;
  options.max_queue_weight = 1000.0;  // chaos targets faults, not admission
  Result<std::unique_ptr<ServiceEngine>> created = ServiceEngine::Create(
      *cluster_, bank_->kernel.get(), bank_->collective.get(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ServiceEngine& engine = **created;

  // Fault-free baseline: the canonical signature of every workload request.
  std::map<uint64_t, std::string> baseline;
  for (const auto& [id, response] : RunWorkload(engine)) {
    ASSERT_TRUE(response.ok) << "baseline request " << id << ": " << response.error;
    baseline[id] = Signature(response);
  }

  uint64_t total_fired = 0;
  uint64_t total_failed = 0;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    ASSERT_TRUE(faults
                    .Configure("pipeline.*=0.08,service.submit=0.05,service.worker=0.05",
                               static_cast<uint64_t>(iteration))
                    .ok());
    const std::map<uint64_t, ServiceResponse> responses = RunWorkload(engine);
    total_fired += faults.fired_count();
    faults.Disarm();

    ASSERT_EQ(responses.size(), baseline.size()) << "iteration " << iteration;
    for (const auto& [id, response] : responses) {
      if (response.ok) {
        // Bit-identical to the fault-free run: chaos never corrupted the
        // shared caches the surviving requests answered from.
        EXPECT_EQ(Signature(response), baseline[id])
            << "iteration " << iteration << " request " << id;
      } else {
        // A fault fails exactly the request it hit, with the typed code.
        ++total_failed;
        EXPECT_EQ(response.error_code, kErrInternalError)
            << "iteration " << iteration << " request " << id << ": " << response.error;
        EXPECT_NE(response.error.find("injected fault"), std::string::npos)
            << response.error;
      }
    }
  }
  // The storm actually stormed: faults fired and killed requests.
  EXPECT_GT(total_fired, 0u);
  EXPECT_GT(total_failed, 0u);

  // Post-chaos ledger: every submission over the whole run is accounted for
  // exactly once.
  const ServiceStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected + stats.cancelled +
                                 stats.deadline_expired);
  EXPECT_EQ(stats.queue_depth, 0u);

  // Faults disarmed, the scarred engine still answers the whole workload
  // bit-identically to the pristine baseline.
  for (const auto& [id, response] : RunWorkload(engine)) {
    ASSERT_TRUE(response.ok) << "post-chaos request " << id << ": " << response.error;
    EXPECT_EQ(Signature(response), baseline[id]) << "post-chaos request " << id;
  }
  engine.Shutdown();
}

}  // namespace
}  // namespace maya
