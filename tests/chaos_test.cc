// Chaos harness for the serving stack: a concurrent mixed workload (predict,
// batch_predict, search, whatif_oom, incl. derived-deployment what-ifs) runs
// against one engine for many iterations while deterministic faults fire at
// every pipeline stage and in the engine's submit/worker paths.
//
// Invariants asserted every iteration:
//   1. The server never aborts — every submitted future resolves.
//   2. A faulted request fails alone, with the typed INTERNAL_ERROR code.
//   3. Every non-faulted response is bit-identical to the fault-free
//      baseline (faults fire before stages touch shared caches, so a lost
//      request never poisons cross-trial state).
//   4. Post-chaos stats reconcile: submitted == completed + rejected +
//      cancelled + deadline_expired.
// And once at the end: with faults disarmed, the chaos-scarred engine
// answers the whole workload bit-identically to the pristine baseline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/strings.h"
#include "src/estimator/serialization.h"
#include "src/service/artifact_store.h"
#include "src/service/fleet_journal.h"
#include "src/service/service_client.h"
#include "src/service/service_engine.h"

namespace maya {
namespace {

ModelConfig TinyGpt() {
  ModelConfig model;
  model.name = "tiny-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig MakeConfig(int tp, int pp, int mm = 2) {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = tp;
  config.pipeline_parallel = pp;
  config.microbatch_multiplier = mm;
  return config;
}

// The canonical identity of a response: model-level outputs only. Wall-clock
// timings and cache hit/miss splits legitimately vary between a cold and a
// warm run of the same request and are excluded.
std::string Signature(const ServiceResponse& response) {
  std::string signature = StrFormat("kind=%d ok=%d ", static_cast<int>(response.kind),
                                    response.ok ? 1 : 0);
  if (!response.ok) {
    return signature + response.error_code;
  }
  auto result = [](const char* tag, bool oom, const std::string& detail, double iteration_us,
                   double mfu, uint64_t peak) {
    return StrFormat("%s[oom=%d detail=%s it=%s mfu=%s peak=%llu] ", tag, oom ? 1 : 0,
                     detail.c_str(), DoubleBits(iteration_us).c_str(),
                     DoubleBits(mfu).c_str(), static_cast<unsigned long long>(peak));
  };
  switch (response.kind) {
    case ServiceRequestKind::kPredict:
    case ServiceRequestKind::kWhatIfOom:
    case ServiceRequestKind::kTracePredict:
      signature += result("single", response.oom, response.oom_detail,
                          response.iteration_time_us, response.mfu,
                          response.peak_memory_bytes);
      break;
    case ServiceRequestKind::kBatchPredict:
      for (const PredictResult& item : response.batch) {
        signature += result("item", item.oom, item.oom_detail, item.iteration_time_us,
                            item.mfu, item.peak_memory_bytes);
      }
      break;
    case ServiceRequestKind::kSearch:
      // executed/cached splits shift as the engine's caches warm; the found
      // optimum and the sample walk are the invariant outputs.
      signature += StrFormat("search[found=%d best=%s it=%s config=%s samples=%d] ",
                             response.found ? 1 : 0, DoubleBits(response.best_mfu).c_str(),
                             DoubleBits(response.best_iteration_us).c_str(),
                             response.best_config.Summary().c_str(), response.samples);
      break;
    case ServiceRequestKind::kStats:
    case ServiceRequestKind::kCancel:
    case ServiceRequestKind::kMetrics:
    case ServiceRequestKind::kDumpTrace:
    case ServiceRequestKind::kAddDeployment:
    case ServiceRequestKind::kRemoveDeployment:
    case ServiceRequestKind::kHealth:
      break;
  }
  return signature;
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new ClusterSpec(H100Cluster(8));
    executor_ = new GroundTruthExecutor(*cluster_, 7);
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    bank_ = new EstimatorBank(TrainEstimators(*cluster_, *executor_, sweep));
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete executor_;
    delete cluster_;
  }

  // The mixed workload of one iteration. Ids are stable, so responses map
  // back onto baseline signatures.
  static std::vector<ServiceRequest> BuildWorkload() {
    std::vector<ServiceRequest> requests;
    uint64_t id = 1;
    for (int tp : {1, 2}) {
      for (int pp : {1, 2}) {
        ServiceRequest request;
        request.id = id++;
        PredictPayload payload;
        payload.model = TinyGpt();
        payload.config = MakeConfig(tp, pp);
        request.payload = std::move(payload);
        requests.push_back(std::move(request));
      }
    }
    {
      // Fleet path: a what-if against a derived deployment of the same arch.
      ServiceRequest request;
      request.id = id++;
      PredictPayload payload;
      payload.model = TinyGpt();
      payload.config = MakeConfig(2, 2);
      payload.deployment = "h100x16";
      request.payload = std::move(payload);
      requests.push_back(std::move(request));
    }
    {
      ServiceRequest request;
      request.id = id++;
      WhatIfOomPayload payload;
      payload.model = TinyGpt();
      payload.config = MakeConfig(1, 2, 4);
      request.payload = std::move(payload);
      requests.push_back(std::move(request));
    }
    {
      ServiceRequest request;
      request.id = id++;
      BatchPredictPayload payload;
      payload.model = TinyGpt();
      payload.configs = {MakeConfig(1, 1), MakeConfig(2, 1), MakeConfig(2, 2, 4)};
      request.payload = std::move(payload);
      requests.push_back(std::move(request));
    }
    {
      ServiceRequest request;
      request.id = id++;
      SearchPayload payload;
      payload.model = TinyGpt();
      payload.search.algorithm = "cma";
      payload.search.sample_budget = 6;
      payload.search.early_stop_patience = 0;
      payload.search.seed = 13;
      payload.global_batch = 32;
      request.payload = std::move(payload);
      requests.push_back(std::move(request));
    }
    return requests;
  }

  // Submits the whole workload from two threads, waits for every future, and
  // returns the responses keyed by request id. Never aborting means: this
  // function always returns.
  static std::map<uint64_t, ServiceResponse> RunWorkload(ServiceEngine& engine) {
    const std::vector<ServiceRequest> workload = BuildWorkload();
    std::mutex mutex;
    std::map<uint64_t, ServiceResponse> responses;
    auto submit_range = [&](size_t begin, size_t end) {
      std::vector<std::pair<uint64_t, std::future<ServiceResponse>>> futures;
      for (size_t i = begin; i < end; ++i) {
        futures.emplace_back(workload[i].id, engine.Submit(workload[i]));
      }
      for (auto& [id, future] : futures) {
        ServiceResponse response = future.get();
        std::lock_guard<std::mutex> lock(mutex);
        responses.emplace(id, std::move(response));
      }
    };
    const size_t half = workload.size() / 2;
    std::thread first(submit_range, 0, half);
    std::thread second(submit_range, half, workload.size());
    first.join();
    second.join();
    return responses;
  }

  static ClusterSpec* cluster_;
  static GroundTruthExecutor* executor_;
  static EstimatorBank* bank_;
};

ClusterSpec* ChaosTest::cluster_ = nullptr;
GroundTruthExecutor* ChaosTest::executor_ = nullptr;
EstimatorBank* ChaosTest::bank_ = nullptr;

TEST_F(ChaosTest, ServerSurvivesDeterministicFaultStorm) {
  constexpr int kIterations = 100;
  FaultInjection& faults = FaultInjection::Instance();
  faults.Disarm();

  ServiceEngineOptions options;
  options.worker_threads = 4;
  options.max_queue_weight = 1000.0;  // chaos targets faults, not admission
  Result<std::unique_ptr<ServiceEngine>> created = ServiceEngine::Create(
      *cluster_, bank_->kernel.get(), bank_->collective.get(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ServiceEngine& engine = **created;

  // Fault-free baseline: the canonical signature of every workload request.
  std::map<uint64_t, std::string> baseline;
  for (const auto& [id, response] : RunWorkload(engine)) {
    ASSERT_TRUE(response.ok) << "baseline request " << id << ": " << response.error;
    baseline[id] = Signature(response);
  }

  uint64_t total_fired = 0;
  uint64_t total_failed = 0;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    ASSERT_TRUE(faults
                    .Configure("pipeline.*=0.08,service.submit=0.05,service.worker=0.05",
                               static_cast<uint64_t>(iteration))
                    .ok());
    const std::map<uint64_t, ServiceResponse> responses = RunWorkload(engine);
    total_fired += faults.fired_count();
    faults.Disarm();

    ASSERT_EQ(responses.size(), baseline.size()) << "iteration " << iteration;
    for (const auto& [id, response] : responses) {
      if (response.ok) {
        // Bit-identical to the fault-free run: chaos never corrupted the
        // shared caches the surviving requests answered from.
        EXPECT_EQ(Signature(response), baseline[id])
            << "iteration " << iteration << " request " << id;
      } else {
        // A fault fails exactly the request it hit, with the typed code.
        ++total_failed;
        EXPECT_EQ(response.error_code, kErrInternalError)
            << "iteration " << iteration << " request " << id << ": " << response.error;
        EXPECT_NE(response.error.find("injected fault"), std::string::npos)
            << response.error;
      }
    }
  }
  // The storm actually stormed: faults fired and killed requests.
  EXPECT_GT(total_fired, 0u);
  EXPECT_GT(total_failed, 0u);

  // Post-chaos ledger: every submission over the whole run is accounted for
  // exactly once.
  const ServiceStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected + stats.cancelled +
                                 stats.deadline_expired);
  EXPECT_EQ(stats.queue_depth, 0u);

  // Faults disarmed, the scarred engine still answers the whole workload
  // bit-identically to the pristine baseline.
  for (const auto& [id, response] : RunWorkload(engine)) {
    ASSERT_TRUE(response.ok) << "post-chaos request " << id << ": " << response.error;
    EXPECT_EQ(Signature(response), baseline[id]) << "post-chaos request " << id;
  }
  engine.Shutdown();
}

// ---- Crash-recovery storm ---------------------------------------------------

// Eight crash/recover cycles under journal + checkpoint faults: every cycle
// SIGKILL-equivalently drops the process state (no final checkpoint, no
// graceful journal handoff), recovers checkpoint-first with idempotent
// journal replay, and must reconstruct EXACTLY the acknowledged fleet — every
// acknowledged deployment resident and answering bit-identically, every
// refused mutation absent. One cycle hand-tears the journal tail; one forces
// a guaranteed journal refusal.
TEST_F(ChaosTest, CrashRecoveryStormReconstructsFleetBitIdentical) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "chaos_crash_recovery").string();
  std::filesystem::remove_all(dir);
  FaultInjection& faults = FaultInjection::Instance();
  faults.Disarm();

  // Checkpoints snapshot the registry through SaveRegistry, which requires
  // engines that OWN their banks; training is deterministic (executor seed 7,
  // fixture sweep), so independently trained engines agree bit-for-bit.
  const auto owning_engine = [&](ServiceEngineOptions options = {}) {
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1200;
    sweep.conv_samples = 100;
    sweep.generic_samples = 60;
    sweep.collective_sizes = 12;
    const GroundTruthExecutor executor(*cluster_, 7);
    Result<std::unique_ptr<ServiceEngine>> created = ServiceEngine::Create(
        *cluster_, TrainEstimators(*cluster_, executor, sweep), options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    return *std::move(created);
  };
  uint64_t next_id = 1000;
  const auto predict = [&](ServiceEngine& engine, const std::string& deployment) {
    ServiceRequest request;
    request.id = next_id++;
    PredictPayload payload;
    payload.model = TinyGpt();
    payload.config = MakeConfig(2, 2);
    payload.deployment = deployment;
    request.payload = std::move(payload);
    return engine.Submit(std::move(request)).get();
  };
  const auto predict_sig = [](const ServiceResponse& response) {
    return DoubleBits(response.iteration_time_us) + "/" + DoubleBits(response.mfu);
  };
  const auto make_add = [&](const std::string& name) {
    ServiceRequest request;
    request.id = next_id++;
    AddDeploymentPayload payload;
    payload.name = name;
    payload.cluster = "h100x16";
    payload.sweep = "tiny";
    request.payload = std::move(payload);
    return request;
  };

  // Baseline: what the default deployment and any h100x16/tiny add must
  // answer, captured on a never-crashed engine.
  std::string base_sig;
  std::string aux_sig;
  {
    std::unique_ptr<ServiceEngine> engine = owning_engine();
    ASSERT_TRUE(engine->Submit(make_add("probe")).get().ok);
    const ServiceResponse base = predict(*engine, "");
    const ServiceResponse aux = predict(*engine, "probe");
    ASSERT_TRUE(base.ok && aux.ok);
    base_sig = predict_sig(base);
    aux_sig = predict_sig(aux);
    engine->Shutdown();
  }

  // Recovers the fleet exactly as maya_serve does: checkpoint-preferred
  // engine construction, then idempotent replay of the journal tail through
  // the normal admin path, then journal attach.
  const auto recover = [&](FleetJournal& journal) {
    std::unique_ptr<ServiceEngine> engine;
    if (journal.plan().has_checkpoint) {
      Result<std::unique_ptr<ServiceEngine>> restored = ServiceEngine::FromArtifacts(
          *cluster_, ArtifactStore(journal.plan().checkpoint_dir), ServiceEngineOptions{});
      EXPECT_TRUE(restored.ok()) << restored.status().ToString();
      engine = *std::move(restored);
    } else {
      engine = owning_engine();
    }
    for (const FleetJournalRecord& record : journal.plan().replay) {
      ServiceRequest request;
      request.id = next_id++;
      if (record.op == FleetJournalRecord::Op::kAdd) {
        if (engine->registry().IsResident(record.name)) {
          continue;
        }
        AddDeploymentPayload payload;
        payload.name = record.name;
        payload.cluster = record.cluster;
        payload.sweep = record.sweep;
        payload.bundle_dir = record.bundle_dir;
        request.payload = std::move(payload);
      } else {
        if (!engine->registry().IsResident(record.name)) {
          continue;
        }
        request.payload = RemoveDeploymentPayload{record.name};
      }
      const ServiceResponse replayed = engine->Submit(std::move(request)).get();
      EXPECT_TRUE(replayed.ok) << replayed.error;
    }
    engine->AttachJournal(&journal);
    return engine;
  };
  const auto storm_fleet = [](const ServiceEngine& engine) {
    std::set<std::string> fleet;
    for (const std::string& name : engine.registry().ResidentNames()) {
      if (name.rfind("fleet_", 0) == 0) {
        fleet.insert(name);
      }
    }
    return fleet;
  };

  std::set<std::string> expected;  // acknowledged (and only acknowledged) adds
  uint64_t journal_refusals = 0;
  int next_fleet = 0;
  constexpr int kCycles = 8;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    if (cycle == 4) {
      // A crash mid-append leaves a partial line; recovery must repair it.
      std::ofstream torn((std::filesystem::path(dir) / "journal.ndjson").string(),
                         std::ios::app | std::ios::binary);
      torn << R"({"seq":999,"op":"add","na)";
    }
    FleetJournalOptions journal_options;
    journal_options.checkpoint_every = 3;
    FleetJournal journal(dir, journal_options);
    ASSERT_TRUE(journal.Open().ok()) << "cycle " << cycle;
    if (cycle == 4) {
      EXPECT_GE(journal.plan().torn_records_dropped, 1u);
    }

    std::unique_ptr<ServiceEngine> engine = recover(journal);
    ASSERT_NE(engine, nullptr);

    // Invariant: the recovered fleet is EXACTLY the acknowledged set, and
    // every survivor answers bit-identically to the never-crashed baseline.
    EXPECT_EQ(storm_fleet(*engine), expected) << "cycle " << cycle;
    const ServiceResponse base = predict(*engine, "");
    ASSERT_TRUE(base.ok) << base.error;
    EXPECT_EQ(predict_sig(base), base_sig) << "cycle " << cycle;
    for (const std::string& name : expected) {
      const ServiceResponse aux = predict(*engine, name);
      ASSERT_TRUE(aux.ok) << "cycle " << cycle << " " << name << ": " << aux.error;
      EXPECT_EQ(predict_sig(aux), aux_sig) << "cycle " << cycle << " " << name;
    }

    // Admin mutations under a durability-fault storm. Cycle 6 forces a
    // refusal so the storm provably exercises the rollback path.
    ASSERT_TRUE(faults
                    .Configure(cycle == 6
                                   ? "journal.fsync=1"
                                   : "journal.append_torn=0.2,journal.fsync=0.2,"
                                     "checkpoint.partial=0.5",
                               static_cast<uint64_t>(cycle))
                    .ok());
    const std::string name = "fleet_" + std::to_string(next_fleet++);
    const ServiceResponse added = engine->Submit(make_add(name)).get();
    if (added.ok) {
      expected.insert(name);
    } else {
      EXPECT_EQ(added.error_code, kErrJournal) << added.error;
      EXPECT_FALSE(engine->registry().IsResident(name));
      ++journal_refusals;
    }
    if (cycle % 2 == 1 && !expected.empty()) {
      ServiceRequest remove;
      remove.id = next_id++;
      remove.payload = RemoveDeploymentPayload{*expected.begin()};
      const ServiceResponse removed = engine->Submit(std::move(remove)).get();
      if (removed.ok) {
        expected.erase(expected.begin());
      } else {
        EXPECT_EQ(removed.error_code, kErrJournal) << removed.error;
        EXPECT_TRUE(engine->registry().IsResident(*expected.begin()));
        ++journal_refusals;
      }
    }
    faults.Disarm();
    engine->Shutdown();
    // Scope exit = SIGKILL: no final checkpoint, no graceful handoff — the
    // next cycle sees only what append-time fsyncs and published checkpoint
    // pointers made durable.
  }
  EXPECT_GT(journal_refusals, 0u);  // the storm actually refused mutations

  // Clean ending: one more recovery with faults disarmed, a final mutation,
  // and an explicit checkpoint whose bundle alone restores the whole fleet.
  FleetJournal journal(dir);
  ASSERT_TRUE(journal.Open().ok());
  std::unique_ptr<ServiceEngine> engine = recover(journal);
  EXPECT_EQ(storm_fleet(*engine), expected);
  ASSERT_TRUE(engine->Submit(make_add("fleet_final")).get().ok);
  expected.insert("fleet_final");
  ASSERT_TRUE(journal.Checkpoint(engine->registry()).ok());
  engine->Shutdown();

  FleetJournal final_journal(dir);
  ASSERT_TRUE(final_journal.Open().ok());
  ASSERT_TRUE(final_journal.plan().has_checkpoint);
  EXPECT_TRUE(final_journal.plan().replay.empty());
  std::unique_ptr<ServiceEngine> restored = recover(final_journal);
  EXPECT_EQ(storm_fleet(*restored), expected);
  for (const std::string& name : expected) {
    const ServiceResponse aux = predict(*restored, name);
    ASSERT_TRUE(aux.ok) << name << ": " << aux.error;
    EXPECT_EQ(predict_sig(aux), aux_sig) << name;
  }
  restored->Shutdown();
}

}  // namespace
}  // namespace maya
