// Tests for the lock-striped estimation cache: single-thread semantics,
// bounded eviction, stats accounting, and concurrent hammering from
// ThreadPool threads (the access pattern of concurrent search trials).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/sharded_cache.h"
#include "src/common/thread_pool.h"
#include "src/cuda/kernel_desc.h"

namespace maya {
namespace {

TEST(ShardedCacheTest, LookupMissThenInsertThenHit) {
  ShardedCache<int, double> cache;
  EXPECT_FALSE(cache.Lookup(7).has_value());
  cache.Insert(7, 3.5);
  ASSERT_TRUE(cache.Lookup(7).has_value());
  EXPECT_DOUBLE_EQ(*cache.Lookup(7), 3.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCacheTest, InsertOverwrites) {
  ShardedCache<int, double> cache;
  cache.Insert(1, 1.0);
  cache.Insert(1, 2.0);
  EXPECT_DOUBLE_EQ(*cache.Lookup(1), 2.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCacheTest, GetOrComputeComputesOncePerKey) {
  ShardedCache<int, int> cache;
  int computes = 0;
  for (int round = 0; round < 3; ++round) {
    const int value = cache.GetOrCompute(5, [&] {
      ++computes;
      return 55;
    });
    EXPECT_EQ(value, 55);
  }
  EXPECT_EQ(computes, 1);
  const ShardedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ShardedCacheTest, StatsTrackHitsAndMisses) {
  ShardedCache<int, int> cache;
  cache.Insert(1, 10);
  cache.Lookup(1);  // hit
  cache.Lookup(2);  // miss
  cache.Lookup(1);  // hit
  const ShardedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_NEAR(stats.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(ShardedCacheTest, BoundedSizeEvicts) {
  ShardedCacheOptions options;
  options.num_shards = 4;
  options.max_entries = 64;
  ShardedCache<int, int> cache(options);
  for (int i = 0; i < 10000; ++i) {
    cache.Insert(i, i);
  }
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.stats().evictions, 0u);
  // Eviction must not pin stale entries by always victimizing the newest
  // resident: a healthy share of recently inserted keys survives the churn.
  int recent_alive = 0;
  for (int i = 10000 - 16; i < 10000; ++i) {
    recent_alive += cache.Lookup(i).has_value() ? 1 : 0;
  }
  EXPECT_GE(recent_alive, 8);
}

TEST(ShardedCacheTest, ClearEmptiesAllShards) {
  ShardedCache<int, int> cache;
  for (int i = 0; i < 100; ++i) {
    cache.Insert(i, i);
  }
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(50).has_value());
}

TEST(ShardedCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ShardedCacheOptions options;
  options.num_shards = 5;
  ShardedCache<int, int> cache(options);
  EXPECT_EQ(cache.num_shards(), 8u);
}

TEST(ShardedCacheTest, KernelDescKeys) {
  ShardedCache<KernelDesc, double, KernelDescHash> cache;
  const KernelDesc a = MakeGemm(512, 512, 512, DType::kBf16);
  const KernelDesc b = MakeGemm(512, 512, 512, DType::kBf16);  // equal to a
  const KernelDesc c = MakeGemm(512, 512, 513, DType::kBf16);
  cache.Insert(a, 1.25);
  ASSERT_TRUE(cache.Lookup(b).has_value());  // same canonical key
  EXPECT_DOUBLE_EQ(*cache.Lookup(b), 1.25);
  EXPECT_FALSE(cache.Lookup(c).has_value());
}

TEST(ShardedCacheTest, ConcurrentHammerFromThreadPool) {
  // Many threads compute overlapping keys through GetOrCompute; every lookup
  // must observe the deterministic value and accounting must not lose
  // updates under contention.
  ShardedCache<uint64_t, uint64_t> cache;
  ThreadPool pool(8);
  constexpr uint64_t kKeys = 97;
  constexpr size_t kTasks = 64;
  constexpr uint64_t kOpsPerTask = 2000;
  std::atomic<uint64_t> wrong{0};
  pool.ParallelFor(kTasks, [&](size_t task) {
    for (uint64_t i = 0; i < kOpsPerTask; ++i) {
      const uint64_t key = (task * 31 + i) % kKeys;
      const uint64_t value = cache.GetOrCompute(key, [key] { return key * key + 1; });
      if (value != key * key + 1) {
        wrong.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(cache.size(), kKeys);
  const ShardedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kTasks * kOpsPerTask);
  // Every key missed at least once; concurrent first touches may re-compute.
  EXPECT_GE(stats.misses, kKeys);
  EXPECT_GT(stats.hits, 0u);
}

TEST(ShardedCacheTest, ConcurrentInsertLookupMixedKeys) {
  ShardedCache<uint64_t, uint64_t> cache;
  ThreadPool pool(8);
  pool.ParallelFor(32, [&](size_t task) {
    for (uint64_t i = 0; i < 1000; ++i) {
      const uint64_t key = task * 1000 + i;  // disjoint key ranges
      cache.Insert(key, key + 1);
      auto hit = cache.Lookup(key);
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(*hit, key + 1);
    }
  });
  EXPECT_EQ(cache.size(), 32u * 1000u);
}

}  // namespace
}  // namespace maya
