// Figure 15: trial status breakdown during configuration search — executed
// vs cache-hit vs pruned-skipped trials (the paper measures ~20-30% of
// configurations skipped by the fidelity-preserving tactics).
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"
#include "src/search/search_driver.h"

int main() {
  using namespace maya;
  using namespace maya::bench;

  EstimatorCache cache;
  PrintBanner(std::cout, "Figure 15: trial status breakdown during config search");
  TablePrinter table({"setup", "samples", "executed", "cached", "skipped", "invalid",
                      "skip rate"});
  for (const Setup& setup : {Gpt2_7B_8xV100(), Gpt2_7B_16xV100(), Gpt18_4B_32xH100(),
                             Gpt18_4B_64xH100()}) {
    MayaPipeline& pipeline = cache.PipelineFor(setup.cluster);
    const ConfigSpace space = ConfigSpace::MegatronTable5(DefaultGlobalBatch(setup.model));
    SearchOptions options;
    options.algorithm = "cma";
    options.sample_budget = 2000;
    options.early_stop_patience = 20;
    options.seed = 23;
    const SearchOutcome outcome = *RunSearch(pipeline, setup.model, space, options);
    const int resolved = outcome.executed + outcome.skipped;
    table.AddRow({setup.label, StrFormat("%d", outcome.samples),
                  StrFormat("%d", outcome.executed), StrFormat("%d", outcome.cached),
                  StrFormat("%d", outcome.skipped), StrFormat("%d", outcome.invalid),
                  StrFormat("%.0f%%", resolved > 0
                                          ? 100.0 * outcome.skipped / resolved
                                          : 0.0)});
  }
  table.Print(std::cout);
  return 0;
}
