// Tables 7/8/9: per-kernel mean absolute percentage error of the trained
// random-forest estimators on held-out validation data, for H100, V100 and
// A40. The paper's pattern: GEMM/conv heavy hitters land in the low single
// digits (they dominate end-to-end time), while short kernels show larger
// relative errors without hurting end-to-end accuracy.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"

int main() {
  using namespace maya;
  using namespace maya::bench;

  EstimatorCache cache;
  struct Target {
    const char* banner;
    ClusterSpec cluster;
  };
  const Target targets[] = {
      {"Table 7: per-kernel MAPE, H100", H100Cluster(8)},
      {"Table 8: per-kernel MAPE, V100", V100Cluster(8)},
      {"Table 9: per-kernel MAPE, A40", A40Node()},
  };
  for (const Target& target : targets) {
    EstimatorBank& bank = cache.BankFor(target.cluster);
    const std::map<KernelKind, double> mape =
        PerKindMape(*bank.kernel, bank.kernel_validation);
    PrintBanner(std::cout, target.banner);
    TablePrinter table({"kernel", "MAPE", "validation samples"});
    std::map<KernelKind, int> counts;
    for (const KernelSample& sample : bank.kernel_validation) {
      counts[sample.kernel.kind]++;
    }
    for (const auto& [kind, error] : mape) {
      table.AddRow({KernelKindCudaSymbol(kind), StrFormat("%.2f%%", error),
                    StrFormat("%d", counts[kind])});
    }
    table.Print(std::cout);
  }
  return 0;
}
