// Table 3: error breakdown on V100 — Oracle (Maya's emulation + simulation
// with the profiled *actual* per-kernel runtimes) vs E2E (learned
// estimators). Oracle error isolates what the emulation/simulation phases
// lose; E2E adds kernel-level misprediction.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"

namespace maya {
namespace bench {

struct Row {
  const char* model_label;
  int gpus;
  int64_t batch;
  int tp;
  int pp;
  int ga;  // microbatch multiplier (gradient accumulation)
};

void RunRows(const char* banner, const ModelConfig& model, int gpus,
             const std::vector<Row>& rows, EstimatorCache& cache) {
  Setup setup{StrFormat("%s (%d GPUs)", model.name.c_str(), gpus), model, V100Cluster(gpus)};
  MayaPipeline& pipeline = cache.PipelineFor(setup.cluster);
  TablePrinter table({"Model", "BS", "TP", "PP", "GA", "Oracle(%)", "E2E(%)"});
  for (const Row& row : rows) {
    TrainConfig config;
    config.global_batch_size = row.batch;
    config.tensor_parallel = row.tp;
    config.pipeline_parallel = row.pp;
    config.microbatch_multiplier = row.ga;
    config.activation_recomputation = true;  // V100 memory requires it
    if (!config.Validate(model, setup.cluster).ok()) {
      continue;
    }
    const ActualOutcome actual = DeployOnGroundTruth(setup, config);
    if (actual.oom) {
      table.AddRow({row.model_label, StrFormat("%lld", static_cast<long long>(row.batch)),
                    StrFormat("%d", row.tp), StrFormat("%d", row.pp),
                    StrFormat("%d", row.ga), "OOM", "OOM"});
      continue;
    }
    const GroundTruthExecutor executor = MakeDeploymentExecutor(setup, config);
    PredictionRequest oracle_request{model, config};
    oracle_request.oracle = &executor;
    PredictionRequest e2e_request{model, config};
    const double oracle_us = pipeline.Predict(oracle_request)->iteration_time_us;
    const double e2e_us = pipeline.Predict(e2e_request)->iteration_time_us;
    table.AddRow(
        {row.model_label, StrFormat("%lld", static_cast<long long>(row.batch)),
         StrFormat("%d", row.tp), StrFormat("%d", row.pp), StrFormat("%d", row.ga),
         StrFormat("%.2f", std::abs(oracle_us - actual.iteration_us) / actual.iteration_us *
                               100.0),
         StrFormat("%.2f",
                   std::abs(e2e_us - actual.iteration_us) / actual.iteration_us * 100.0)});
  }
  PrintBanner(std::cout, banner);
  table.Print(std::cout);
}

}  // namespace bench
}  // namespace maya

int main() {
  using maya::bench::Row;
  using maya::bench::RunRows;
  maya::bench::EstimatorCache cache;
  RunRows("Table 3: GPT3-1.3B (8 GPUs, V100)", maya::Gpt3_1_3B(), 8,
          {Row{"GPT3-1.3B", 8, 16, 1, 2, 2}, Row{"GPT3-1.3B", 8, 16, 2, 1, 2},
           Row{"GPT3-1.3B", 8, 16, 2, 2, 2}, Row{"GPT3-1.3B", 8, 16, 2, 4, 2},
           Row{"GPT3-1.3B", 8, 16, 4, 2, 2}},
          cache);
  RunRows("Table 3: GPT3-2.7B (8 GPUs, V100)", maya::Gpt3_2_7B(), 8,
          {Row{"GPT3-2.7B", 8, 16, 1, 2, 2}, Row{"GPT3-2.7B", 8, 16, 2, 1, 2},
           Row{"GPT3-2.7B", 8, 8, 2, 2, 2}, Row{"GPT3-2.7B", 8, 8, 2, 4, 2},
           Row{"GPT3-2.7B", 8, 8, 4, 2, 2}},
          cache);
  RunRows("Table 3: Llama2-7B (32 GPUs, V100)", maya::Llama2_7B(), 32,
          {Row{"Llama2-7B", 32, 16, 2, 8, 2}, Row{"Llama2-7B", 32, 8, 2, 8, 4},
           Row{"Llama2-7B", 32, 16, 4, 4, 2}, Row{"Llama2-7B", 32, 8, 8, 2, 2}},
          cache);
  return 0;
}
