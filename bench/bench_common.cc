#include "bench/bench_common.h"
#include "src/common/strings.h"

#include <algorithm>

#include "src/baselines/amped_like.h"
#include "src/baselines/calculon_like.h"
#include "src/baselines/proteus_like.h"
#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/trace/collator.h"

namespace maya {
namespace bench {

Setup Gpt2_7B_8xV100() { return {"GPT3 2.7B - 8xV100", Gpt3_2_7B(), V100Cluster(8)}; }
Setup Gpt2_7B_16xV100() { return {"GPT3 2.7B - 16xV100", Gpt3_2_7B(), V100Cluster(16)}; }
Setup Gpt18_4B_32xH100() { return {"GPT3 18.4B - 32xH100", Gpt3_18_4B(), H100Cluster(32)}; }
Setup Gpt18_4B_64xH100() { return {"GPT3 18.4B - 64xH100", Gpt3_18_4B(), H100Cluster(64)}; }

EstimatorCache::Entry& EstimatorCache::EntryFor(const ClusterSpec& cluster) {
  const std::string key =
      StrFormat("%s-%d", GpuArchName(cluster.gpu.arch), cluster.total_gpus());
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    // Profiling-mode hardware for estimator training: a fixed per-arch seed,
    // independent of any evaluated configuration.
    entry->profiling_executor = std::make_unique<GroundTruthExecutor>(cluster, 0x9f0f);
    entry->bank = TrainEstimators(cluster, *entry->profiling_executor);
    entry->pipeline = std::make_unique<MayaPipeline>(cluster, entry->bank.kernel.get(),
                                                     entry->bank.collective.get());
    it = entries_.emplace(key, std::move(entry)).first;
  }
  return *it->second;
}

MayaPipeline& EstimatorCache::PipelineFor(const ClusterSpec& cluster) {
  return *EntryFor(cluster).pipeline;
}

EstimatorBank& EstimatorCache::BankFor(const ClusterSpec& cluster) {
  return EntryFor(cluster).bank;
}

GroundTruthExecutor MakeDeploymentExecutor(const Setup& setup, const TrainConfig& config) {
  // Per-deployment noise seed: each configuration's run sees its own
  // measurement noise, like separate real-cluster runs would.
  return GroundTruthExecutor(setup.cluster, FnvHash(config.CacheKey()));
}

ActualOutcome DeployOnGroundTruth(const Setup& setup, const TrainConfig& config) {
  ActualOutcome outcome;
  GroundTruthExecutor executor = MakeDeploymentExecutor(setup, config);

  LaunchOptions launch;
  launch.selective_launch =
      config.framework == ParallelFramework::kMegatron &&
      setup.model.family != ModelFamily::kResNet;
  Result<LaunchResult> launched = EmulateJob(setup.model, config, setup.cluster, launch);
  CHECK(launched.ok()) << launched.status().ToString();
  if (launched->oom) {
    outcome.oom = true;
    return outcome;
  }
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  CHECK(job.ok()) << job.status().ToString();
  Result<SimReport> report = executor.Execute(*job);
  CHECK(report.ok()) << report.status().ToString();
  outcome.iteration_us = report->total_time_us;
  outcome.mfu =
      ComputeMfu(setup.model, config.global_batch_size, setup.cluster, outcome.iteration_us);
  outcome.peak_memory = report->peak_memory_bytes;
  return outcome;
}

PredictionStudy RunPredictionStudy(const Setup& setup, EstimatorCache& cache,
                                   int max_evaluations, int top_n) {
  PredictionStudy study;
  study.setup = setup;
  const ConfigSpace space = ConfigSpace::MegatronTable5(DefaultGlobalBatch(setup.model));

  std::vector<TrainConfig> valid;
  for (const TrainConfig& config : space.EnumerateAll()) {
    if (config.Validate(setup.model, setup.cluster).ok()) {
      valid.push_back(config);
    }
  }
  study.valid_configs = static_cast<int>(valid.size());

  // Deterministic stride-subsample to bound bench runtime.
  std::vector<TrainConfig> evaluate;
  const size_t stride =
      std::max<size_t>(1, valid.size() / static_cast<size_t>(max_evaluations));
  for (size_t i = 0; i < valid.size(); i += stride) {
    evaluate.push_back(valid[i]);
  }

  struct Deployed {
    TrainConfig config;
    double actual_us;
  };
  std::vector<Deployed> deployed;
  for (const TrainConfig& config : evaluate) {
    const ActualOutcome outcome = DeployOnGroundTruth(setup, config);
    ++study.evaluated_configs;
    if (outcome.oom) {
      ++study.oom_configs;
      continue;
    }
    deployed.push_back({config, outcome.iteration_us});
  }
  std::sort(deployed.begin(), deployed.end(),
            [](const Deployed& a, const Deployed& b) { return a.actual_us < b.actual_us; });
  if (static_cast<int>(deployed.size()) > top_n) {
    deployed.resize(static_cast<size_t>(top_n));
  }

  MayaPipeline& pipeline = cache.PipelineFor(setup.cluster);
  ProteusLike proteus;
  CalculonLike calculon;
  AmpedLike amped;
  for (const Deployed& entry : deployed) {
    StudyRow row;
    row.config = entry.config;
    row.actual_us = entry.actual_us;
    PredictionRequest request;
    request.model = setup.model;
    request.config = entry.config;
    request.selective_launch = true;
    Result<PredictionReport> prediction = pipeline.Predict(request);
    CHECK(prediction.ok()) << prediction.status().ToString();
    CHECK(!prediction->oom) << "Maya predicted OOM for a config that ran: "
                            << entry.config.Summary() << " — " << prediction->oom_detail;
    row.maya_us = prediction->iteration_time_us;
    auto baseline_predict = [&](const PerformanceModel& model) {
      if (!model.SupportsConfig(entry.config) ||
          !model.SupportsArch(setup.cluster.gpu.arch)) {
        return 0.0;
      }
      Result<BaselinePrediction> result =
          model.Predict(setup.model, entry.config, setup.cluster);
      return result.ok() ? result->iteration_us : 0.0;
    };
    row.proteus_us = baseline_predict(proteus);
    row.calculon_us = baseline_predict(calculon);
    row.amped_us = baseline_predict(amped);
    study.rows.push_back(row);
  }
  return study;
}

std::vector<double> PercentErrors(const PredictionStudy& study, const char* system) {
  std::vector<double> errors;
  for (const StudyRow& row : study.rows) {
    double predicted = 0.0;
    const std::string name = system;
    if (name == "maya") {
      predicted = row.maya_us;
    } else if (name == "proteus") {
      predicted = row.proteus_us;
    } else if (name == "calculon") {
      predicted = row.calculon_us;
    } else if (name == "amped") {
      predicted = row.amped_us;
    }
    if (predicted > 0.0) {
      errors.push_back(std::abs(predicted - row.actual_us) / row.actual_us * 100.0);
    }
  }
  return errors;
}

}  // namespace bench
}  // namespace maya
