// Figure 7: predicted vs actual per-iteration runtime for the top valid
// configurations, across the four evaluation setups. Also prints the
// per-system error summary the figure caption quotes (Maya within ~5%).
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"

namespace maya {
namespace bench {
namespace {

void RunSetup(const Setup& setup, EstimatorCache& cache) {
  PrintBanner(std::cout, "Figure 7: prediction accuracy — " + setup.label);
  const PredictionStudy study = RunPredictionStudy(setup, cache);
  std::cout << "valid configs: " << study.valid_configs
            << ", deployed: " << study.evaluated_configs << " (OOM: " << study.oom_configs
            << "), plotted: " << study.rows.size() << "\n";

  TablePrinter table({"cfg", "config", "actual", "Maya", "Proteus", "Calculon", "AMPeD"});
  auto cell = [](double us) { return us > 0.0 ? StrFormat("%.3f s", us / 1e6) : "n/s"; };
  for (size_t i = 0; i < study.rows.size(); ++i) {
    if (i % 5 != 0) {
      continue;  // print every 5th row; the summary covers all of them
    }
    const StudyRow& row = study.rows[i];
    table.AddRow({StrFormat("%zu", i), row.config.Summary(), cell(row.actual_us),
                  cell(row.maya_us), cell(row.proteus_us), cell(row.calculon_us),
                  cell(row.amped_us)});
  }
  table.Print(std::cout);

  TablePrinter summary({"system", "configs", "median err%", "p90 err%", "max err%"});
  for (const char* system : {"maya", "proteus", "calculon", "amped"}) {
    std::vector<double> errors = PercentErrors(study, system);
    if (errors.empty()) {
      summary.AddRow({system, "0", "-", "-", "-"});
      continue;
    }
    summary.AddRow({system, StrFormat("%zu", errors.size()),
                    StrFormat("%.1f", Median(errors)),
                    StrFormat("%.1f", Percentile(errors, 90.0)),
                    StrFormat("%.1f", Percentile(errors, 100.0))});
  }
  summary.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace maya

int main() {
  maya::bench::EstimatorCache cache;
  for (const auto& setup :
       {maya::bench::Gpt2_7B_8xV100(), maya::bench::Gpt2_7B_16xV100(),
        maya::bench::Gpt18_4B_32xH100(), maya::bench::Gpt18_4B_64xH100()}) {
    maya::bench::RunSetup(setup, cache);
  }
  return 0;
}
