// Figure 10: ResNet152 on the 8xA40 node — heterogeneous GPU links and
// torch.compile-generated Triton kernels — predicted vs actual across DDP
// configurations.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"

int main() {
  using namespace maya;
  using namespace maya::bench;

  Setup setup{"ResNet152 - 8xA40", ResNet152(), A40Node()};
  EstimatorCache cache;
  MayaPipeline& pipeline = cache.PipelineFor(setup.cluster);

  struct Entry {
    TrainConfig config;
    double actual_us;
    double maya_us;
  };
  std::vector<Entry> entries;
  for (int64_t batch : {128, 256, 512, 1024}) {
    for (int mult : {1, 2, 4}) {
      for (bool compile : {false, true}) {
        TrainConfig config;
        config.framework = ParallelFramework::kDdp;
        config.global_batch_size = batch;
        config.microbatch_multiplier = mult;
        config.torch_compile = compile;
        if (!config.Validate(setup.model, setup.cluster).ok()) {
          continue;
        }
        const ActualOutcome actual = DeployOnGroundTruth(setup, config);
        if (actual.oom) {
          continue;
        }
        PredictionRequest request{setup.model, config};
        Result<PredictionReport> prediction = pipeline.Predict(request);
        CHECK(prediction.ok()) << prediction.status().ToString();
        entries.push_back({config, actual.iteration_us, prediction->iteration_time_us});
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.actual_us < b.actual_us; });

  PrintBanner(std::cout, "Figure 10: ResNet152 on 8xA40 — predicted vs actual");
  TablePrinter table({"cfg", "batch", "microbatches", "compile", "actual", "Maya", "err%"});
  std::vector<double> errors;
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& entry = entries[i];
    const double error =
        std::abs(entry.maya_us - entry.actual_us) / entry.actual_us * 100.0;
    errors.push_back(error);
    table.AddRow({StrFormat("%zu", i),
                  StrFormat("%lld", static_cast<long long>(entry.config.global_batch_size)),
                  StrFormat("%d", entry.config.num_microbatches()),
                  entry.config.torch_compile ? "yes" : "no",
                  StrFormat("%.3f s", entry.actual_us / 1e6),
                  StrFormat("%.3f s", entry.maya_us / 1e6), StrFormat("%.2f", error)});
  }
  table.Print(std::cout);
  int under_five = 0;
  for (double error : errors) {
    under_five += error < 5.0 ? 1 : 0;
  }
  std::cout << StrFormat("median error %.2f%%; %.0f%% of configs under 5%% error\n",
                         Median(errors),
                         100.0 * under_five / static_cast<double>(errors.size()));
  return 0;
}
