// Figure 12: hyperscale data-parallel scaling of GPT-3 145.6B with TP8/PP8
// fixed (12K global batch, 64 microbatches), 1K to 12K GPUs. Virtual folded
// ranks emulate only the 8 analytically-unique workers (no per-rank comm
// stubs); collectives are priced by the ASTRA-sim-like hierarchical network
// model. The expected
// shape is sublinear scaling — MFU decays as inter-node communication
// dominates.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"
#include "src/estimator/collective_estimator.h"

int main() {
  using namespace maya;
  using namespace maya::bench;

  const ModelConfig model = Gpt3_145_6B();
  EstimatorCache cache;
  PrintBanner(std::cout, "Figure 12: MFU and iteration time when scaling DP (GPT-3 145.6B, "
                         "TP8 PP8, 12K batch, 64 microbatches)");
  TablePrinter table({"GPUs", "DP", "microbatch", "iteration", "MFU"});
  AstraLikeNetworkModel astra;
  NetworkModelCollectiveEstimator astra_estimator(&astra);

  for (int dp : {16, 32, 48, 64, 96, 192}) {
    const int gpus = dp * 64;
    const ClusterSpec cluster = H100Cluster(gpus);
    // Kernel estimators transfer across cluster sizes of the same arch; the
    // network model replaces the profiled collective tables (§7.4).
    EstimatorBank& bank = cache.BankFor(H100Cluster(64));
    MayaPipeline pipeline(cluster, bank.kernel.get(), &astra_estimator);

    TrainConfig config;
    config.global_batch_size = 12288;
    config.tensor_parallel = 8;
    config.pipeline_parallel = 8;
    config.microbatch_multiplier = 8;  // 64 microbatches
    config.sequence_parallel = true;
    config.activation_recomputation = true;
    config.distributed_optimizer = true;
    CHECK(config.Validate(model, cluster).ok()) << config.Summary();

    PredictionRequest request{model, config};
    // Virtual folded ranks: only the 8 analytically-unique workers exist at
    // any point (bit-identical to materialized selective launch, which would
    // still materialize one comm-init stub per rank).
    request.virtual_folds = true;
    Result<PredictionReport> report = pipeline.Predict(request);
    CHECK(report.ok()) << report.status().ToString();
    CHECK(!report->oom) << report->oom_detail;
    table.AddRow({StrFormat("%d", gpus), StrFormat("%d", dp),
                  StrFormat("%lld", static_cast<long long>(config.microbatch_size(gpus))),
                  StrFormat("%.2f s", report->iteration_time_us / 1e6),
                  StrFormat("%.1f%%", report->mfu * 100.0)});
  }
  table.Print(std::cout);
  return 0;
}
