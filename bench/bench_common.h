// Shared machinery for the paper-reproduction benches: evaluation setups,
// estimator-bank caching, ground-truth "deployment" of configurations, and
// the prediction study used by Figs. 7/8/9.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/performance_model.h"
#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/models/model_zoo.h"
#include "src/search/config_space.h"

namespace maya {
namespace bench {

// One evaluation scenario of §7.1 (model x cluster).
struct Setup {
  std::string label;
  ModelConfig model;
  ClusterSpec cluster;
};

Setup Gpt2_7B_8xV100();
Setup Gpt2_7B_16xV100();
Setup Gpt18_4B_32xH100();
Setup Gpt18_4B_64xH100();

// Lazily trains and caches one estimator bank + pipeline per cluster
// (kernel sweeps depend on the GPU type; collective sweeps depend on the
// cluster topology, so the cache key is the full cluster shape).
class EstimatorCache {
 public:
  MayaPipeline& PipelineFor(const ClusterSpec& cluster);
  EstimatorBank& BankFor(const ClusterSpec& cluster);

 private:
  struct Entry {
    std::unique_ptr<GroundTruthExecutor> profiling_executor;
    EstimatorBank bank;
    std::unique_ptr<MayaPipeline> pipeline;
  };
  Entry& EntryFor(const ClusterSpec& cluster);
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

// The ground-truth executor a given deployment runs on (per-config noise
// seed): oracle-mode predictions must consult the same executor.
GroundTruthExecutor MakeDeploymentExecutor(const Setup& setup, const TrainConfig& config);

// "Deploys" a configuration on the reference cluster and measures it.
struct ActualOutcome {
  bool oom = false;
  double iteration_us = 0.0;
  double mfu = 0.0;
  uint64_t peak_memory = 0;
};
ActualOutcome DeployOnGroundTruth(const Setup& setup, const TrainConfig& config);

// Per-config prediction study row (Fig. 7 / 8 / 9 substrate).
struct StudyRow {
  TrainConfig config;
  double actual_us = 0.0;
  double maya_us = 0.0;
  double proteus_us = 0.0;   // 0 = unsupported
  double calculon_us = 0.0;
  double amped_us = 0.0;
};

struct PredictionStudy {
  Setup setup;
  std::vector<StudyRow> rows;  // sorted by actual_us ascending (top-N first)
  int valid_configs = 0;
  int evaluated_configs = 0;
  int oom_configs = 0;
};

// Enumerates the Table 5 space, deploys a (deterministically strided) subset
// of at most `max_evaluations` valid configurations on ground truth, keeps
// the fastest `top_n`, and attaches every system's prediction.
PredictionStudy RunPredictionStudy(const Setup& setup, EstimatorCache& cache,
                                   int max_evaluations = 250, int top_n = 100);

// Percent errors per system over the study rows (absolute, %).
std::vector<double> PercentErrors(const PredictionStudy& study, const char* system);

}  // namespace bench
}  // namespace maya

#endif  // BENCH_BENCH_COMMON_H_
