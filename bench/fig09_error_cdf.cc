// Figure 9: cumulative distribution of absolute prediction errors per
// system, on the smallest and largest setups (8xV100 / 64xH100). The paper's
// headline: Maya <1% error for 65% of configs on V100, <10% for ~90% on
// 64xH100, while baselines sit in the 10-1000% band.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"

namespace maya {
namespace bench {
namespace {

void RunSetup(const Setup& setup, EstimatorCache& cache) {
  PrintBanner(std::cout, "Figure 9: error CDF — " + setup.label);
  const PredictionStudy study = RunPredictionStudy(setup, cache);
  TablePrinter table({"CDF", "Maya err%", "Proteus err%", "Calculon err%", "AMPeD err%"});
  for (double percentile : {10.0, 25.0, 50.0, 65.0, 75.0, 90.0, 95.0, 100.0}) {
    std::vector<std::string> row = {StrFormat("%.0f%%", percentile)};
    for (const char* system : {"maya", "proteus", "calculon", "amped"}) {
      std::vector<double> errors = PercentErrors(study, system);
      row.push_back(errors.empty() ? "-"
                                   : StrFormat("%.2f", Percentile(errors, percentile)));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  const std::vector<double> maya_errors = PercentErrors(study, "maya");
  int below_ten = 0;
  for (double error : maya_errors) {
    below_ten += error < 10.0 ? 1 : 0;
  }
  std::cout << StrFormat("Maya: %.0f%% of configurations under 10%% error\n",
                         100.0 * below_ten / static_cast<double>(maya_errors.size()));
}

}  // namespace
}  // namespace bench
}  // namespace maya

int main() {
  maya::bench::EstimatorCache cache;
  maya::bench::RunSetup(maya::bench::Gpt2_7B_8xV100(), cache);
  maya::bench::RunSetup(maya::bench::Gpt18_4B_64xH100(), cache);
  return 0;
}
