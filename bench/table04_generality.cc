// Table 4: framework/optimization generality matrix. Runs the unmodified
// training scripts of nine model architectures under DeepSpeed ZeRO 1-3,
// activation offload, DDP, FSDP and torch.compile, verifying that emulation
// runs and produces traces — including the host-device transfers of the
// offload paths and the mocked small copies that keep verification checks
// alive (§7.2).
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"

namespace maya {
namespace bench {
namespace {

struct Variant {
  const char* label;
  ParallelFramework framework;
  int zero_stage;
  bool offload;
  bool compile;
};

}  // namespace
}  // namespace bench
}  // namespace maya

int main() {
  using namespace maya;
  using namespace maya::bench;

  const std::vector<Variant> variants = {
      {"DDP", ParallelFramework::kDdp, 0, false, false},
      {"DeepSpeed ZeRO-1", ParallelFramework::kDeepSpeed, 1, false, false},
      {"DeepSpeed ZeRO-2", ParallelFramework::kDeepSpeed, 2, false, false},
      {"DeepSpeed ZeRO-3", ParallelFramework::kDeepSpeed, 3, false, false},
      {"ZeRO-1 + Act. Offload", ParallelFramework::kDeepSpeed, 1, true, false},
      {"FSDP", ParallelFramework::kFsdp, 0, false, false},
      {"torch.compile + DDP", ParallelFramework::kDdp, 0, false, true},
  };

  PrintBanner(std::cout, "Table 4: emulation generality across frameworks and models");
  TablePrinter table({"model", "optimization", "traces", "api calls", "kernels",
                      "offload copies", "mocked small copies"});
  for (const ModelConfig& model : GeneralityZoo()) {
    const bool vision = model.family == ModelFamily::kResNet;
    const ClusterSpec cluster = vision ? A40Node() : H100Cluster(8);
    for (const Variant& variant : variants) {
      if (vision && (variant.framework != ParallelFramework::kDdp)) {
        continue;  // conv models run the DDP / compile paths
      }
      TrainConfig config;
      config.framework = variant.framework;
      config.zero_stage = variant.zero_stage;
      config.activation_offload = variant.offload;
      config.torch_compile = variant.compile;
      config.global_batch_size = vision ? 256 : 16;
      config.microbatch_multiplier = vision ? 1 : 2;
      config.activation_recomputation = !vision;
      if (!config.Validate(model, cluster).ok()) {
        continue;
      }
      Result<LaunchResult> launched = EmulateJob(model, config, cluster);
      if (!launched.ok()) {
        table.AddRow({model.name, variant.label, "ERROR", "-", "-", "-", "-"});
        continue;
      }
      if (launched->oom) {
        table.AddRow({model.name, variant.label, "OOM", "-", "-", "-", "-"});
        continue;
      }
      size_t kernels = 0;
      size_t offload_copies = 0;
      for (const WorkerTrace& trace : launched->traces) {
        kernels += trace.KernelLaunchCount();
        for (const TraceOp& op : trace.ops) {
          if (op.type == TraceOpType::kKernelLaunch &&
              (op.kernel.kind == KernelKind::kMemcpyD2H ||
               op.kernel.kind == KernelKind::kMemcpyH2D)) {
            ++offload_copies;
          }
        }
      }
      table.AddRow({model.name, variant.label, "yes",
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          launched->total_api_calls)),
                    StrFormat("%zu", kernels), StrFormat("%zu", offload_copies),
                    "passes"});
    }
  }
  table.Print(std::cout);
  return 0;
}
