// Figure 11: end-to-end configuration search — (a) wall-clock runtime of
// Maya-Search with all optimizations (CMA-ES, dedup, pruning, caching, early
// stopping) and (b) the cost of the found configuration normalized to the
// grid-search (Maya-Grid) optimum, evaluated on the ground-truth cluster.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"
#include "src/search/search_driver.h"

int main() {
  using namespace maya;
  using namespace maya::bench;

  EstimatorCache cache;
  PrintBanner(std::cout, "Figure 11: configuration search runtime and fidelity");
  TablePrinter table({"setup", "search time", "trials (exec/cached/skip)", "CMA best",
                      "grid best", "norm. cost"});
  for (const Setup& setup : {Gpt2_7B_8xV100(), Gpt2_7B_16xV100(), Gpt18_4B_32xH100(),
                             Gpt18_4B_64xH100()}) {
    MayaPipeline& pipeline = cache.PipelineFor(setup.cluster);
    const ConfigSpace space = ConfigSpace::MegatronTable5(DefaultGlobalBatch(setup.model));

    SearchOptions cma_options;
    cma_options.algorithm = "cma";
    cma_options.sample_budget = 2000;
    cma_options.early_stop_patience = 20;
    cma_options.seed = 17;
    const SearchOutcome cma = *RunSearch(pipeline, setup.model, space, cma_options);

    SearchOptions grid_options;
    grid_options.algorithm = "grid";
    grid_options.sample_budget = static_cast<int>(space.size());
    grid_options.early_stop_patience = 0;
    const SearchOutcome grid = *RunSearch(pipeline, setup.model, space, grid_options);

    CHECK(cma.found);
    CHECK(grid.found);
    const ActualOutcome cma_actual = DeployOnGroundTruth(setup, cma.best_config);
    const ActualOutcome grid_actual = DeployOnGroundTruth(setup, grid.best_config);
    CHECK(!cma_actual.oom);
    CHECK(!grid_actual.oom);

    table.AddRow({setup.label, StrFormat("%.1f min", cma.wall_ms / 60e3),
                  StrFormat("%d/%d/%d", cma.executed, cma.cached, cma.skipped),
                  cma.best_config.Summary(), grid.best_config.Summary(),
                  StrFormat("%.3f", cma_actual.iteration_us / grid_actual.iteration_us)});
  }
  table.Print(std::cout);
  std::cout << "(norm. cost = actual cost of CMA-selected config / actual cost of the\n"
               " Maya-Grid selected config; the paper's Fig. 11b band is 0.95-1.10)\n";
  return 0;
}
