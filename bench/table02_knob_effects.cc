// Table 2: effect of each configuration knob on per-device compute
// utilization, memory load and network load at fixed global batch size.
// Measured by deploying knob-toggled variants of a reference recipe on the
// ground-truth cluster and diffing per-GPU compute-busy time, peak memory
// and collective payload volume.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"
#include "src/trace/collator.h"

namespace maya {
namespace bench {
namespace {

struct Load {
  bool oom = false;
  double compute_busy_us = 0.0;
  double peak_gib = 0.0;
  double comm_gib = 0.0;  // collective payload per GPU
};

Load MeasureLoad(const Setup& setup, const TrainConfig& config) {
  Load load;
  Result<LaunchResult> launched = EmulateJob(setup.model, config, setup.cluster);
  CHECK(launched.ok()) << launched.status().ToString();
  if (launched->oom) {
    load.oom = true;
    return load;
  }
  double comm_bytes = 0.0;
  double peak = 0.0;
  for (const WorkerTrace& trace : launched->traces) {
    peak = std::max(peak, static_cast<double>(trace.peak_device_bytes));
    for (const TraceOp& op : trace.ops) {
      if (op.type == TraceOpType::kCollective) {
        comm_bytes += static_cast<double>(op.collective.bytes);
      }
    }
  }
  load.comm_gib = comm_bytes / launched->traces.size() / (1024.0 * 1024.0 * 1024.0);
  load.peak_gib = peak / (1024.0 * 1024.0 * 1024.0);

  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  CHECK(job.ok());
  GroundTruthExecutor executor = MakeDeploymentExecutor(setup, config);
  Result<SimReport> report = executor.Execute(*job);
  CHECK(report.ok()) << report.status().ToString();
  double busy = 0.0;
  for (const WorkerSimReport& worker : report->workers) {
    busy += worker.compute_busy_us;
  }
  load.compute_busy_us = busy / report->workers.size();
  return load;
}

const char* Arrow(double delta, double tolerance) {
  if (delta > tolerance) {
    return "UP";
  }
  if (delta < -tolerance) {
    return "DOWN";
  }
  return "-";
}

}  // namespace
}  // namespace bench
}  // namespace maya

int main() {
  using namespace maya;
  using namespace maya::bench;

  // GPT-3 18.4B on 32xH100: large enough that every knob matters.
  Setup setup{"GPT3 18.4B - 32xH100", Gpt3_18_4B(), H100Cluster(32)};
  TrainConfig reference;
  reference.global_batch_size = 512;
  reference.tensor_parallel = 4;
  reference.pipeline_parallel = 2;
  reference.microbatch_multiplier = 8;
  reference.activation_recomputation = true;

  struct KnobRow {
    const char* knob;
    TrainConfig variant;
  };
  std::vector<KnobRow> rows;
  {
    TrainConfig v = reference;  // higher DP at fixed batch (drop TP)
    v.tensor_parallel = 2;
    rows.push_back({"Data Parallel (x2)", v});
  }
  {
    TrainConfig v = reference;
    v.tensor_parallel = 8;
    rows.push_back({"Tensor Parallel (x2)", v});
  }
  {
    TrainConfig v = reference;
    v.pipeline_parallel = 4;
    v.microbatch_multiplier = 4;  // keep microbatch count fixed
    rows.push_back({"Pipeline Parallel (x2)", v});
  }
  {
    TrainConfig v = reference;
    v.sequence_parallel = true;
    rows.push_back({"Sequence Parallel (on)", v});
  }
  {
    TrainConfig v = reference;
    v.virtual_pipeline_stages = 2;
    rows.push_back({"Pipeline Interleaving (x2)", v});
  }
  {
    TrainConfig v = reference;
    v.distributed_optimizer = true;
    rows.push_back({"Distributed Optimizer (on)", v});
  }
  {
    TrainConfig v = reference;
    v.activation_recomputation = false;  // reference already recomputes
    rows.push_back({"Activation Recomputation (OFF)", v});
  }
  {
    TrainConfig v = reference;
    v.microbatch_multiplier = 4;  // fewer, larger microbatches
    rows.push_back({"Gradient Accumulation (x1/2)", v});
  }

  PrintBanner(std::cout, "Table 2: knob effects on per-GPU compute / memory / network load");
  const Load base = MeasureLoad(setup, reference);
  std::cout << StrFormat("reference %s: compute %.0f ms, mem %.1f GiB, comm %.1f GiB\n",
                         reference.Summary().c_str(), base.compute_busy_us / 1e3,
                         base.peak_gib, base.comm_gib);
  TablePrinter table({"knob", "compute", "memory", "network", "detail"});
  for (const auto& row : rows) {
    if (!row.variant.Validate(setup.model, setup.cluster).ok()) {
      table.AddRow({row.knob, "-", "-", "-", "invalid"});
      continue;
    }
    const Load load = MeasureLoad(setup, row.variant);
    if (load.oom) {
      table.AddRow({row.knob, "-", "OOM", "-", row.variant.Summary()});
      continue;
    }
    table.AddRow({row.knob, Arrow(load.compute_busy_us - base.compute_busy_us,
                                  0.02 * base.compute_busy_us),
                  Arrow(load.peak_gib - base.peak_gib, 0.02 * base.peak_gib),
                  Arrow(load.comm_gib - base.comm_gib, 0.02 * base.comm_gib),
                  StrFormat("compute %.0f ms, mem %.1f GiB, comm %.1f GiB",
                            load.compute_busy_us / 1e3, load.peak_gib, load.comm_gib)});
  }
  table.Print(std::cout);
  return 0;
}
