// Table 6: per-stage and total configuration-search runtime on the 32xH100
// GPT-3 18.4B spec, with and without Maya's optimizations (CMA-ES + worker
// dedup + pruning + caching vs grid search over every GPU, no dedup). The
// unoptimized total is extrapolated from a measured sample — the paper
// reports it exceeds 24 hours on their hardware.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"
#include "src/search/search_driver.h"

int main() {
  using namespace maya;
  using namespace maya::bench;

  const Setup setup = Gpt18_4B_32xH100();
  EstimatorCache cache;
  MayaPipeline& pipeline = cache.PipelineFor(setup.cluster);
  const ConfigSpace space = ConfigSpace::MegatronTable5(DefaultGlobalBatch(setup.model));

  // ---- Optimized: CMA + dedup + pruning + cache + early stop ------------------
  SearchOptions optimized;
  optimized.algorithm = "cma";
  optimized.sample_budget = 2000;
  optimized.early_stop_patience = 20;
  optimized.seed = 31;
  const SearchOutcome maya = *RunSearch(pipeline, setup.model, space, optimized);

  // ---- Unoptimized sample: grid order, no dedup, no pruning -------------------
  // The estimate cache is one of Maya's optimizations (and was warmed by the
  // optimized search above), so the unoptimized arm runs on a cache-free
  // pipeline built from the same estimator bank.
  EstimatorBank& bank = cache.BankFor(setup.cluster);
  MayaPipelineOptions unopt_options;
  unopt_options.enable_estimate_cache = false;
  // The component-partitioned simulator and its cross-trial cache are also
  // Maya optimizations; the unoptimized arm replays the whole cluster
  // sequentially (worker dedup in the simulator is already off via the
  // request's deduplicate_workers=false).
  unopt_options.enable_sim_cache = false;
  unopt_options.partition_simulation = false;
  MayaPipeline unopt_pipeline(setup.cluster, bank.kernel.get(), bank.collective.get(),
                              unopt_options);
  int valid_count = 0;
  for (const TrainConfig& config : space.EnumerateAll()) {
    if (config.Validate(setup.model, setup.cluster).ok()) {
      ++valid_count;
    }
  }
  // Deterministically strided sample of the valid configs so fast-OOM and
  // full trials appear in representative proportion — the grid-order prefix
  // is all fast-OOM configs, which would zero out the per-trial costs, while
  // excluding OOM entirely would overstate them (the Maya arm's per-trial
  // average includes its OOM trials too).
  constexpr int kSample = 10;
  const int stride = std::max(1, (valid_count + kSample - 1) / kSample);
  StageTimings unopt_sample;
  int sampled = 0;
  int valid_seen = 0;
  for (const TrainConfig& config : space.EnumerateAll()) {
    if (sampled >= kSample) {
      break;
    }
    if (!config.Validate(setup.model, setup.cluster).ok()) {
      continue;
    }
    if (valid_seen++ % stride != 0) {
      continue;
    }
    PredictionRequest request{setup.model, config};
    request.deduplicate_workers = false;
    Result<PredictionReport> report = unopt_pipeline.Predict(request);
    CHECK(report.ok());
    unopt_sample.emulation_ms += report->timings.emulation_ms;
    unopt_sample.collation_ms += report->timings.collation_ms;
    unopt_sample.estimation_ms += report->timings.estimation_ms;
    unopt_sample.simulation_ms += report->timings.simulation_ms;
    ++sampled;
  }

  PrintBanner(std::cout, "Table 6: search runtime with and without optimizations "
                         "(GPT-3 18.4B, 32xH100 spec)");
  TablePrinter table({"stage", "Maya (per trial)", "No optimization (per trial)"});
  const double executed = std::max(1, maya.executed);
  const double unopt_trials = std::max(1, sampled);  // enumeration may exhaust early
  auto row = [&](const char* stage, double maya_total, double unopt_total) {
    table.AddRow({stage, StrFormat("%.0f ms", maya_total / executed),
                  StrFormat("%.0f ms", unopt_total / unopt_trials)});
  };
  row("Emulation", maya.stage_totals.emulation_ms, unopt_sample.emulation_ms);
  row("Trace collation", maya.stage_totals.collation_ms, unopt_sample.collation_ms);
  row("Runtime prediction", maya.stage_totals.estimation_ms, unopt_sample.estimation_ms);
  row("Simulation", maya.stage_totals.simulation_ms, unopt_sample.simulation_ms);
  table.Print(std::cout);

  const double unopt_total_min =
      unopt_sample.total_ms() / unopt_trials * valid_count / 60e3;
  std::cout << StrFormat(
      "Total search time: Maya %.1f min (%d executed, %d skipped, %d cached of %d valid)\n"
      "                   no-optimization grid (extrapolated over %d valid configs): "
      ">%.0f min\n",
      maya.wall_ms / 60e3, maya.executed, maya.skipped, maya.cached, valid_count, valid_count,
      unopt_total_min);
  // The cross-trial estimate cache is one of the measured optimizations:
  // report how much of the Maya arm's prediction work it absorbed (the
  // unoptimized arm runs cache-free, i.e. 0% by construction).
  std::cout << StrFormat(
      "Estimate-cache hit rate: Maya %.1f%% (%llu hits / %llu lookups across %d trials); "
      "no-optimization arm 0%% (cache disabled)\n",
      maya.estimation_totals.hit_rate() * 100.0,
      static_cast<unsigned long long>(maya.estimation_totals.cache_hits),
      static_cast<unsigned long long>(maya.estimation_totals.cache_hits +
                                      maya.estimation_totals.cache_misses),
      maya.executed);
  std::cout << StrFormat(
      "Simulation stage: Maya folded %llu/%llu workers, replayed %llu of %llu components "
      "(%llu sim-cache hits); no-optimization arm replays every worker sequentially\n",
      static_cast<unsigned long long>(maya.simulation_totals.folded_workers),
      static_cast<unsigned long long>(maya.simulation_totals.workers),
      static_cast<unsigned long long>(maya.simulation_totals.simulated_components),
      static_cast<unsigned long long>(maya.simulation_totals.components),
      static_cast<unsigned long long>(maya.simulation_totals.cache_hits));
  return 0;
}
