// Figure 16 (Appendix C): search algorithm comparison — best MFU found as a
// function of unique valid configurations sampled, for CMA-ES, (1+1)-ES,
// PSO, two-points DE, random and grid search, each with a 2000-sample
// budget. The paper's observation: general-purpose algorithms converge
// near-optimal after 200-300 unique valid configs, a 60-75% improvement
// over grid search.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"
#include "src/search/search_driver.h"

namespace maya {
namespace bench {
namespace {

double BestAtUnique(const SearchOutcome& outcome, int unique_target) {
  double best = 0.0;
  for (const auto& [unique, mfu] : outcome.progress) {
    if (unique > unique_target) {
      break;
    }
    best = mfu;
  }
  return best;
}

void RunSetup(const Setup& setup, EstimatorCache& cache) {
  MayaPipeline& pipeline = cache.PipelineFor(setup.cluster);
  const ConfigSpace space = ConfigSpace::MegatronTable5(DefaultGlobalBatch(setup.model));
  PrintBanner(std::cout, "Figure 16: search algorithm comparison — " + setup.label);

  const std::vector<int> checkpoints = {25, 50, 100, 200, 300, 450, 600};
  TablePrinter table({"algorithm", "@25", "@50", "@100", "@200", "@300", "@450", "@600",
                      "final best", "unique"});
  double optimal = 0.0;
  std::vector<std::pair<std::string, SearchOutcome>> outcomes;
  for (const char* algorithm :
       {"cma", "one-plus-one", "pso", "two-points-de", "random", "grid"}) {
    SearchOptions options;
    options.algorithm = algorithm;
    options.sample_budget = 2000;
    options.early_stop_patience = 0;  // the appendix experiment runs the budget out
    options.seed = 41;
    const SearchOutcome outcome = *RunSearch(pipeline, setup.model, space, options);
    optimal = std::max(optimal, outcome.best_mfu);
    outcomes.emplace_back(algorithm, outcome);
  }
  for (const auto& [algorithm, outcome] : outcomes) {
    std::vector<std::string> row = {algorithm};
    for (int checkpoint : checkpoints) {
      row.push_back(StrFormat("%.1f%%", BestAtUnique(outcome, checkpoint) * 100.0));
    }
    row.push_back(StrFormat("%.1f%%", outcome.best_mfu * 100.0));
    row.push_back(StrFormat("%d", outcome.unique_valid));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << StrFormat("best MFU across algorithms (reference optimum): %.1f%%\n",
                         optimal * 100.0);
}

}  // namespace
}  // namespace bench
}  // namespace maya

int main() {
  maya::bench::EstimatorCache cache;
  maya::bench::RunSetup(maya::bench::Gpt2_7B_8xV100(), cache);
  maya::bench::RunSetup(maya::bench::Gpt18_4B_64xH100(), cache);
  return 0;
}
