// Figure 8: cost of the configuration each system selects, normalized to the
// optimal configuration's cost. Prediction error translates directly into
// deployment cost: the paper measures Maya within 0-2% of optimal, Proteus
// +5-17%, Calculon +10-15%, AMPeD up to +56%.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/baselines/amped_like.h"
#include "src/baselines/calculon_like.h"
#include "src/baselines/proteus_like.h"
#include "src/common/table_printer.h"

namespace maya {
namespace bench {
namespace {

void RunSetup(const Setup& setup, EstimatorCache& cache) {
  PrintBanner(std::cout, "Figure 8: configuration selection cost — " + setup.label);
  // Evaluate a wide slice and keep every runnable config (not just top-100):
  // systems may select anywhere in the space.
  const PredictionStudy study =
      RunPredictionStudy(setup, cache, /*max_evaluations=*/250, /*top_n=*/100000);
  CHECK(!study.rows.empty());
  const double optimal_us = study.rows.front().actual_us;  // rows sorted by actual

  struct Selection {
    const char* system;
    double predicted(const StudyRow& row) const {
      const std::string name = system;
      if (name == "Maya") {
        return row.maya_us;
      }
      if (name == "Proteus") {
        return row.proteus_us;
      }
      if (name == "Calculon") {
        return row.calculon_us;
      }
      return row.amped_us;
    }
  };

  TablePrinter table({"system", "selected config", "actual cost", "vs optimal"});
  table.AddRow({"Optimal", study.rows.front().config.Summary(),
                StrFormat("%.3f s", optimal_us / 1e6), "+0%"});
  for (const char* system : {"Maya", "Proteus", "Calculon", "AMPeD"}) {
    const Selection selection{system};
    const StudyRow* best = nullptr;
    for (const StudyRow& row : study.rows) {
      const double predicted = selection.predicted(row);
      if (predicted <= 0.0) {
        continue;  // outside this system's modeling domain
      }
      if (best == nullptr || predicted < selection.predicted(*best)) {
        best = &row;
      }
    }
    if (best == nullptr) {
      table.AddRow({system, "(architecture unsupported)", "-", "-"});
      continue;
    }
    const double overhead = (best->actual_us / optimal_us - 1.0) * 100.0;
    table.AddRow({system, best->config.Summary(), StrFormat("%.3f s", best->actual_us / 1e6),
                  StrFormat("%+.0f%%", overhead)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace maya

int main() {
  maya::bench::EstimatorCache cache;
  for (const auto& setup :
       {maya::bench::Gpt2_7B_8xV100(), maya::bench::Gpt2_7B_16xV100(),
        maya::bench::Gpt18_4B_32xH100(), maya::bench::Gpt18_4B_64xH100()}) {
    maya::bench::RunSetup(setup, cache);
  }
  return 0;
}
