// Hot-path microbenchmarks (google-benchmark): emulator API call overhead,
// discrete-event simulation throughput, trace collation + serialization,
// random-forest inference, and the estimation stage's memoized hot path —
// the per-op costs the Fig. 13 stack runtimes are built from. Also emits
// BENCH_estimation.json with the estimation-throughput study (naive per-op
// vs. deduped-batched vs. warm-cache predictions/sec).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string_view>

#include "src/common/json_writer.h"
#include "src/common/strings.h"
#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/dlf/worker_launcher.h"
#include "src/estimator/features.h"
#include "src/estimator/kernel_estimator.h"
#include "src/groundtruth/executor.h"
#include "src/models/model_zoo.h"
#include "src/trace/collator.h"
#include "src/trace/serialization.h"

namespace maya {
namespace {

ModelConfig BenchModel() {
  ModelConfig model;
  model.name = "bench-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig BenchConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

void BM_EmulatorApiCall(benchmark::State& state) {
  VirtualHostClock clock;
  JobEmulation emulation(EmulationSpec{H100Cluster(8)});
  WorkerEmulator& worker = emulation.CreateWorker(0, &clock);
  const KernelDesc kernel = MakeGemm(1024, 1024, 1024, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(worker.cudaLaunchKernel(kernel, StreamHandle{0}));
    clock.Advance(1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmulatorApiCall);

void BM_JobEmulation(benchmark::State& state) {
  for (auto _ : state) {
    Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
    CHECK(launched.ok());
    benchmark::DoNotOptimize(launched->traces.size());
  }
}
BENCHMARK(BM_JobEmulation)->Unit(benchmark::kMillisecond);

void BM_TraceCollation(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  for (auto _ : state) {
    std::vector<WorkerTrace> copy = launched->traces;
    TraceCollator collator;
    Result<JobTrace> job = collator.Collate(std::move(copy));
    CHECK(job.ok());
    benchmark::DoNotOptimize(job->TotalOps());
  }
}
BENCHMARK(BM_TraceCollation)->Unit(benchmark::kMillisecond);

void BM_Simulation(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  CHECK(job.ok());
  GroundTruthExecutor executor(H100Cluster(8), 3);
  const JobTrace annotated = executor.AnnotateActualDurations(*job);
  size_t events = 0;
  for (auto _ : state) {
    Simulator simulator(annotated, H100Cluster(8));
    Result<SimReport> report = simulator.Run();
    CHECK(report.ok());
    events = report->events_processed;
    benchmark::DoNotOptimize(report->total_time_us);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events) * state.iterations());
}
BENCHMARK(BM_Simulation)->Unit(benchmark::kMillisecond);

void BM_RandomForestPredict(benchmark::State& state) {
  GroundTruthExecutor executor(H100Cluster(8), 3);
  RandomForestKernelEstimator estimator;
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1500;
  sweep.conv_samples = 100;
  sweep.generic_samples = 30;
  estimator.Fit(GenerateKernelDataset(GpuArch::kH100, executor.MakeKernelProfiler(), sweep));
  const KernelDesc kernel = MakeGemm(4096, 1024, 4096, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.PredictUs(kernel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomForestPredict);

void BM_RandomForestPredictBatch(benchmark::State& state) {
  GroundTruthExecutor executor(H100Cluster(8), 3);
  RandomForestKernelEstimator estimator;
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1500;
  sweep.conv_samples = 100;
  sweep.generic_samples = 30;
  estimator.Fit(GenerateKernelDataset(GpuArch::kH100, executor.MakeKernelProfiler(), sweep));
  std::vector<KernelDesc> kernels;
  for (int64_t m = 128; m <= 4096; m *= 2) {
    for (int64_t k = 128; k <= 4096; k *= 2) {
      kernels.push_back(MakeGemm(m, 1024, k, DType::kBf16));
    }
  }
  std::vector<const KernelDesc*> pointers;
  for (const KernelDesc& kernel : kernels) {
    pointers.push_back(&kernel);
  }
  std::vector<double> out(kernels.size());
  for (auto _ : state) {
    estimator.PredictUsBatch(pointers.data(), pointers.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kernels.size()) * state.iterations());
}
BENCHMARK(BM_RandomForestPredictBatch);

// Shared fixture for the estimation-stage benchmarks: one collated trace and
// one trained estimator bank, built once per binary.
struct EstimationFixture {
  ClusterSpec cluster = H100Cluster(8);
  GroundTruthExecutor executor{cluster, 3};
  EstimatorBank bank;
  JobTrace job;
  size_t estimated_ops = 0;  // kernel + collective ops annotated per pass

  EstimationFixture() {
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1500;
    sweep.conv_samples = 100;
    sweep.generic_samples = 30;
    bank = TrainEstimators(cluster, executor, sweep);
    Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), cluster);
    CHECK(launched.ok());
    TraceCollator collator;
    Result<JobTrace> collated = collator.Collate(std::move(launched->traces));
    CHECK(collated.ok());
    job = *std::move(collated);
    for (const WorkerTrace& worker : job.workers) {
      estimated_ops += worker.KernelLaunchCount() + worker.CollectiveCount();
    }
  }

  static EstimationFixture& Get() {
    static EstimationFixture fixture;
    return fixture;
  }

  // The seed's estimation stage: one estimator call per op, no dedup, no
  // memoization — the baseline the tentpole is measured against.
  void AnnotateNaive() {
    for (WorkerTrace& worker : job.workers) {
      for (TraceOp& op : worker.ops) {
        if (op.type == TraceOpType::kKernelLaunch) {
          op.duration_us = bank.kernel->PredictUs(op.kernel);
        } else if (op.type == TraceOpType::kCollective) {
          const CommGroup& group = job.comm(op.collective.comm_uid);
          CollectiveRequest request{op.collective.kind, op.collective.bytes, group.members};
          op.duration_us = bank.collective->PredictUs(request, cluster);
        }
      }
    }
  }
};

void BM_AnnotateDurationsNaivePerOp(benchmark::State& state) {
  EstimationFixture& fixture = EstimationFixture::Get();
  for (auto _ : state) {
    fixture.AnnotateNaive();
    benchmark::DoNotOptimize(fixture.job.workers.front().ops.front().duration_us);
  }
  state.SetItemsProcessed(static_cast<int64_t>(fixture.estimated_ops) * state.iterations());
}
BENCHMARK(BM_AnnotateDurationsNaivePerOp)->Unit(benchmark::kMillisecond);

void BM_AnnotateDurationsDedupBatched(benchmark::State& state) {
  EstimationFixture& fixture = EstimationFixture::Get();
  MayaPipelineOptions options;
  options.enable_estimate_cache = false;
  MayaPipeline pipeline(fixture.cluster, fixture.bank.kernel.get(),
                        fixture.bank.collective.get(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.AnnotateDurations(fixture.job, nullptr).kernel_ops);
  }
  state.SetItemsProcessed(static_cast<int64_t>(fixture.estimated_ops) * state.iterations());
}
BENCHMARK(BM_AnnotateDurationsDedupBatched)->Unit(benchmark::kMillisecond);

void BM_AnnotateDurationsWarmCache(benchmark::State& state) {
  EstimationFixture& fixture = EstimationFixture::Get();
  MayaPipeline pipeline(fixture.cluster, fixture.bank.kernel.get(),
                        fixture.bank.collective.get());
  pipeline.AnnotateDurations(fixture.job, nullptr);  // warm the estimate cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.AnnotateDurations(fixture.job, nullptr).cache_hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(fixture.estimated_ops) * state.iterations());
}
BENCHMARK(BM_AnnotateDurationsWarmCache)->Unit(benchmark::kMillisecond);

void BM_KernelFeatureExtraction(benchmark::State& state) {
  const KernelDesc kernel = MakeGemm(4096, 1024, 4096, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelFeatures(kernel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelFeatureExtraction);

void BM_TraceSerialization(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  const WorkerTrace& trace = launched->traces.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeWorkerTrace(trace));
  }
  state.SetBytesProcessed(static_cast<int64_t>(SerializeWorkerTrace(trace).size()) *
                          state.iterations());
}
BENCHMARK(BM_TraceSerialization)->Unit(benchmark::kMillisecond);

// Estimation-throughput study: predictions/sec for the three estimation-stage
// strategies on a repeated-kernel GPT trace, plus the cache hit rate —
// written to BENCH_estimation.json for the perf-tracking harness.
double MeasurePredictionsPerSec(size_t ops_per_pass, const std::function<void()>& annotate) {
  // One untimed pass to fault in everything, then time enough passes to get
  // out of clock-resolution territory.
  annotate();
  const int passes = 20;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < passes; ++i) {
    annotate();
  }
  const double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                             .count();
  return static_cast<double>(ops_per_pass) * passes / seconds;
}

void RunEstimationThroughputStudy() {
  EstimationFixture& fixture = EstimationFixture::Get();

  const double naive_per_sec =
      MeasurePredictionsPerSec(fixture.estimated_ops, [&] { fixture.AnnotateNaive(); });

  MayaPipelineOptions uncached_options;
  uncached_options.enable_estimate_cache = false;
  MayaPipeline uncached(fixture.cluster, fixture.bank.kernel.get(),
                        fixture.bank.collective.get(), uncached_options);
  const double dedup_per_sec = MeasurePredictionsPerSec(
      fixture.estimated_ops, [&] { uncached.AnnotateDurations(fixture.job, nullptr); });

  MayaPipeline cached(fixture.cluster, fixture.bank.kernel.get(),
                      fixture.bank.collective.get());
  const double cached_per_sec = MeasurePredictionsPerSec(
      fixture.estimated_ops, [&] { cached.AnnotateDurations(fixture.job, nullptr); });
  const EstimationStats warm_stats = cached.AnnotateDurations(fixture.job, nullptr);

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", std::string_view("estimation_throughput"));
  json.Field("trace_ops_estimated", static_cast<uint64_t>(fixture.estimated_ops));
  json.Field("unique_kernels", warm_stats.unique_kernels);
  json.Field("unique_collectives", warm_stats.unique_collectives);
  json.Field("naive_per_op_predictions_per_sec", naive_per_sec);
  json.Field("dedup_batched_predictions_per_sec", dedup_per_sec);
  json.Field("warm_cache_predictions_per_sec", cached_per_sec);
  json.Field("speedup_dedup_vs_naive", dedup_per_sec / naive_per_sec);
  json.Field("speedup_cached_vs_naive", cached_per_sec / naive_per_sec);
  json.Field("warm_cache_hit_rate", warm_stats.hit_rate());
  json.EndObject();
  std::ofstream out("BENCH_estimation.json");
  out << json.str() << "\n";

  std::cout << "Estimation throughput (predictions/sec) on "
            << fixture.estimated_ops << " ops (" << warm_stats.unique_kernels
            << " unique kernels, " << warm_stats.unique_collectives
            << " unique collectives):\n"
            << StrFormat("  naive per-op : %12.0f\n", naive_per_sec)
            << StrFormat("  dedup+batched: %12.0f  (%.1fx)\n", dedup_per_sec,
                         dedup_per_sec / naive_per_sec)
            << StrFormat("  warm cache   : %12.0f  (%.1fx, hit rate %.1f%%)\n", cached_per_sec,
                         cached_per_sec / naive_per_sec, warm_stats.hit_rate() * 100.0)
            << "Wrote BENCH_estimation.json\n";
}

}  // namespace
}  // namespace maya

int main(int argc, char** argv) {
  // The estimation study trains estimators and emulates a job (seconds):
  // keep listing/help invocations cheap, and honor --no_estimation_study so
  // filtered runs of unrelated benchmarks don't pay for (or clobber) it.
  bool run_study = true;
  for (int i = argc - 1; i > 0; --i) {
    const std::string_view arg = argv[i];
    if (arg == "--no_estimation_study") {
      run_study = false;
      std::rotate(argv + i, argv + i + 1, argv + argc);
      argv[--argc] = nullptr;  // preserve the argv[argc] == nullptr invariant
    } else if (arg == "--benchmark_list_tests" || arg == "--benchmark_list_tests=true" ||
               arg == "--help") {
      run_study = false;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (run_study) {
    maya::RunEstimationThroughputStudy();
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
