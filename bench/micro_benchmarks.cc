// Hot-path microbenchmarks (google-benchmark): emulator API call overhead,
// discrete-event simulation throughput, trace collation + serialization,
// random-forest inference, and the estimation stage's memoized hot path —
// the per-op costs the Fig. 13 stack runtimes are built from. Also emits
// BENCH_estimation.json (estimation-throughput study: naive per-op vs.
// deduped-batched vs. warm-cache predictions/sec), BENCH_emulation.json,
// BENCH_simulation.json ({sequential, partitioned} x {replica dedup on/off}
// stage-4 replays + warm sim cache) and BENCH_service.json.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/hash.h"
#include "src/common/json_writer.h"
#include "src/common/strings.h"
#include "src/common/telemetry.h"
#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/dlf/worker_launcher.h"
#include "src/estimator/collective_estimator.h"
#include "src/estimator/features.h"
#include "src/hw/collective_cost.h"
#include "src/estimator/kernel_estimator.h"
#include "src/groundtruth/executor.h"
#include "src/models/model_zoo.h"
#include "src/service/artifact_store.h"
#include "src/service/service_engine.h"
#include "src/trace/collator.h"
#include "src/trace/serialization.h"

namespace maya {
namespace {

ModelConfig BenchModel() {
  ModelConfig model;
  model.name = "bench-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig BenchConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

void BM_EmulatorApiCall(benchmark::State& state) {
  VirtualHostClock clock;
  JobEmulation emulation(EmulationSpec{H100Cluster(8)});
  WorkerEmulator& worker = emulation.CreateWorker(0, &clock);
  const KernelDesc kernel = MakeGemm(1024, 1024, 1024, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(worker.cudaLaunchKernel(kernel, StreamHandle{0}));
    clock.Advance(1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmulatorApiCall);

void BM_JobEmulation(benchmark::State& state) {
  for (auto _ : state) {
    Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
    CHECK(launched.ok());
    benchmark::DoNotOptimize(launched->traces.size());
  }
}
BENCHMARK(BM_JobEmulation)->Unit(benchmark::kMillisecond);

void BM_TraceCollation(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  for (auto _ : state) {
    std::vector<WorkerTrace> copy = launched->traces;
    TraceCollator collator;
    Result<JobTrace> job = collator.Collate(std::move(copy));
    CHECK(job.ok());
    benchmark::DoNotOptimize(job->TotalOps());
  }
}
BENCHMARK(BM_TraceCollation)->Unit(benchmark::kMillisecond);

void BM_Simulation(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  CHECK(job.ok());
  GroundTruthExecutor executor(H100Cluster(8), 3);
  const JobTrace annotated = executor.AnnotateActualDurations(*job);
  size_t events = 0;
  for (auto _ : state) {
    Simulator simulator(annotated, H100Cluster(8));
    Result<SimReport> report = simulator.Run();
    CHECK(report.ok());
    events = report->events_processed;
    benchmark::DoNotOptimize(report->total_time_us);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events) * state.iterations());
}
BENCHMARK(BM_Simulation)->Unit(benchmark::kMillisecond);

void BM_RandomForestPredict(benchmark::State& state) {
  GroundTruthExecutor executor(H100Cluster(8), 3);
  RandomForestKernelEstimator estimator;
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1500;
  sweep.conv_samples = 100;
  sweep.generic_samples = 30;
  estimator.Fit(GenerateKernelDataset(GpuArch::kH100, executor.MakeKernelProfiler(), sweep));
  const KernelDesc kernel = MakeGemm(4096, 1024, 4096, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.PredictUs(kernel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomForestPredict);

void BM_RandomForestPredictBatch(benchmark::State& state) {
  GroundTruthExecutor executor(H100Cluster(8), 3);
  RandomForestKernelEstimator estimator;
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1500;
  sweep.conv_samples = 100;
  sweep.generic_samples = 30;
  estimator.Fit(GenerateKernelDataset(GpuArch::kH100, executor.MakeKernelProfiler(), sweep));
  std::vector<KernelDesc> kernels;
  for (int64_t m = 128; m <= 4096; m *= 2) {
    for (int64_t k = 128; k <= 4096; k *= 2) {
      kernels.push_back(MakeGemm(m, 1024, k, DType::kBf16));
    }
  }
  std::vector<const KernelDesc*> pointers;
  for (const KernelDesc& kernel : kernels) {
    pointers.push_back(&kernel);
  }
  std::vector<double> out(kernels.size());
  for (auto _ : state) {
    estimator.PredictUsBatch(pointers.data(), pointers.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kernels.size()) * state.iterations());
}
BENCHMARK(BM_RandomForestPredictBatch);

// Shared fixture for the estimation-stage benchmarks: one collated trace and
// one trained estimator bank, built once per binary.
struct EstimationFixture {
  ClusterSpec cluster = H100Cluster(8);
  GroundTruthExecutor executor{cluster, 3};
  EstimatorBank bank;
  JobTrace job;
  size_t estimated_ops = 0;  // kernel + collective ops annotated per pass

  EstimationFixture() {
    ProfileSweepOptions sweep;
    sweep.gemm_samples = 1500;
    sweep.conv_samples = 100;
    sweep.generic_samples = 30;
    bank = TrainEstimators(cluster, executor, sweep);
    Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), cluster);
    CHECK(launched.ok());
    TraceCollator collator;
    Result<JobTrace> collated = collator.Collate(std::move(launched->traces));
    CHECK(collated.ok());
    job = *std::move(collated);
    for (const WorkerTrace& worker : job.workers) {
      estimated_ops += worker.KernelLaunchCount() + worker.CollectiveCount();
    }
  }

  static EstimationFixture& Get() {
    static EstimationFixture fixture;
    return fixture;
  }

  // The seed's estimation stage: one estimator call per op, no dedup, no
  // memoization — the baseline the tentpole is measured against.
  void AnnotateNaive() {
    for (WorkerTrace& worker : job.workers) {
      for (TraceOp& op : worker.ops) {
        if (op.type == TraceOpType::kKernelLaunch) {
          op.duration_us = bank.kernel->PredictUs(op.kernel);
        } else if (op.type == TraceOpType::kCollective) {
          const CommGroup& group = job.comm(op.collective.comm_uid);
          CollectiveRequest request{op.collective.kind, op.collective.bytes, group.members};
          op.duration_us = bank.collective->PredictUs(request, cluster);
        }
      }
    }
  }
};

void BM_AnnotateDurationsNaivePerOp(benchmark::State& state) {
  EstimationFixture& fixture = EstimationFixture::Get();
  for (auto _ : state) {
    fixture.AnnotateNaive();
    benchmark::DoNotOptimize(fixture.job.workers.front().ops.front().duration_us);
  }
  state.SetItemsProcessed(static_cast<int64_t>(fixture.estimated_ops) * state.iterations());
}
BENCHMARK(BM_AnnotateDurationsNaivePerOp)->Unit(benchmark::kMillisecond);

void BM_AnnotateDurationsDedupBatched(benchmark::State& state) {
  EstimationFixture& fixture = EstimationFixture::Get();
  MayaPipelineOptions options;
  options.enable_estimate_cache = false;
  MayaPipeline pipeline(fixture.cluster, fixture.bank.kernel.get(),
                        fixture.bank.collective.get(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.AnnotateDurations(fixture.job, nullptr).kernel_ops);
  }
  state.SetItemsProcessed(static_cast<int64_t>(fixture.estimated_ops) * state.iterations());
}
BENCHMARK(BM_AnnotateDurationsDedupBatched)->Unit(benchmark::kMillisecond);

void BM_AnnotateDurationsWarmCache(benchmark::State& state) {
  EstimationFixture& fixture = EstimationFixture::Get();
  MayaPipeline pipeline(fixture.cluster, fixture.bank.kernel.get(),
                        fixture.bank.collective.get());
  pipeline.AnnotateDurations(fixture.job, nullptr);  // warm the estimate cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.AnnotateDurations(fixture.job, nullptr).cache_hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(fixture.estimated_ops) * state.iterations());
}
BENCHMARK(BM_AnnotateDurationsWarmCache)->Unit(benchmark::kMillisecond);

void BM_KernelFeatureExtraction(benchmark::State& state) {
  const KernelDesc kernel = MakeGemm(4096, 1024, 4096, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelFeatures(kernel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelFeatureExtraction);

void BM_TraceSerialization(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  const WorkerTrace& trace = launched->traces.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeWorkerTrace(trace));
  }
  state.SetBytesProcessed(static_cast<int64_t>(SerializeWorkerTrace(trace).size()) *
                          state.iterations());
}
BENCHMARK(BM_TraceSerialization)->Unit(benchmark::kMillisecond);

// Estimation-throughput study: predictions/sec for the three estimation-stage
// strategies on a repeated-kernel GPT trace, plus the cache hit rate —
// written to BENCH_estimation.json for the perf-tracking harness.
double MeasurePredictionsPerSec(size_t ops_per_pass, const std::function<void()>& annotate) {
  // One untimed pass to fault in everything, then time enough passes to get
  // out of clock-resolution territory.
  annotate();
  const int passes = 20;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < passes; ++i) {
    annotate();
  }
  const double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                             .count();
  return static_cast<double>(ops_per_pass) * passes / seconds;
}

void RunEstimationThroughputStudy() {
  EstimationFixture& fixture = EstimationFixture::Get();

  const double naive_per_sec =
      MeasurePredictionsPerSec(fixture.estimated_ops, [&] { fixture.AnnotateNaive(); });

  MayaPipelineOptions uncached_options;
  uncached_options.enable_estimate_cache = false;
  MayaPipeline uncached(fixture.cluster, fixture.bank.kernel.get(),
                        fixture.bank.collective.get(), uncached_options);
  const double dedup_per_sec = MeasurePredictionsPerSec(
      fixture.estimated_ops, [&] { uncached.AnnotateDurations(fixture.job, nullptr); });

  MayaPipeline cached(fixture.cluster, fixture.bank.kernel.get(),
                      fixture.bank.collective.get());
  const double cached_per_sec = MeasurePredictionsPerSec(
      fixture.estimated_ops, [&] { cached.AnnotateDurations(fixture.job, nullptr); });
  const EstimationStats warm_stats = cached.AnnotateDurations(fixture.job, nullptr);

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", std::string_view("estimation_throughput"));
  json.Field("trace_ops_estimated", static_cast<uint64_t>(fixture.estimated_ops));
  json.Field("unique_kernels", warm_stats.unique_kernels);
  json.Field("unique_collectives", warm_stats.unique_collectives);
  json.Field("naive_per_op_predictions_per_sec", naive_per_sec);
  json.Field("dedup_batched_predictions_per_sec", dedup_per_sec);
  json.Field("warm_cache_predictions_per_sec", cached_per_sec);
  json.Field("speedup_dedup_vs_naive", dedup_per_sec / naive_per_sec);
  json.Field("speedup_cached_vs_naive", cached_per_sec / naive_per_sec);
  json.Field("warm_cache_hit_rate", warm_stats.hit_rate());
  json.EndObject();
  std::ofstream out("BENCH_estimation.json");
  out << json.str() << "\n";

  std::cout << "Estimation throughput (predictions/sec) on "
            << fixture.estimated_ops << " ops (" << warm_stats.unique_kernels
            << " unique kernels, " << warm_stats.unique_collectives
            << " unique collectives):\n"
            << StrFormat("  naive per-op : %12.0f\n", naive_per_sec)
            << StrFormat("  dedup+batched: %12.0f  (%.1fx)\n", dedup_per_sec,
                         dedup_per_sec / naive_per_sec)
            << StrFormat("  warm cache   : %12.0f  (%.1fx, hit rate %.1f%%)\n", cached_per_sec,
                         cached_per_sec / naive_per_sec, warm_stats.hit_rate() * 100.0)
            << "Wrote BENCH_estimation.json\n";
}

// Emulation-throughput study: wall-ms and effective ranks/s for the trace-
// collection stage across {sequential, parallel} x {full, dedup} per
// framework — written to BENCH_emulation.json. "Dedup" is the generalized
// selective launch (one full rank per equivalence class + comm-init stubs);
// outputs of every arm are asserted bit-identical to the sequential dedup-off
// baseline in dlf_test/core_test, so this measures pure speedup.
double MeasureEmulationWallMs(const ModelConfig& model, const TrainConfig& config,
                              const ClusterSpec& cluster, const LaunchOptions& options,
                              int passes) {
  Result<LaunchResult> warmup = EmulateJob(model, config, cluster, options);  // fault in
  CHECK(warmup.ok()) << warmup.status().ToString();
  CHECK(!warmup->oom) << warmup->oom_detail;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < passes; ++i) {
    Result<LaunchResult> launched = EmulateJob(model, config, cluster, options);
    CHECK(launched.ok());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return seconds * 1000.0 / passes;
}

void RunEmulationThroughputStudy(bool tiny) {
  ModelConfig model = BenchModel();
  if (tiny) {
    model.num_layers = 2;  // harness smoke: exercise every arm, not the scale
  } else {
    model.num_layers = 16;  // a few ms per job, so arm ratios aren't noise
  }
  const ClusterSpec cluster = H100Cluster(8);
  const int world = cluster.total_gpus();
  const int passes = tiny ? 2 : 10;
  const int threads = static_cast<int>(
      std::min<unsigned>(8, std::max(2u, std::thread::hardware_concurrency())));

  struct Case {
    const char* framework;
    TrainConfig config;
  };
  std::vector<Case> cases;
  {
    // Multi-rank symmetric config (the Fig. 14 lever at its strongest):
    // tp1 pp1 -> dp8, every rank twins rank 0.
    TrainConfig dp8;
    dp8.global_batch_size = 32;
    dp8.microbatch_multiplier = 4;
    cases.push_back({"megatron_dp8", dp8});
    TrainConfig grid = BenchConfig();  // tp2 x pp2: one class per stage
    cases.push_back({"megatron_tp2pp2", grid});
    TrainConfig fsdp;
    fsdp.framework = ParallelFramework::kFsdp;
    fsdp.global_batch_size = 32;
    fsdp.microbatch_multiplier = 4;
    cases.push_back({"fsdp", fsdp});
  }
  {
    TrainConfig ddp;
    ddp.framework = ParallelFramework::kDdp;
    ddp.global_batch_size = 256;
    ddp.microbatch_multiplier = 1;
    cases.push_back({"vision", ddp});
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", std::string_view("emulation_throughput"));
  json.Field("world_size", static_cast<int64_t>(world));
  json.Field("emulation_threads", static_cast<int64_t>(threads));
  json.Field("passes", static_cast<int64_t>(passes));
  json.Field("tiny", tiny);
  json.KeyedBeginObject("frameworks");
  std::cout << StrFormat(
      "Emulation throughput (world %d, %d threads): wall-ms per job / effective ranks/s\n",
      world, threads);
  double symmetric_speedup = 0.0;
  // One persistent pool for every parallel arm, as the pipeline runs it —
  // spawning a pool per job would charge thread startup to sub-ms launches.
  ThreadPool pool(static_cast<size_t>(threads));
  for (const Case& test_case : cases) {
    const ModelConfig& case_model = test_case.framework[0] == 'v' ? ResNet152() : model;
    LaunchOptions seq_full;
    LaunchOptions par_full;
    par_full.emulation_pool = &pool;
    LaunchOptions seq_dedup;
    seq_dedup.selective_launch = true;
    LaunchOptions par_dedup;
    par_dedup.selective_launch = true;
    par_dedup.emulation_pool = &pool;

    const double seq_full_ms =
        MeasureEmulationWallMs(case_model, test_case.config, cluster, seq_full, passes);
    const double par_full_ms =
        MeasureEmulationWallMs(case_model, test_case.config, cluster, par_full, passes);
    const double seq_dedup_ms =
        MeasureEmulationWallMs(case_model, test_case.config, cluster, seq_dedup, passes);
    const double par_dedup_ms =
        MeasureEmulationWallMs(case_model, test_case.config, cluster, par_dedup, passes);
    const double speedup = seq_full_ms / par_dedup_ms;
    if (test_case.framework == std::string_view("megatron_dp8")) {
      symmetric_speedup = speedup;
    }

    json.KeyedBeginObject(test_case.framework);
    json.Field("sequential_full_wall_ms", seq_full_ms);
    json.Field("parallel_full_wall_ms", par_full_ms);
    json.Field("sequential_dedup_wall_ms", seq_dedup_ms);
    json.Field("parallel_dedup_wall_ms", par_dedup_ms);
    json.Field("sequential_full_ranks_per_sec", world * 1000.0 / seq_full_ms);
    json.Field("parallel_full_ranks_per_sec", world * 1000.0 / par_full_ms);
    json.Field("sequential_dedup_ranks_per_sec", world * 1000.0 / seq_dedup_ms);
    json.Field("parallel_dedup_ranks_per_sec", world * 1000.0 / par_dedup_ms);
    json.Field("speedup_parallel_vs_sequential", seq_full_ms / par_full_ms);
    json.Field("speedup_dedup_vs_full", seq_full_ms / seq_dedup_ms);
    json.Field("speedup_parallel_dedup_vs_sequential_full", speedup);
    json.EndObject();
    std::cout << StrFormat(
        "  %-16s seq %7.2f ms | par %7.2f ms | dedup %7.2f ms | par+dedup %7.2f ms "
        "(%.1fx vs seq)\n",
        test_case.framework, seq_full_ms, par_full_ms, seq_dedup_ms, par_dedup_ms, speedup);
  }
  json.EndObject();
  json.Field("symmetric_speedup_parallel_dedup_vs_sequential_full", symmetric_speedup);
  json.EndObject();
  std::ofstream out("BENCH_emulation.json");
  out << json.str() << "\n";
  std::cout << "Wrote BENCH_emulation.json\n";
}

// Simulation-throughput study: stage-4 wall-ms per replay across
// {sequential, partitioned} x {replica dedup on/off} per framework, plus the
// warm cross-trial sim cache — written to BENCH_simulation.json. Every arm's
// report is CHECKed bit-identical to the sequential whole-cluster replay, so
// the study measures pure speedup. Traces are collated WITHOUT worker dedup
// (every GPU simulated): the simulator's own replica fold is the lever under
// measurement — §7.4's symmetry applied at stage 4.
double MeasureSimulationWallMs(const JobTrace& job, const ClusterSpec& cluster,
                               const SimOptions& options, int passes, SimReport* out) {
  Result<SimReport> warmup = Simulator(job, cluster, options).Run();
  CHECK(warmup.ok()) << warmup.status().ToString();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < passes; ++i) {
    Result<SimReport> report = Simulator(job, cluster, options).Run();
    CHECK(report.ok());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  *out = *std::move(warmup);
  return seconds * 1000.0 / passes;
}

void CheckBitIdenticalReports(const SimReport& expected, const SimReport& actual,
                              const char* arm) {
  CHECK(expected.total_time_us == actual.total_time_us) << arm;
  CHECK(expected.events_processed == actual.events_processed) << arm;
  CHECK(expected.workers.size() == actual.workers.size()) << arm;
  for (size_t w = 0; w < expected.workers.size(); ++w) {
    CHECK(expected.workers[w] == actual.workers[w]) << arm << " worker " << w;
  }
}

void RunSimulationThroughputStudy(bool tiny) {
  EstimationFixture& fixture = EstimationFixture::Get();
  ModelConfig model = BenchModel();
  model.num_layers = tiny ? 2 : 16;
  const ClusterSpec& cluster = fixture.cluster;
  const int passes = tiny ? 3 : 20;
  const int threads = static_cast<int>(
      std::min<unsigned>(8, std::max(2u, std::thread::hardware_concurrency())));
  ThreadPool pool(static_cast<size_t>(threads));
  // Annotation machinery only (stage 3); the study times stage 4 directly.
  MayaPipelineOptions annotate_options;
  annotate_options.enable_estimate_cache = false;
  MayaPipeline annotator(cluster, fixture.bank.kernel.get(), fixture.bank.collective.get(),
                         annotate_options);

  struct Case {
    const char* framework;
    TrainConfig config;
  };
  std::vector<Case> cases;
  {
    TrainConfig dp8;  // tp1 pp1 -> dp8: every rank twins rank 0 (Fig. 14 lever)
    dp8.global_batch_size = 32;
    dp8.microbatch_multiplier = 4;
    cases.push_back({"megatron_dp8", dp8});
    cases.push_back({"megatron_tp2pp2", BenchConfig()});
    TrainConfig fsdp;
    fsdp.framework = ParallelFramework::kFsdp;
    fsdp.global_batch_size = 32;
    fsdp.microbatch_multiplier = 4;
    cases.push_back({"fsdp", fsdp});
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", std::string_view("simulation_throughput"));
  json.Field("world_size", static_cast<int64_t>(cluster.total_gpus()));
  json.Field("simulation_threads", static_cast<int64_t>(threads));
  json.Field("passes", static_cast<int64_t>(passes));
  json.Field("tiny", tiny);
  json.KeyedBeginObject("frameworks");
  std::cout << StrFormat(
      "Simulation throughput (world %d, every GPU simulated): stage-4 wall-ms per replay\n",
      cluster.total_gpus());
  double symmetric_reduction = 0.0;
  for (const Case& test_case : cases) {
    Result<LaunchResult> launched = EmulateJob(model, test_case.config, cluster);
    CHECK(launched.ok()) << launched.status().ToString();
    CHECK(!launched->oom) << launched->oom_detail;
    CollationOptions collation;
    collation.deduplicate = false;  // the full-cluster trace: every GPU simulated
    TraceCollator collator(collation);
    Result<JobTrace> collated = collator.Collate(std::move(launched->traces));
    CHECK(collated.ok()) << collated.status().ToString();
    JobTrace job = *std::move(collated);
    annotator.AnnotateDurations(job, nullptr);

    SimOptions sequential;
    sequential.partition_components = false;
    sequential.deduplicate_replicas = false;
    SimOptions partitioned;
    partitioned.deduplicate_replicas = false;
    partitioned.pool = &pool;
    SimOptions partitioned_dedup;
    partitioned_dedup.pool = &pool;
    SimulationCache cache;
    SimOptions cached = partitioned_dedup;
    cached.cache = &cache;

    SimReport baseline;
    SimReport report;
    const double sequential_ms =
        MeasureSimulationWallMs(job, cluster, sequential, passes, &baseline);
    const double partitioned_ms =
        MeasureSimulationWallMs(job, cluster, partitioned, passes, &report);
    CheckBitIdenticalReports(baseline, report, "partitioned");
    const double dedup_ms =
        MeasureSimulationWallMs(job, cluster, partitioned_dedup, passes, &report);
    CheckBitIdenticalReports(baseline, report, "partitioned+dedup");
    const SimulationStats dedup_stats = report.stats;
    const double cached_ms = MeasureSimulationWallMs(job, cluster, cached, passes, &report);
    CheckBitIdenticalReports(baseline, report, "warm sim cache");
    const double reduction = sequential_ms / dedup_ms;
    if (test_case.framework == std::string_view("megatron_dp8")) {
      symmetric_reduction = reduction;
    }

    json.KeyedBeginObject(test_case.framework);
    json.Field("workers", static_cast<uint64_t>(job.workers.size()));
    json.Field("trace_ops", static_cast<uint64_t>(job.TotalOps()));
    json.Field("folded_workers", dedup_stats.folded_workers);
    json.Field("components", dedup_stats.components);
    json.Field("sequential_wall_ms", sequential_ms);
    json.Field("partitioned_wall_ms", partitioned_ms);
    json.Field("partitioned_dedup_wall_ms", dedup_ms);
    json.Field("warm_sim_cache_wall_ms", cached_ms);
    json.Field("reduction_partitioned_vs_sequential", sequential_ms / partitioned_ms);
    json.Field("reduction_partitioned_dedup_vs_sequential", reduction);
    json.Field("reduction_warm_cache_vs_sequential", sequential_ms / cached_ms);
    json.EndObject();
    std::cout << StrFormat(
        "  %-16s seq %7.3f ms | part %7.3f ms | +dedup %7.3f ms (%.1fx, %llu/%zu workers "
        "folded) | warm cache %7.3f ms (%.1fx)\n",
        test_case.framework, sequential_ms, partitioned_ms, dedup_ms, reduction,
        static_cast<unsigned long long>(dedup_stats.folded_workers), job.workers.size(),
        cached_ms, sequential_ms / cached_ms);
  }
  json.EndObject();
  json.Field("symmetric_reduction_partitioned_dedup_vs_sequential", symmetric_reduction);
  json.EndObject();
  std::ofstream out("BENCH_simulation.json");
  out << json.str() << "\n";
  std::cout << "Wrote BENCH_simulation.json\n";
}

// Service-throughput study: requests/s through a warm ServiceEngine at 1, 4
// and 16 concurrent clients, plus cold-start vs artifact-bundle warm-start on
// a repeated config sweep — written to BENCH_service.json.
std::vector<ServiceRequest> ServiceSweepRequests() {
  std::vector<ServiceRequest> requests;
  for (int tp : {1, 2}) {
    for (int pp : {1, 2}) {
      for (int mb : {1, 2}) {
        ServiceRequest request;
        PredictPayload payload;
        payload.model = BenchModel();
        payload.config = BenchConfig();
        payload.config.tensor_parallel = tp;
        payload.config.pipeline_parallel = pp;
        payload.config.microbatch_multiplier = mb;
        request.payload = std::move(payload);
        requests.push_back(std::move(request));
      }
    }
  }
  return requests;
}

// `clients` threads each issue `per_client` requests round-robin over the
// sweep; returns completed requests per wall-clock second.
double MeasureServiceRequestsPerSec(ServiceEngine& engine,
                                    const std::vector<ServiceRequest>& sweep, int clients,
                                    int per_client) {
  std::atomic<uint64_t> next_id{1};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&engine, &sweep, &next_id, per_client, c] {
      std::vector<std::future<ServiceResponse>> futures;
      futures.reserve(static_cast<size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        ServiceRequest request = sweep[static_cast<size_t>(c + i) % sweep.size()];
        request.id = next_id.fetch_add(1);
        futures.push_back(engine.Submit(request));
      }
      for (std::future<ServiceResponse>& future : futures) {
        const ServiceResponse response = future.get();
        CHECK(response.ok) << response.error;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(clients) * per_client / seconds;
}

// Telemetry-overhead guard: a span site with telemetry disabled is one
// relaxed atomic load + branch, so a hashing loop with a ScopedSpan per
// iteration must run at ~the speed of the bare loop. Returns the wall-time
// ratio (instrumented / baseline), min-of-5 to shed scheduler noise; CI
// fails the build when the committed threshold is exceeded.
double MeasureDisabledSpanOverheadRatio() {
  Telemetry::Instance().Disable();
  constexpr int kIters = 1 << 21;
  uint64_t sink = 0;
  const auto time_loop = [&sink](bool with_span) {
    double best_ms = 1e300;
    for (int repeat = 0; repeat < 5; ++repeat) {
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        if (with_span) {
          ScopedSpan span("bench_disabled_site", "bench");
          sink += SplitMix64(static_cast<uint64_t>(i) ^ sink);
        } else {
          sink += SplitMix64(static_cast<uint64_t>(i) ^ sink);
        }
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      best_ms = std::min(best_ms, ms);
    }
    return best_ms;
  };
  const double baseline_ms = time_loop(/*with_span=*/false);
  const double instrumented_ms = time_loop(/*with_span=*/true);
  benchmark::DoNotOptimize(sink);
  return instrumented_ms / baseline_ms;
}

void RunServiceThroughputStudy() {
  EstimationFixture& fixture = EstimationFixture::Get();
  const std::vector<ServiceRequest> sweep = ServiceSweepRequests();
  ServiceEngineOptions options;
  options.worker_threads = 4;
  options.max_queue_weight = 4096.0;

  // Cold start: fresh engine, empty estimate caches, first sweep pass.
  Result<std::unique_ptr<ServiceEngine>> cold_created = ServiceEngine::Create(
      fixture.cluster, fixture.bank.kernel.get(), fixture.bank.collective.get(), options);
  CHECK(cold_created.ok()) << cold_created.status().ToString();
  ServiceEngine& cold = **cold_created;
  const double cold_per_sec =
      MeasureServiceRequestsPerSec(cold, sweep, /*clients=*/1, /*per_client=*/
                                   static_cast<int>(sweep.size()));

  // Persist the warmed caches, then restart from the bundle.
  const std::string bundle_dir =
      (std::filesystem::temp_directory_path() / "maya_bench_bundle").string();
  std::filesystem::remove_all(bundle_dir);
  ArtifactStore store(bundle_dir);
  CHECK(store.Save(fixture.cluster, fixture.bank, cold.pipeline()).ok());
  const auto load_start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<ServiceEngine>> warm =
      ServiceEngine::FromArtifacts(fixture.cluster, store, options);
  CHECK(warm.ok()) << warm.status().ToString();
  const double artifact_load_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - load_start)
          .count();

  const double warm_per_sec =
      MeasureServiceRequestsPerSec(**warm, sweep, /*clients=*/1,
                                   /*per_client=*/static_cast<int>(sweep.size()));
  const ShardedCacheStats warm_kernel_cache = (*warm)->pipeline().KernelCacheStats();
  const double warm_hit_rate = warm_kernel_cache.hit_rate();

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", std::string_view("service_throughput"));
  json.Field("sweep_configs", static_cast<uint64_t>(sweep.size()));
  json.Field("worker_threads", static_cast<int64_t>(options.worker_threads));
  json.Field("cold_start_requests_per_sec", cold_per_sec);
  json.Field("warm_start_requests_per_sec", warm_per_sec);
  json.Field("warm_start_speedup", warm_per_sec / cold_per_sec);
  json.Field("warm_start_kernel_cache_hit_rate", warm_hit_rate);
  json.Field("artifact_load_ms", artifact_load_ms);
  const double span_overhead = MeasureDisabledSpanOverheadRatio();
  json.Field("telemetry_disabled_span_overhead_ratio", span_overhead);
  std::cout << StrFormat("  disabled span-site overhead: %.3fx baseline\n", span_overhead);
  json.KeyedBeginObject("warm_requests_per_sec_by_clients");
  std::cout << StrFormat(
      "Service throughput (%zu-config sweep, %d workers): cold %0.1f req/s, "
      "warm %0.1f req/s (%.2fx, kernel-cache hit rate %.1f%%, bundle load %.0f ms)\n",
      sweep.size(), options.worker_threads, cold_per_sec, warm_per_sec,
      warm_per_sec / cold_per_sec, warm_hit_rate * 100.0, artifact_load_ms);
  for (int clients : {1, 4, 16}) {
    const double per_sec =
        MeasureServiceRequestsPerSec(**warm, sweep, clients, /*per_client=*/12);
    json.Field(StrFormat("%d", clients).c_str(), per_sec);
    std::cout << StrFormat("  %2d client(s): %8.1f requests/s\n", clients, per_sec);
  }
  json.EndObject();
  json.EndObject();
  std::ofstream out("BENCH_service.json");
  out << json.str() << "\n";
  std::cout << "Wrote BENCH_service.json\n";
  std::filesystem::remove_all(bundle_dir);
}

// Hyperscale-prediction study: end-to-end Predict wall time, peak-RSS growth
// and unique-worker counts under virtual folded ranks at 16k/65k/131k ranks
// (GPT-3 145.6B, TP8/PP8, 12K global batch — the Fig. 12 operating point,
// collectives priced by the ASTRA-sim-like network model). Before timing,
// the virtual path is CHECKed bit-identical to the materialized
// selective-launch path at a small verifiable world; the hyperscale worlds
// then measure pure O(unique-work) scaling. Written to BENCH_hyperscale.json;
// the headline gate is wall-time growth from the first to the last world
// (committed baseline + CI trend check: must stay <= 2x).
long PeakRssKb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

void CheckBitIdenticalPredictions(const PredictionReport& expected,
                                  const PredictionReport& actual, const char* arm) {
  CHECK(expected.oom == actual.oom) << arm;
  CHECK(expected.oom_detail == actual.oom_detail) << arm;
  CHECK(expected.iteration_time_us == actual.iteration_time_us) << arm;
  CHECK(expected.mfu == actual.mfu) << arm;
  CHECK(expected.sim.total_time_us == actual.sim.total_time_us) << arm;
  CHECK(expected.sim.peak_memory_bytes == actual.sim.peak_memory_bytes) << arm;
  CHECK(expected.sim.workers.size() == actual.sim.workers.size()) << arm;
  for (size_t w = 0; w < expected.sim.workers.size(); ++w) {
    CHECK(expected.sim.workers[w] == actual.sim.workers[w]) << arm << " worker " << w;
  }
  CHECK(expected.collation.unique_workers == actual.collation.unique_workers) << arm;
  CHECK(expected.full_workers_emulated == actual.full_workers_emulated) << arm;
}

void RunHyperscaleStudy(bool tiny) {
  EstimationFixture& fixture = EstimationFixture::Get();
  // Kernel estimators transfer across cluster sizes of the same arch; the
  // network model replaces the profiled collective tables (§7.4).
  AstraLikeNetworkModel astra;
  NetworkModelCollectiveEstimator astra_estimator(&astra);

  const ModelConfig model = tiny ? BenchModel() : Gpt3_145_6B();
  TrainConfig config;
  if (tiny) {
    config = BenchConfig();  // tp2 x pp2: rank grid 4, dp = world / 4
    config.global_batch_size = 4096;
  } else {
    // Fig. 12's operating point scaled to hyperscale DP: the global batch
    // must keep the per-rank microbatch count at 64 up to dp 2048.
    config.global_batch_size = 131072;
    config.tensor_parallel = 8;
    config.pipeline_parallel = 8;
    config.microbatch_multiplier = 8;  // 64 microbatches
    config.sequence_parallel = true;
    config.activation_recomputation = true;
    config.distributed_optimizer = true;
  }
  const std::vector<int> worlds = tiny ? std::vector<int>{256, 512, 1024}
                                       : std::vector<int>{16384, 65536, 131072};
  const int verify_world = tiny ? 16 : 1024;
  const int passes = tiny ? 3 : 2;

  // Bit-identity gate at a size where the materialized selective-launch path
  // is still tractable: the hyperscale sweep below measures the exact same
  // code path, just at worlds where only the virtual arm can run.
  {
    const ClusterSpec cluster = H100Cluster(verify_world);
    CHECK(config.Validate(model, cluster).ok()) << config.Summary();
    MayaPipeline pipeline(cluster, fixture.bank.kernel.get(), &astra_estimator);
    PredictionRequest materialized{model, config};
    materialized.selective_launch = true;
    PredictionRequest virtualized = materialized;
    virtualized.virtual_folds = true;
    Result<PredictionReport> expected = pipeline.Predict(materialized);
    CHECK(expected.ok()) << expected.status().ToString();
    Result<PredictionReport> actual = pipeline.Predict(virtualized);
    CHECK(actual.ok()) << actual.status().ToString();
    CheckBitIdenticalPredictions(*expected, *actual, "virtual folds");
    std::cout << StrFormat(
        "Hyperscale study: virtual folds bit-identical to materialized selective launch "
        "at world %d (%d full workers emulated)\n",
        verify_world, expected->full_workers_emulated);
  }

  JsonWriter json;
  json.BeginObject();
  json.Field("benchmark", std::string_view("hyperscale_prediction"));
  json.Field("model", model.name);
  json.Field("tiny", tiny);
  json.Field("passes", static_cast<int64_t>(passes));
  json.Field("verify_world", static_cast<int64_t>(verify_world));
  json.Field("bit_identical_at_verify_world", true);
  json.KeyedBeginObject("worlds");
  std::cout << StrFormat(
      "Hyperscale prediction (%s, tp%lld pp%lld, gb %lld): Predict wall-ms per world\n",
      model.name.c_str(), static_cast<long long>(config.tensor_parallel),
      static_cast<long long>(config.pipeline_parallel),
      static_cast<long long>(config.global_batch_size));
  double first_ms = 0.0;
  double last_ms = 0.0;
  for (const int world : worlds) {
    const ClusterSpec cluster = H100Cluster(world);
    CHECK(config.Validate(model, cluster).ok()) << config.Summary();
    // Fresh pipeline per world (the cluster changes anyway); caches stay at
    // their defaults but every pass re-emulates — the trace cache is off by
    // default, so each timed pass pays the full 4-stage pipeline.
    MayaPipeline pipeline(cluster, fixture.bank.kernel.get(), &astra_estimator);
    PredictionRequest request{model, config};
    request.virtual_folds = true;

    const long rss_before_kb = PeakRssKb();
    Result<PredictionReport> warmup = pipeline.Predict(request);  // fault in
    CHECK(warmup.ok()) << warmup.status().ToString();
    CHECK(!warmup->oom) << warmup->oom_detail;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < passes; ++i) {
      Result<PredictionReport> report = pipeline.Predict(request);
      CHECK(report.ok());
    }
    const double wall_ms =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() *
        1000.0 / passes;
    const long rss_after_kb = PeakRssKb();
    if (world == worlds.front()) {
      first_ms = wall_ms;
    }
    if (world == worlds.back()) {
      last_ms = wall_ms;
    }

    json.KeyedBeginObject(StrFormat("%d", world).c_str());
    json.Field("world_size", static_cast<int64_t>(world));
    json.Field("data_parallel", static_cast<int64_t>(config.data_parallel(world)));
    json.Field("predict_wall_ms", wall_ms);
    json.Field("peak_rss_delta_kb", static_cast<int64_t>(rss_after_kb - rss_before_kb));
    json.Field("peak_rss_kb", static_cast<int64_t>(rss_after_kb));
    json.Field("unique_workers", static_cast<int64_t>(warmup->collation.unique_workers));
    json.Field("full_workers_emulated",
               static_cast<int64_t>(warmup->full_workers_emulated));
    json.Field("iteration_time_us", warmup->iteration_time_us);
    json.Field("mfu", warmup->mfu);
    json.EndObject();
    std::cout << StrFormat(
        "  world %7d: %8.2f ms/predict | rss +%ld KiB | %d unique workers | MFU %.1f%%\n",
        world, wall_ms, rss_after_kb - rss_before_kb, warmup->collation.unique_workers,
        warmup->mfu * 100.0);
  }
  json.EndObject();
  const double growth = last_ms / first_ms;
  json.Field("wall_growth_first_to_last", growth);
  json.EndObject();
  std::ofstream out("BENCH_hyperscale.json");
  out << json.str() << "\n";
  std::cout << StrFormat("  wall growth %dx ranks: %.2fx (gate: <= 2x)\n",
                         worlds.back() / worlds.front(), growth)
            << "Wrote BENCH_hyperscale.json\n";
}

}  // namespace
}  // namespace maya

int main(int argc, char** argv) {
  // The studies train estimators and emulate jobs (seconds): keep
  // listing/help invocations cheap, and honor --no_estimation_study /
  // --no_service_study so filtered runs of unrelated benchmarks don't pay
  // for (or clobber) them.
  bool run_study = true;
  bool run_service_study = true;
  bool run_emulation_study = true;
  bool run_simulation_study = true;
  bool run_hyperscale_study = true;
  bool emulation_study_tiny = false;
  bool simulation_study_tiny = false;
  bool hyperscale_study_tiny = false;
  for (int i = argc - 1; i > 0; --i) {
    const std::string_view arg = argv[i];
    if (arg == "--no_estimation_study" || arg == "--no_service_study" ||
        arg == "--no_emulation_study" || arg == "--emulation_study_tiny" ||
        arg == "--no_simulation_study" || arg == "--simulation_study_tiny" ||
        arg == "--no_hyperscale_study" || arg == "--hyperscale_study_tiny") {
      if (arg == "--no_estimation_study") {
        run_study = false;
      } else if (arg == "--no_service_study") {
        run_service_study = false;
      } else if (arg == "--no_emulation_study") {
        run_emulation_study = false;
      } else if (arg == "--no_simulation_study") {
        run_simulation_study = false;
      } else if (arg == "--no_hyperscale_study") {
        run_hyperscale_study = false;
      } else if (arg == "--simulation_study_tiny") {
        simulation_study_tiny = true;  // CI harness smoke at reduced size
      } else if (arg == "--hyperscale_study_tiny") {
        hyperscale_study_tiny = true;  // CI harness smoke at reduced size
      } else {
        emulation_study_tiny = true;  // CI harness smoke at reduced size
      }
      std::rotate(argv + i, argv + i + 1, argv + argc);
      argv[--argc] = nullptr;  // preserve the argv[argc] == nullptr invariant
    } else if (arg == "--benchmark_list_tests" || arg == "--benchmark_list_tests=true" ||
               arg == "--help") {
      run_study = false;
      run_service_study = false;
      run_emulation_study = false;
      run_simulation_study = false;
      run_hyperscale_study = false;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  if (run_emulation_study) {
    maya::RunEmulationThroughputStudy(emulation_study_tiny);
  }
  if (run_simulation_study) {
    maya::RunSimulationThroughputStudy(simulation_study_tiny);
  }
  if (run_hyperscale_study) {
    maya::RunHyperscaleStudy(hyperscale_study_tiny);
  }
  if (run_study) {
    maya::RunEstimationThroughputStudy();
  }
  if (run_service_study) {
    maya::RunServiceThroughputStudy();
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
