// Hot-path microbenchmarks (google-benchmark): emulator API call overhead,
// discrete-event simulation throughput, trace collation + serialization, and
// random-forest inference — the per-op costs the Fig. 13 stack runtimes are
// built from.
#include <benchmark/benchmark.h>

#include "src/core/pipeline.h"
#include "src/dlf/worker_launcher.h"
#include "src/estimator/features.h"
#include "src/estimator/kernel_estimator.h"
#include "src/groundtruth/executor.h"
#include "src/models/model_zoo.h"
#include "src/trace/serialization.h"

namespace maya {
namespace {

ModelConfig BenchModel() {
  ModelConfig model;
  model.name = "bench-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 8;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 8192;
  return model;
}

TrainConfig BenchConfig() {
  TrainConfig config;
  config.global_batch_size = 32;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  return config;
}

void BM_EmulatorApiCall(benchmark::State& state) {
  VirtualHostClock clock;
  JobEmulation emulation(EmulationSpec{H100Cluster(8)});
  WorkerEmulator& worker = emulation.CreateWorker(0, &clock);
  const KernelDesc kernel = MakeGemm(1024, 1024, 1024, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(worker.cudaLaunchKernel(kernel, StreamHandle{0}));
    clock.Advance(1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmulatorApiCall);

void BM_JobEmulation(benchmark::State& state) {
  for (auto _ : state) {
    Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
    CHECK(launched.ok());
    benchmark::DoNotOptimize(launched->traces.size());
  }
}
BENCHMARK(BM_JobEmulation)->Unit(benchmark::kMillisecond);

void BM_TraceCollation(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  for (auto _ : state) {
    std::vector<WorkerTrace> copy = launched->traces;
    TraceCollator collator;
    Result<JobTrace> job = collator.Collate(std::move(copy));
    CHECK(job.ok());
    benchmark::DoNotOptimize(job->TotalOps());
  }
}
BENCHMARK(BM_TraceCollation)->Unit(benchmark::kMillisecond);

void BM_Simulation(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  TraceCollator collator;
  Result<JobTrace> job = collator.Collate(std::move(launched->traces));
  CHECK(job.ok());
  GroundTruthExecutor executor(H100Cluster(8), 3);
  const JobTrace annotated = executor.AnnotateActualDurations(*job);
  size_t events = 0;
  for (auto _ : state) {
    Simulator simulator(annotated, H100Cluster(8));
    Result<SimReport> report = simulator.Run();
    CHECK(report.ok());
    events = report->events_processed;
    benchmark::DoNotOptimize(report->total_time_us);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events) * state.iterations());
}
BENCHMARK(BM_Simulation)->Unit(benchmark::kMillisecond);

void BM_RandomForestPredict(benchmark::State& state) {
  GroundTruthExecutor executor(H100Cluster(8), 3);
  RandomForestKernelEstimator estimator;
  ProfileSweepOptions sweep;
  sweep.gemm_samples = 1500;
  sweep.conv_samples = 100;
  sweep.generic_samples = 30;
  estimator.Fit(GenerateKernelDataset(GpuArch::kH100, executor.MakeKernelProfiler(), sweep));
  const KernelDesc kernel = MakeGemm(4096, 1024, 4096, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.PredictUs(kernel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomForestPredict);

void BM_KernelFeatureExtraction(benchmark::State& state) {
  const KernelDesc kernel = MakeGemm(4096, 1024, 4096, DType::kBf16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelFeatures(kernel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelFeatureExtraction);

void BM_TraceSerialization(benchmark::State& state) {
  Result<LaunchResult> launched = EmulateJob(BenchModel(), BenchConfig(), H100Cluster(8));
  CHECK(launched.ok());
  const WorkerTrace& trace = launched->traces.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeWorkerTrace(trace));
  }
  state.SetBytesProcessed(static_cast<int64_t>(SerializeWorkerTrace(trace).size()) *
                          state.iterations());
}
BENCHMARK(BM_TraceSerialization)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maya

BENCHMARK_MAIN();
