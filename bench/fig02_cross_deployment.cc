// Figure 2: (a) how the optimal GPT-3 18.4B configuration shifts as the H100
// cluster grows from 16 to 128 GPUs, and (b) the cross-deployment cost
// matrix — running the configuration tuned for cluster i on cluster j,
// normalized to j's optimum (the paper measures up to 1.74x, with OOM when
// small-cluster recipes move to bigger iron and vice versa).
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"

namespace maya {
namespace bench {
namespace {

struct Optimal {
  TrainConfig config;
  double iteration_us = 0.0;
  double mfu = 0.0;
};

Optimal FindOptimal(const Setup& setup) {
  const ConfigSpace space = ConfigSpace::MegatronTable5(DefaultGlobalBatch(setup.model));
  Optimal best;
  std::vector<TrainConfig> valid;
  for (const TrainConfig& config : space.EnumerateAll()) {
    if (config.Validate(setup.model, setup.cluster).ok()) {
      valid.push_back(config);
    }
  }
  const size_t stride = std::max<size_t>(1, valid.size() / 150);
  for (size_t i = 0; i < valid.size(); i += stride) {
    const ActualOutcome outcome = DeployOnGroundTruth(setup, valid[i]);
    if (!outcome.oom &&
        (best.iteration_us == 0.0 || outcome.iteration_us < best.iteration_us)) {
      best.config = valid[i];
      best.iteration_us = outcome.iteration_us;
      best.mfu = outcome.mfu;
    }
  }
  CHECK_GT(best.iteration_us, 0.0) << "no runnable config found";
  return best;
}

}  // namespace
}  // namespace bench
}  // namespace maya

int main() {
  using namespace maya;
  using namespace maya::bench;

  const std::vector<int> gpu_counts = {16, 32, 64, 128};
  std::vector<Setup> setups;
  std::vector<Optimal> optima;
  for (int gpus : gpu_counts) {
    setups.push_back(Setup{StrFormat("18.4B %dxH100", gpus), Gpt3_18_4B(), H100Cluster(gpus)});
  }

  PrintBanner(std::cout, "Figure 2a: optimal configuration per cluster size (GPT-3 18.4B)");
  TablePrinter shifts({"GPUs", "DP", "TP", "PP", "SeqPar", "#MB", "ActRecomp", "#VirtStages",
                       "iter time", "MFU"});
  for (size_t i = 0; i < setups.size(); ++i) {
    optima.push_back(FindOptimal(setups[i]));
    const Optimal& best = optima.back();
    shifts.AddRow({StrFormat("%d", gpu_counts[i]),
                   StrFormat("%d", best.config.data_parallel(gpu_counts[i])),
                   StrFormat("%d", best.config.tensor_parallel),
                   StrFormat("%d", best.config.pipeline_parallel),
                   best.config.sequence_parallel ? "True" : "False",
                   StrFormat("%d", best.config.num_microbatches()),
                   best.config.activation_recomputation ? "True" : "False",
                   StrFormat("%d", best.config.virtual_pipeline_stages),
                   StrFormat("%.2f s", best.iteration_us / 1e6),
                   StrFormat("%.1f%%", best.mfu * 100.0)});
  }
  shifts.Print(std::cout);

  PrintBanner(std::cout, "Figure 2b: cross-deployment cost matrix (rows: reference cluster "
                         "the recipe was tuned for; cols: deployment cluster)");
  TablePrinter matrix({"ref\\deploy", "16", "32", "64", "128"});
  for (size_t i = 0; i < setups.size(); ++i) {
    std::vector<std::string> row = {StrFormat("%d", gpu_counts[i])};
    for (size_t j = 0; j < setups.size(); ++j) {
      const TrainConfig& recipe = optima[i].config;
      if (!recipe.Validate(setups[j].model, setups[j].cluster).ok()) {
        row.push_back("N/A");
        continue;
      }
      const ActualOutcome outcome = DeployOnGroundTruth(setups[j], recipe);
      if (outcome.oom) {
        row.push_back("OOM");
        continue;
      }
      // Same GPU type: cost ratio == time ratio at fixed global batch.
      row.push_back(StrFormat("%.2f", outcome.iteration_us / optima[j].iteration_us));
    }
    matrix.AddRow(row);
  }
  matrix.Print(std::cout);
  return 0;
}
