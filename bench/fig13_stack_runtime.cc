// Figure 13: wall-clock runtime of each Maya stage (emulator, collator,
// runtime predictor, simulator) when weak-scaling GPT-3 145.6B to 16K GPUs
// with selective launch (8 unique workers regardless of cluster size).
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"
#include "src/estimator/collective_estimator.h"

int main() {
  using namespace maya;
  using namespace maya::bench;

  const ModelConfig model = Gpt3_145_6B();
  EstimatorCache cache;
  EstimatorBank& bank = cache.BankFor(H100Cluster(64));
  AstraLikeNetworkModel astra;
  NetworkModelCollectiveEstimator astra_estimator(&astra);

  PrintBanner(std::cout,
              "Figure 13: Maya stack runtime scaling to 16K GPUs (TP8 PP8, weak scaling)");
  // "warm hit" is the estimate-cache hit rate of a repeated prediction on the
  // same pipeline — the service's repeated-what-if case (first predictions on
  // a cold pipeline are 100% misses by construction).
  TablePrinter table({"GPUs", "batch", "emulator", "collator", "predictor", "simulator",
                      "total", "warm hit", "warm predictor"});
  for (int gpus : {1024, 2048, 4096, 8192, 16384}) {
    const int dp = gpus / 64;
    const ClusterSpec cluster = H100Cluster(gpus);
    MayaPipeline pipeline(cluster, bank.kernel.get(), &astra_estimator);
    TrainConfig config;
    config.global_batch_size = static_cast<int64_t>(dp) * 64;  // microbatch size 1
    config.tensor_parallel = 8;
    config.pipeline_parallel = 8;
    config.microbatch_multiplier = 8;
    config.sequence_parallel = true;
    config.activation_recomputation = true;
    config.distributed_optimizer = true;
    CHECK(config.Validate(model, cluster).ok());

    PredictionRequest request{model, config};
    request.selective_launch = true;
    Result<PredictionReport> report = pipeline.Predict(request);
    CHECK(report.ok()) << report.status().ToString();
    CHECK(!report->oom) << report->oom_detail;
    Result<PredictionReport> warm = pipeline.Predict(request);
    CHECK(warm.ok());
    const StageTimings& timings = report->timings;
    table.AddRow({StrFormat("%d", gpus),
                  StrFormat("%lld", static_cast<long long>(config.global_batch_size)),
                  StrFormat("%.0f ms", timings.emulation_ms),
                  StrFormat("%.0f ms", timings.collation_ms),
                  StrFormat("%.0f ms", timings.estimation_ms),
                  StrFormat("%.0f ms", timings.simulation_ms),
                  StrFormat("%.0f ms", timings.total_ms()),
                  StrFormat("%.1f%%", warm->estimation.hit_rate() * 100.0),
                  StrFormat("%.0f ms", warm->timings.estimation_ms)});
  }
  table.Print(std::cout);
  return 0;
}
