// Figure 14: impact of worker deduplication on Maya's own runtime. "Maya"
// launches only the unique workers and simulates folded representatives;
// "Maya w/o dedup" emulates, estimates and simulates every GPU. The paper
// measures 74-94% runtime reductions that grow with the data-parallel degree.
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/strings.h"
#include "src/common/table_printer.h"

int main() {
  using namespace maya;
  using namespace maya::bench;

  EstimatorCache cache;
  PrintBanner(std::cout, "Figure 14: worker deduplication ablation (Maya stack runtime)");
  TablePrinter table({"setup", "config", "w/o dedup", "with dedup", "reduction",
                      "emu/col/est/sim reduction"});
  struct Case {
    Setup setup;
    TrainConfig config;
  };
  std::vector<Case> cases;
  {
    TrainConfig config;  // fixed parallelism; DP grows with the cluster
    config.global_batch_size = 256;
    config.tensor_parallel = 2;
    config.pipeline_parallel = 2;
    config.microbatch_multiplier = 2;
    config.activation_recomputation = true;
    cases.push_back({Gpt2_7B_8xV100(), config});
    cases.push_back({Gpt2_7B_16xV100(), config});
    Setup v32{"GPT3 2.7B - 32xV100", Gpt3_2_7B(), V100Cluster(32)};
    cases.push_back({v32, config});
  }
  {
    TrainConfig config;
    config.global_batch_size = 512;
    config.tensor_parallel = 4;
    config.pipeline_parallel = 2;
    config.microbatch_multiplier = 8;
    config.sequence_parallel = true;
    config.activation_recomputation = true;
    cases.push_back({Gpt18_4B_32xH100(), config});
    cases.push_back({Gpt18_4B_64xH100(), config});
  }

  for (const Case& test_case : cases) {
    // Isolate the worker-dedup lever: a warm cross-trial estimate cache would
    // make whichever arm runs second near-free in the estimation stage, so
    // both arms run on a cache-free pipeline built from the shared bank.
    EstimatorBank& bank = cache.BankFor(test_case.setup.cluster);
    MayaPipelineOptions options;
    options.enable_estimate_cache = false;
    // Same hygiene for stage 4: the with-dedup arm must not replay components
    // from a cache warmed by the without-dedup arm.
    options.enable_sim_cache = false;
    MayaPipeline pipeline(test_case.setup.cluster, bank.kernel.get(), bank.collective.get(),
                          options);
    CHECK(test_case.config.Validate(test_case.setup.model, test_case.setup.cluster).ok());

    PredictionRequest without{test_case.setup.model, test_case.config};
    without.deduplicate_workers = false;  // every GPU emulated and simulated
    PredictionRequest with{test_case.setup.model, test_case.config};
    with.selective_launch = true;  // unique workers only

    Result<PredictionReport> slow = pipeline.Predict(without);
    Result<PredictionReport> fast = pipeline.Predict(with);
    CHECK(slow.ok() && fast.ok());
    CHECK(!slow->oom) << slow->oom_detail;
    const double slow_ms = slow->timings.total_ms();
    const double fast_ms = fast->timings.total_ms();
    // Per-stage reductions (emulator / collator / estimator / simulator):
    // shows where the dedup lever lands, not just the total.
    auto stage_reduction = [](double without_ms, double with_ms) {
      return without_ms > 0.0 ? (1.0 - with_ms / without_ms) * 100.0 : 0.0;
    };
    table.AddRow({test_case.setup.label, test_case.config.Summary(),
                  StrFormat("%.0f ms", slow_ms), StrFormat("%.0f ms", fast_ms),
                  StrFormat("-%.0f%%", (1.0 - fast_ms / slow_ms) * 100.0),
                  StrFormat("-%.0f/-%.0f/-%.0f/-%.0f%%",
                            stage_reduction(slow->timings.emulation_ms,
                                            fast->timings.emulation_ms),
                            stage_reduction(slow->timings.collation_ms,
                                            fast->timings.collation_ms),
                            stage_reduction(slow->timings.estimation_ms,
                                            fast->timings.estimation_ms),
                            stage_reduction(slow->timings.simulation_ms,
                                            fast->timings.simulation_ms))});
  }
  table.Print(std::cout);
  return 0;
}
