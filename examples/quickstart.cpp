// Quickstart: predict the iteration time of a GPT-3 2.7B Megatron training
// job on an 8xV100 cluster without any GPU.
//
//   1. Train Maya's kernel + collective estimators from profiling-mode data.
//   2. Describe the workload (model + training configuration).
//   3. Run the four-stage pipeline: emulate -> collate -> estimate -> simulate.
#include <cstdio>

#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/models/model_zoo.h"

int main() {
  using namespace maya;

  // The emulated deployment target (Fig. 5's "emulation spec").
  const ClusterSpec cluster = V100Cluster(8);
  std::printf("cluster: %s\n", cluster.ToString().c_str());

  // Estimators are trained once per architecture from profiled kernel
  // microbenchmarks and nccl-tests-style collective sweeps (Appendix B). In
  // this repository "profiling mode" dispatches onto the ground-truth
  // cluster executor (see DESIGN.md).
  GroundTruthExecutor profiling_hardware(cluster, /*seed=*/2026);
  const EstimatorBank bank = TrainEstimators(cluster, profiling_hardware);
  MayaPipeline maya(cluster, bank.kernel.get(), bank.collective.get());

  // The workload: unmodified Megatron-style training of GPT-3 2.7B.
  PredictionRequest request;
  request.model = Gpt3_2_7B();
  request.config.global_batch_size = 256;
  request.config.tensor_parallel = 2;
  request.config.pipeline_parallel = 2;
  request.config.microbatch_multiplier = 2;
  request.config.activation_recomputation = true;
  std::printf("model:   %s\n", request.model.Summary().c_str());
  std::printf("config:  %s\n", request.config.Summary().c_str());

  const Result<PredictionReport> report = maya.Predict(request);
  if (!report.ok()) {
    std::printf("prediction failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  if (report->oom) {
    std::printf("configuration does not fit device memory: %s\n",
                report->oom_detail.c_str());
    return 0;
  }
  std::printf("\npredicted iteration time: %.1f ms\n", report->iteration_time_us / 1e3);
  std::printf("predicted MFU:            %.1f%%\n", report->mfu * 100.0);
  std::printf("communication time:       %.1f ms (exposed %.1f ms)\n",
              report->sim.comm_time_us / 1e3, report->sim.exposed_comm_us / 1e3);
  std::printf("peak device memory:       %.1f GiB\n",
              report->sim.peak_memory_bytes / (1024.0 * 1024.0 * 1024.0));
  std::printf("Maya stack runtime:       %.0f ms (emulate %.0f / collate %.0f / "
              "estimate %.0f / simulate %.0f)\n",
              report->timings.total_ms(), report->timings.emulation_ms,
              report->timings.collation_ms, report->timings.estimation_ms,
              report->timings.simulation_ms);
  return 0;
}
