// Memory what-if analysis: which GPT-3 18.4B recipes fit a 32xH100 cluster?
// The emulator's physical resource tracking detects OOM exactly where real
// hardware would (§4.1), so feasibility boundaries cost milliseconds to map
// — no cluster time, no crashed jobs.
#include <cstdio>

#include "src/dlf/worker_launcher.h"
#include "src/models/model_zoo.h"

int main() {
  using namespace maya;

  const ClusterSpec cluster = H100Cluster(32);
  const ModelConfig model = Gpt3_18_4B();
  std::printf("feasibility map: %s on %s\n\n", model.Summary().c_str(),
              cluster.ToString().c_str());
  std::printf("%-6s %-6s %-10s %-12s %s\n", "tp", "pp", "recompute", "result",
              "peak memory");

  for (int tp : {2, 4, 8}) {
    for (int pp : {1, 2, 4}) {
      for (bool recompute : {false, true}) {
        TrainConfig config;
        config.global_batch_size = 512;
        config.tensor_parallel = tp;
        config.pipeline_parallel = pp;
        config.microbatch_multiplier = 8;
        config.sequence_parallel = true;
        config.activation_recomputation = recompute;
        if (!config.Validate(model, cluster).ok()) {
          continue;
        }
        LaunchOptions options;
        options.selective_launch = true;
        const Result<LaunchResult> launched = EmulateJob(model, config, cluster, options);
        if (!launched.ok()) {
          std::printf("%-6d %-6d %-10s %-12s\n", tp, pp, recompute ? "yes" : "no",
                      "error");
          continue;
        }
        if (launched->oom) {
          std::printf("%-6d %-6d %-10s %-12s (%s)\n", tp, pp, recompute ? "yes" : "no",
                      "OOM", launched->oom_detail.c_str());
          continue;
        }
        uint64_t peak = 0;
        for (const WorkerTrace& trace : launched->traces) {
          peak = std::max(peak, trace.peak_device_bytes);
        }
        std::printf("%-6d %-6d %-10s %-12s %.1f GiB of 80 GiB\n", tp, pp,
                    recompute ? "yes" : "no", "fits", peak / (1024.0 * 1024.0 * 1024.0));
      }
    }
  }
  return 0;
}
