// Trace inspection: emulate one worker of a pipeline-parallel job, dump the
// first trace events as JSON (the emulator's interchange format, Fig. 3),
// and show the dedup statistics the collator derives.
#include <cstdio>

#include "src/dlf/worker_launcher.h"
#include "src/models/model_zoo.h"
#include "src/trace/collator.h"
#include "src/trace/serialization.h"

int main() {
  using namespace maya;

  const ClusterSpec cluster = H100Cluster(8);
  ModelConfig model = Gpt3_1_3B();
  TrainConfig config;
  config.global_batch_size = 64;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;
  config.activation_recomputation = true;

  const Result<LaunchResult> launched = EmulateJob(model, config, cluster);
  if (!launched.ok() || launched->oom) {
    std::printf("emulation failed\n");
    return 1;
  }

  const WorkerTrace& rank0 = launched->traces.front();
  std::printf("rank 0 trace: %s\n\n", rank0.Summary().c_str());

  // The JSON event stream, truncated to the first kernel/collective events.
  WorkerTrace preview = rank0;
  preview.ops.resize(12);
  std::printf("first 12 events as JSON:\n%s\n\n",
              SerializeWorkerTrace(preview).c_str());

  // Collation folds structurally identical workers (§4.2).
  std::vector<WorkerTrace> traces = launched->traces;
  TraceCollator collator;
  const Result<JobTrace> job = collator.Collate(std::move(traces));
  if (!job.ok()) {
    std::printf("collation failed: %s\n", job.status().ToString().c_str());
    return 1;
  }
  std::printf("collation: %d workers -> %d unique (%d folded), %zu communicators\n",
              collator.stats().total_workers, collator.stats().unique_workers,
              collator.stats().duplicates_folded, job->comms.size());
  for (size_t w = 0; w < job->workers.size(); ++w) {
    std::printf("  representative rank %d stands for ranks:", job->workers[w].rank);
    for (int rank : job->folded_ranks[w]) {
      std::printf(" %d", rank);
    }
    std::printf("\n");
  }
  return 0;
}
