// Maya-as-a-service quickstart: host a fleet of deployments behind the
// concurrent ServiceEngine, answer typed what-if scenarios through the NDJSON
// protocol — including cross-arch predictions via a registered second bank
// and a batch_predict under one queue slot — persist the fleet as a v2
// artifact bundle, and warm-start a second engine from it. This is the flow
// `tools/maya_serve` wraps behind stdio.
//
//   1. Train estimators once per architecture (or load a saved bundle).
//   2. Serve Predict / BatchPredict / WhatIf / Search requests from many
//      clients; target any deployment by name ("v100x16" etc.).
//   3. Save the v2 artifact bundle; a restarted engine answers the same
//      sweep from the caches without re-training.
#include <cstdio>

#include "src/core/estimator_bank.h"
#include "src/core/execution_context.h"
#include "src/service/artifact_store.h"
#include "src/service/service_client.h"
#include "src/service/service_engine.h"

int main() {
  using namespace maya;

  const ClusterSpec cluster = H100Cluster(8);

  // --- 1. Cold start: train the estimator stack (once per arch). -----------
  GroundTruthExecutor profiling_hardware(cluster, /*seed=*/2026);
  ProfileSweepOptions sweep;  // trimmed sweep keeps the example quick
  sweep.gemm_samples = 2000;
  sweep.conv_samples = 200;
  sweep.generic_samples = 60;
  sweep.collective_sizes = 12;
  ServiceEngineOptions options;
  options.worker_threads = 4;
  // One shared pool drives emulation + estimation of every deployment.
  options.pipeline.context = ExecutionContext::Create(4);
  // Admission control is weight-based: searches occupy far more of the
  // queue bound than predicts.
  options.max_queue_weight = 64.0;
  options.weights.search = 16.0;
  Result<std::unique_ptr<ServiceEngine>> created = ServiceEngine::Create(
      cluster, TrainEstimators(cluster, profiling_hardware, sweep), options);
  if (!created.ok()) {
    std::printf("engine construction failed: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ServiceEngine> engine = *std::move(created);

  // Register a second per-arch bank: V100 what-ifs now answer from V100
  // estimators even though the engine's default deployment is H100.
  const ClusterSpec v100 = V100Cluster(8);
  GroundTruthExecutor v100_hardware(v100, /*seed=*/2027);
  if (!engine->AddDeployment("v100x8", v100, TrainEstimators(v100, v100_hardware, sweep)).ok()) {
    std::printf("failed to register v100 deployment\n");
    return 1;
  }

  // --- 2. Ask what-if questions through the wire protocol. -----------------
  // The in-process transport serializes every call to one NDJSON line and
  // parses the response line — exactly what a remote maya_serve client sees.
  InProcessTransport transport(engine.get());
  ServiceClient client(&transport);

  ModelConfig model;
  model.name = "example-gpt";
  model.family = ModelFamily::kGpt;
  model.num_layers = 12;
  model.hidden_size = 1024;
  model.num_heads = 16;
  model.seq_length = 512;
  model.vocab_size = 16384;

  TrainConfig config;
  config.global_batch_size = 64;
  config.tensor_parallel = 2;
  config.pipeline_parallel = 2;
  config.microbatch_multiplier = 2;

  Result<ServiceResponse> predicted = client.Predict(model, config);
  if (!predicted.ok() || !predicted->ok) {
    std::printf("predict failed\n");
    return 1;
  }
  std::printf("predict:        %.1f ms/iteration, MFU %.1f%% (cache hit rate %.0f%%)\n",
              predicted->iteration_time_us / 1e3, predicted->mfu * 100.0,
              predicted->estimation.hit_rate() * 100.0);

  // batch_predict: one queue slot, per-item reports, bit-identical to the
  // same predicts issued sequentially.
  std::vector<TrainConfig> batch_configs;
  for (int tp : {1, 2, 4}) {
    TrainConfig variant = config;
    variant.tensor_parallel = tp;
    batch_configs.push_back(variant);
  }
  Result<ServiceResponse> batch = client.BatchPredict(model, batch_configs);
  if (batch->ok) {
    std::printf("batch_predict:  %zu configs in one request:", batch->batch.size());
    for (const PredictResult& item : batch->batch) {
      std::printf(" %.1fms", item.iteration_time_us / 1e3);
    }
    std::printf("\n");
  }

  TrainConfig heavy = config;
  heavy.microbatch_multiplier = 1;
  heavy.activation_recomputation = false;
  Result<ServiceResponse> feasibility = client.CheckOom(model, heavy);
  std::printf("whatif_oom:     %s\n",
              feasibility->oom ? feasibility->oom_detail.c_str() : "fits device memory");

  // Deployment-targeted predicts: a bigger same-arch cluster (derived from
  // the default H100 bank) and a cross-arch V100 cluster (answered by the
  // registered V100 bank — a v1 engine refused this).
  Result<ServiceResponse> scaled = client.Predict(model, config, "h100x16");
  if (scaled->ok) {
    std::printf("deployment:     %.1f ms/iteration on h100x16 (same estimators)\n",
                scaled->iteration_time_us / 1e3);
  }
  Result<ServiceResponse> cross = client.Predict(model, config, "v100x16");
  if (cross->ok) {
    std::printf("cross-arch:     %.1f ms/iteration on v100x16 (V100 bank)\n",
                cross->iteration_time_us / 1e3);
  }

  SearchOptions search;
  search.algorithm = "random";
  search.sample_budget = 48;
  search.seed = 3;
  Result<ServiceResponse> best = client.Search(model, search, /*global_batch=*/64);
  if (best->ok && best->found) {
    std::printf("search:         best MFU %.1f%% over %d samples (%s)\n",
                best->best_mfu * 100.0, best->samples, best->best_config.Summary().c_str());
  }

  // --- 3. Persist the fleet; warm-start a second engine. -------------------
  ArtifactStore store("maya_artifacts.bundle");
  if (!store.SaveRegistry(engine->registry()).ok()) {
    std::printf("artifact save failed\n");
    return 1;
  }
  engine->Shutdown();

  Result<std::unique_ptr<ServiceEngine>> warm =
      ServiceEngine::FromArtifacts(cluster, store, options);
  if (!warm.ok()) {
    std::printf("warm start failed: %s\n", warm.status().ToString().c_str());
    return 1;
  }
  InProcessTransport warm_transport(warm->get());
  ServiceClient warm_client(&warm_transport);
  Result<ServiceResponse> warm_predict = warm_client.Predict(model, config);
  std::printf("warm restart:   %.1f ms/iteration, cache hit rate %.0f%% "
              "(bit-identical: %s, %zu deployments restored, no re-training)\n",
              warm_predict->iteration_time_us / 1e3,
              warm_predict->estimation.hit_rate() * 100.0,
              warm_predict->iteration_time_us == predicted->iteration_time_us ? "yes" : "no",
              (*warm)->registry().Registered().size());
  return 0;
}
