// Hyperscale what-if study (§7.4): how does GPT-3 145.6B training scale from
// 512 to 4096 GPUs? Uses selective launch (only the analytically-unique
// pipeline-stage workers are emulated) and the ASTRA-sim-like hierarchical
// network model instead of profiled collectives.
#include <cstdio>

#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/estimator/collective_estimator.h"
#include "src/models/model_zoo.h"

int main() {
  using namespace maya;

  const ModelConfig model = Gpt3_145_6B();
  std::printf("scaling study for %s\n\n", model.Summary().c_str());

  // Kernel estimators transfer across cluster sizes of one architecture.
  GroundTruthExecutor profiling_hardware(H100Cluster(64), 2026);
  const EstimatorBank bank = TrainEstimators(H100Cluster(64), profiling_hardware);
  AstraLikeNetworkModel astra;
  NetworkModelCollectiveEstimator collectives(&astra);

  std::printf("%8s %6s %12s %8s %14s\n", "GPUs", "DP", "iteration", "MFU",
              "Maya stack ms");
  for (int dp : {8, 16, 32, 64}) {
    const int gpus = dp * 64;  // TP8 x PP8 per replica
    const ClusterSpec cluster = H100Cluster(gpus);
    MayaPipeline maya(cluster, bank.kernel.get(), &collectives);

    PredictionRequest request;
    request.model = model;
    request.config.global_batch_size = static_cast<int64_t>(dp) * 192;
    request.config.tensor_parallel = 8;
    request.config.pipeline_parallel = 8;
    request.config.microbatch_multiplier = 8;
    request.config.sequence_parallel = true;
    request.config.activation_recomputation = true;
    request.config.distributed_optimizer = true;
    request.selective_launch = true;

    const Result<PredictionReport> report = maya.Predict(request);
    if (!report.ok() || report->oom) {
      std::printf("%8d %6d  (did not fit)\n", gpus, dp);
      continue;
    }
    std::printf("%8d %6d %10.2f s %7.1f%% %12.0f\n", gpus, dp,
                report->iteration_time_us / 1e6, report->mfu * 100.0,
                report->timings.total_ms());
  }
  std::printf("\nMFU decays sublinearly as inter-node gradient traffic grows — the\n"
              "paper's Fig. 12 trend — while Maya itself runs on a laptop-class CPU.\n");
  return 0;
}
