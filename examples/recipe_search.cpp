// Maya-Search: find the optimal Megatron training recipe for GPT-3 2.7B on
// a 16xV100 cluster with CMA-ES over the Table 5 configuration space —
// worker dedup, result caching, fidelity-preserving pruning and top-5 early
// stopping enabled (§5).
#include <cstdio>

#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/models/model_zoo.h"
#include "src/search/search_driver.h"

int main() {
  using namespace maya;

  const ClusterSpec cluster = V100Cluster(16);
  const ModelConfig model = Gpt3_2_7B();
  std::printf("searching recipes for %s on %s\n", model.Summary().c_str(),
              cluster.ToString().c_str());

  GroundTruthExecutor profiling_hardware(cluster, 2026);
  const EstimatorBank bank = TrainEstimators(cluster, profiling_hardware);
  MayaPipeline maya(cluster, bank.kernel.get(), bank.collective.get());

  const ConfigSpace space = ConfigSpace::MegatronTable5(DefaultGlobalBatch(model));
  std::printf("configuration space: %zu points (Table 5 knobs)\n", space.size());

  SearchOptions options;
  options.algorithm = "cma";
  options.sample_budget = 2000;
  options.early_stop_patience = 20;
  options.seed = 7;
  Result<SearchOutcome> search = RunSearch(maya, model, space, options);
  if (!search.ok()) {
    std::printf("search failed: %s\n", search.status().ToString().c_str());
    return 1;
  }
  const SearchOutcome& outcome = *search;

  if (!outcome.found) {
    std::printf("no runnable configuration found\n");
    return 1;
  }
  std::printf("\nbest recipe: %s\n", outcome.best_config.Summary().c_str());
  std::printf("  predicted iteration time: %.2f s\n", outcome.best_iteration_us / 1e6);
  std::printf("  predicted MFU:            %.1f%%\n", outcome.best_mfu * 100.0);
  std::printf("search statistics:\n");
  std::printf("  wall time: %.1f s | samples: %d | executed: %d | cached: %d | "
              "pruned: %d | invalid: %d | OOM: %d\n",
              outcome.wall_ms / 1e3, outcome.samples, outcome.executed, outcome.cached,
              outcome.skipped, outcome.invalid, outcome.oom);
  std::printf("  unique valid configurations evaluated: %d\n", outcome.unique_valid);
  return 0;
}
