// Pluggable estimators (§4.3): every stage of the Maya stack is replaceable.
// This example swaps the default random-forest kernel estimator for a
// user-supplied analytical roofline model (a stand-in for Habitat- or
// GPU-Mangrove-style predictors) and compares the two predictions.
#include <cstdio>

#include "src/core/estimator_bank.h"
#include "src/core/pipeline.h"
#include "src/models/model_zoo.h"

int main() {
  using namespace maya;

  const ClusterSpec cluster = H100Cluster(8);
  const ModelConfig model = Gpt3_1_3B();
  PredictionRequest request;
  request.model = model;
  request.config.global_batch_size = 64;
  request.config.tensor_parallel = 2;
  request.config.pipeline_parallel = 2;
  request.config.microbatch_multiplier = 2;
  request.config.activation_recomputation = true;

  GroundTruthExecutor profiling_hardware(cluster, 2026);
  const EstimatorBank bank = TrainEstimators(cluster, profiling_hardware);

  // --- Default: learned random forests -------------------------------------
  MayaPipeline learned(cluster, bank.kernel.get(), bank.collective.get());
  const Result<PredictionReport> learned_report = learned.Predict(request);

  // --- Custom: a simple analytical roofline over the same GPU spec ----------
  const GpuSpec gpu = cluster.gpu;
  CallbackKernelEstimator roofline(
      "analytical-roofline", [gpu](const KernelDesc& kernel) {
        const bool tensor = kernel.dtype == DType::kBf16 || kernel.dtype == DType::kFp16;
        const double peak = (tensor ? gpu.peak_tensor_flops : gpu.peak_fp32_flops) * 0.5;
        const double compute_us = kernel.flops / peak * 1e6;
        const double memory_us = kernel.total_bytes() / (gpu.hbm_bandwidth * 0.8) * 1e6;
        return 2.0 + std::max(compute_us, memory_us);
      });
  MayaPipeline analytical(cluster, &roofline, bank.collective.get());
  const Result<PredictionReport> analytical_report = analytical.Predict(request);

  if (!learned_report.ok() || !analytical_report.ok()) {
    std::printf("prediction failed\n");
    return 1;
  }
  std::printf("config: %s\n\n", request.config.Summary().c_str());
  std::printf("random-forest estimators:  %.1f ms/iteration (MFU %.1f%%)\n",
              learned_report->iteration_time_us / 1e3, learned_report->mfu * 100.0);
  std::printf("user roofline estimator:   %.1f ms/iteration (MFU %.1f%%)\n",
              analytical_report->iteration_time_us / 1e3, analytical_report->mfu * 100.0);
  std::printf("\nSame emulation, same collation, same simulator — only the kernel\n"
              "runtime estimator changed. Collective estimators (profiled tables,\n"
              "ASTRA-sim-like analytical models) plug in the same way.\n");
  return 0;
}
