// maya_bundle: offline artifact-bundle maintenance.
//
// Subcommands:
//   maya_bundle info DIR
//     Prints the bundle's manifest: version, deployments, per-deployment
//     cache entry counts and usage metadata.
//
//   maya_bundle merge --out=DIR IN1 IN2 [IN3 ...]
//     Merges two or more bundles into a v2 bundle at DIR (see
//     src/service/bundle_merge.h): deployments matched by name, estimate/sim
//     caches unioned with keep-first conflict resolution, hex-double
//     exactness preserved byte-for-byte. Refuses to pool caches produced by
//     differently trained estimators under one deployment name. The merged
//     bundle is verified loadable before the tool reports success.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/service/artifact_store.h"
#include "src/service/bundle_merge.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  maya_bundle info DIR\n"
               "  maya_bundle merge --out=DIR IN1 IN2 [IN3 ...]\n");
  return 2;
}

int RunInfo(const std::string& dir) {
  using namespace maya;
  const ArtifactStore store(dir);
  Result<ArtifactManifest> manifest = store.ReadManifest();
  if (!manifest.ok()) {
    std::fprintf(stderr, "maya_bundle: %s\n", manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("bundle %s (v%d, %zu deployment%s)\n", dir.c_str(), manifest->version,
              manifest->deployments.size(), manifest->deployments.size() == 1 ? "" : "s");
  for (const DeploymentManifest& deployment : manifest->deployments) {
    std::printf("  %-16s %s  kernel=%llu collective=%llu sim=%llu", deployment.name.c_str(),
                deployment.cluster.ToString().c_str(),
                static_cast<unsigned long long>(deployment.kernel_cache_entries),
                static_cast<unsigned long long>(deployment.collective_cache_entries),
                static_cast<unsigned long long>(deployment.sim_cache_entries));
    if (deployment.timed_requests > 0) {
      std::printf("  (%llu timed requests)",
                  static_cast<unsigned long long>(deployment.timed_requests));
    }
    std::printf("\n");
  }
  return 0;
}

int RunMerge(const std::string& out_dir, const std::vector<std::string>& inputs) {
  using namespace maya;
  Result<BundleMergeReport> report = MergeBundles(inputs, out_dir);
  if (!report.ok()) {
    std::fprintf(stderr, "maya_bundle: %s\n", report.status().ToString().c_str());
    return 1;
  }
  // Belt and braces: the merged bundle must actually load before we claim
  // success (catches estimator/cache shape drift at merge time, not at the
  // next server start).
  const ArtifactStore store(out_dir);
  if (Result<std::vector<LoadedDeployment>> loaded = store.LoadDeployments();
      !loaded.ok()) {
    std::fprintf(stderr, "maya_bundle: merged bundle fails to load: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  for (const BundleMergeReport::DeploymentReport& entry : report->deployments) {
    std::printf(
        "merged %-16s from %llu input(s): kernel=%llu (+%llu dup) collective=%llu (+%llu dup) "
        "sim=%llu (+%llu dup)\n",
        entry.name.c_str(), static_cast<unsigned long long>(entry.inputs),
        static_cast<unsigned long long>(entry.kernel_entries),
        static_cast<unsigned long long>(entry.kernel_conflicts),
        static_cast<unsigned long long>(entry.collective_entries),
        static_cast<unsigned long long>(entry.collective_conflicts),
        static_cast<unsigned long long>(entry.sim_entries),
        static_cast<unsigned long long>(entry.sim_conflicts));
  }
  std::printf("wrote v2 bundle to %s\n", out_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "info") {
    if (argc != 3) {
      return Usage();
    }
    return RunInfo(argv[2]);
  }
  if (command == "merge") {
    std::string out_dir;
    std::vector<std::string> inputs;
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--out=", 6) == 0) {
        out_dir = argv[i] + 6;
      } else if (argv[i][0] == '-') {
        std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
        return Usage();
      } else {
        inputs.push_back(argv[i]);
      }
    }
    if (out_dir.empty() || inputs.size() < 2) {
      return Usage();
    }
    return RunMerge(out_dir, inputs);
  }
  return Usage();
}
