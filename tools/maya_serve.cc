// maya_serve: stdio front-end for the Maya prediction service.
//
// Reads newline-delimited JSON requests from stdin, writes one JSON response
// line per request to stdout (in submission order), and serves them from a
// single warm ServiceEngine hosting a registry of deployments. On startup
// the engine either loads a persistent artifact bundle (--artifacts=DIR,
// when present) — skipping estimator training and warm-starting the estimate
// caches of every bundled deployment — or trains estimators from profiling
// sweeps (one bank per requested deployment) and, with --save_artifacts,
// persists the whole fleet as a v2 bundle on exit so the next start is warm.
//
// Usage:
//   maya_serve [--cluster=h100x8] [--deployments=v100x8,a40] [--workers=4]
//              [--queue_weight=64] [--search_weight=16]
//              [--execution_threads=0] [--artifacts=DIR] [--save_artifacts]
//              [--sweep=full|small|tiny] [--no_sim_cache]
//              [--fault_spec=SPEC] [--fault_seed=N]
//              [--trace_out=DIR] [--metrics_out=FILE] [--slow_trace_ms=N]
//              [--listen=HOST:PORT] [--state_dir=DIR] [--checkpoint_every=N]
//
// --state_dir=DIR arms crash-consistent fleet durability (see
// src/service/fleet_journal.h): every acknowledged add/remove_deployment is
// appended to an fsync'd journal before its response resolves, and the fleet
// is periodically checkpointed into an atomic v2 bundle under DIR (every
// --checkpoint_every journaled mutations, plus once at graceful exit). On
// startup the server loads the latest checkpoint, replays the journal tail
// through the normal admin path, and serves the exact pre-crash fleet — a
// kill -9 at any point loses at most the mutations whose responses were
// never sent, and warm predicts answer bit-identically to the dead server.
//
// --listen=HOST:PORT serves the same NDJSON protocol over TCP instead of
// stdio: an epoll event loop multiplexes many concurrent connections into
// the one engine (see src/net/tcp_server.h), each with ordered responses and
// bounded per-connection write buffers (slow readers are shed, not waited
// on). PORT 0 binds an ephemeral port; the actual endpoint is announced on
// stderr as "maya_serve: listening on HOST:PORT". SIGTERM drains: stops
// accepting, answers in-flight requests, flushes, then exits. Responses are
// byte-identical to stdio serving — the transports share codec and engine.
//
// --no_sim_cache disables the cross-trial simulation cache (stage 4 replays
// every comm component fresh; output-preserving either way).
//
// --trace_out=DIR enables span tracing: every request records queue-wait and
// per-stage spans, "dump_trace" requests write Chrome trace-event JSON files
// (openable in Perfetto / chrome://tracing) under DIR, and — with
// --slow_trace_ms=N — any request slower than N ms automatically writes its
// span tree to DIR/slow_trace_<id>.json. --slow_trace_ms without --trace_out
// still arms span recording and slow-request counting; the traces are only
// reachable via "dump_trace" (returned inline).
//
// --metrics_out=FILE writes the metrics registry + service counters in
// Prometheus text exposition format: refreshed after every "metrics" request
// and once more at shutdown after the final drain.
//
// --fault_spec arms deterministic fault injection (testing only): a comma-
// separated list of site=probability[@max_fires] clauses, sites matching
// the names in src/common/fault_injection.h ("pipeline.*", "artifact.*",
// "service.submit", "service.worker"; trailing '*' wildcards allowed).
// Seeded by --fault_seed: same spec + seed + request order = same faults.
//
// SIGTERM (and EOF / a "shutdown" line) triggers a graceful drain: no new
// requests admitted, in-flight requests finish and answer, artifacts flush
// (--save_artifacts), then the process exits.
//
// --cluster is the default deployment; --deployments registers additional
// per-arch banks (each trains its own estimators on a cold start), enabling
// cross-arch what-ifs: a predict carrying "deployment":"v100x16" answers
// from the v100 bank even when the default deployment is H100.
//
// Protocol examples (one line each; see src/service/protocol.h):
//   {"id":1,"kind":"predict","model":{"name":"gpt3-2.7b","family":"Gpt",
//    "num_layers":32,"hidden_size":2560,"num_heads":32,"vocab_size":51200,
//    "seq_length":2048},"config":{"global_batch_size":256,"tensor_parallel":2,
//    "pipeline_parallel":2,"microbatch_multiplier":2}}
//   {"id":2,"kind":"stats"}
// EOF (or a line "shutdown") stops the server.
#include <unistd.h>

#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/common/telemetry.h"
#include "src/core/estimator_bank.h"
#include "src/core/execution_context.h"
#include "src/net/tcp_server.h"
#include "src/service/artifact_store.h"
#include "src/service/fleet_journal.h"
#include "src/service/metrics_exporter.h"
#include "src/service/protocol.h"
#include "src/service/service_engine.h"

namespace {

struct ServeFlags {
  std::string cluster = "h100x8";
  std::string deployments;  // comma-separated extra deployment cluster names
  int workers = 4;
  double queue_weight = 64.0;
  double search_weight = 16.0;
  int execution_threads = 0;
  std::string artifacts;
  bool save_artifacts = false;
  std::string sweep = "small";
  bool sim_cache = true;
  std::string fault_spec;
  uint64_t fault_seed = 1;
  std::string trace_out;
  std::string metrics_out;
  double slow_trace_ms = 0.0;
  std::string listen;     // HOST:PORT; empty = stdio serving
  std::string state_dir;  // durable fleet state; empty = no journal
  uint64_t checkpoint_every = 4;
};

// SIGTERM → graceful drain. The handler only sets a flag; it is installed
// WITHOUT SA_RESTART so the blocking getline on stdin fails with EINTR and
// the read loop falls through to the drain path.
volatile std::sig_atomic_t g_sigterm = 0;
void HandleSigterm(int) { g_sigterm = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> items;
  size_t begin = 0;
  while (begin <= list.size()) {
    const size_t end = list.find(',', begin);
    const std::string item =
        list.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
    if (!item.empty()) {
      items.push_back(item);
    }
    if (end == std::string::npos) {
      break;
    }
    begin = end + 1;
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace maya;

  ServeFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--cluster", &flags.cluster)) {
    } else if (ParseFlag(argv[i], "--deployments", &flags.deployments)) {
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      flags.workers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--queue_weight", &value) ||
               ParseFlag(argv[i], "--queue", &value)) {
      flags.queue_weight = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--search_weight", &value)) {
      flags.search_weight = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--execution_threads", &value)) {
      flags.execution_threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--artifacts", &flags.artifacts)) {
    } else if (std::strcmp(argv[i], "--save_artifacts") == 0) {
      flags.save_artifacts = true;
    } else if (std::strcmp(argv[i], "--no_sim_cache") == 0) {
      flags.sim_cache = false;
    } else if (ParseFlag(argv[i], "--sweep", &flags.sweep)) {
    } else if (ParseFlag(argv[i], "--fault_spec", &flags.fault_spec)) {
    } else if (ParseFlag(argv[i], "--fault_seed", &value)) {
      flags.fault_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--trace_out", &flags.trace_out)) {
    } else if (ParseFlag(argv[i], "--metrics_out", &flags.metrics_out)) {
    } else if (ParseFlag(argv[i], "--slow_trace_ms", &value)) {
      flags.slow_trace_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--listen", &flags.listen)) {
    } else if (ParseFlag(argv[i], "--state_dir", &flags.state_dir)) {
    } else if (ParseFlag(argv[i], "--checkpoint_every", &value)) {
      flags.checkpoint_every = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  Result<ClusterSpec> cluster = ClusterSpecByName(flags.cluster);
  if (!cluster.ok()) {
    std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
    return 2;
  }
  // The same presets back the add_deployment protocol kind (see
  // ProfileSweepPreset), so the flag and the wire accept the same names.
  Result<ProfileSweepOptions> sweep = ProfileSweepPreset(flags.sweep);
  if (!sweep.ok()) {
    std::fprintf(stderr, "--sweep: %s\n", sweep.status().ToString().c_str());
    return 2;
  }
  std::string listen_host;
  int listen_port = -1;
  if (!flags.listen.empty()) {
    const size_t colon = flags.listen.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == flags.listen.size()) {
      std::fprintf(stderr, "--listen expects HOST:PORT, got '%s'\n", flags.listen.c_str());
      return 2;
    }
    listen_host = flags.listen.substr(0, colon);
    listen_port = std::atoi(flags.listen.c_str() + colon + 1);
  }
  if (!flags.fault_spec.empty()) {
    const Status armed = FaultInjection::Instance().Configure(flags.fault_spec, flags.fault_seed);
    if (!armed.ok()) {
      std::fprintf(stderr, "--fault_spec: %s\n", armed.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "maya_serve: fault injection armed (%s, seed %llu)\n",
                 flags.fault_spec.c_str(), static_cast<unsigned long long>(flags.fault_seed));
  }
  if (flags.save_artifacts && flags.artifacts.empty()) {
    std::fprintf(stderr, "--save_artifacts requires --artifacts=DIR\n");
    return 2;  // fail before paying minutes of training for a save that can't happen
  }
  if (!flags.trace_out.empty() || flags.slow_trace_ms > 0.0) {
    Telemetry::Options telemetry;
    telemetry.tracing = !flags.trace_out.empty();
    telemetry.slow_request_threshold_ms = flags.slow_trace_ms;
    Telemetry::Instance().Configure(telemetry);
    if (!flags.trace_out.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(flags.trace_out, ec);
      if (ec) {
        std::fprintf(stderr, "--trace_out: cannot create %s: %s\n", flags.trace_out.c_str(),
                     ec.message().c_str());
        return 2;
      }
      if (flags.slow_trace_ms > 0.0) {
        const std::string trace_dir = flags.trace_out;
        Telemetry::Instance().SetTraceSink(
            [trace_dir](uint64_t trace_id, const std::string& trace_json) {
              const std::string path = trace_dir + "/slow_trace_" +
                                       std::to_string(trace_id) + ".json";
              if (const Status written = WriteTextFile(path, trace_json); !written.ok()) {
                std::fprintf(stderr, "maya_serve: slow-trace write failed: %s\n",
                             written.ToString().c_str());
              }
            });
      }
      std::fprintf(stderr, "maya_serve: tracing spans to %s%s\n", flags.trace_out.c_str(),
                   flags.slow_trace_ms > 0.0 ? " (slow requests auto-dump)" : "");
    }
  }
  const std::vector<std::string> extra_deployments = SplitCommaList(flags.deployments);
  for (const std::string& name : extra_deployments) {
    if (Result<ClusterSpec> spec = ClusterSpecByName(name); !spec.ok()) {
      std::fprintf(stderr, "--deployments: %s\n", spec.status().ToString().c_str());
      return 2;
    }
  }

  ServiceEngineOptions options;
  options.worker_threads = flags.workers;
  options.max_queue_weight = flags.queue_weight;
  options.weights.search = flags.search_weight;
  // One shared pool drives stage 1 (emulation), stage 3 (estimation) and the
  // stage-4 component replays of every deployment's pipeline.
  options.pipeline.context = ExecutionContext::Create(flags.execution_threads);
  options.pipeline.enable_sim_cache = flags.sim_cache;
  options.trace_dir = flags.trace_out;

  // Durable fleet state: open (and repair) the journal BEFORE building the
  // engine, because its checkpoint is the preferred warm-start source.
  std::unique_ptr<FleetJournal> journal;
  if (!flags.state_dir.empty()) {
    FleetJournalOptions journal_options;
    journal_options.checkpoint_every = std::max<uint64_t>(1, flags.checkpoint_every);
    journal = std::make_unique<FleetJournal>(flags.state_dir, journal_options);
    if (const Status opened = journal->Open(); !opened.ok()) {
      std::fprintf(stderr, "--state_dir: %s\n", opened.ToString().c_str());
      return 2;
    }
    const FleetRecoveryPlan& plan = journal->plan();
    std::fprintf(stderr,
                 "maya_serve: state dir %s (%s, %zu journal record(s) to replay%s)\n",
                 flags.state_dir.c_str(),
                 plan.has_checkpoint ? plan.checkpoint_dir.c_str() : "no checkpoint",
                 plan.replay.size(),
                 plan.torn_records_dropped > 0 ? ", torn tail repaired" : "");
  }

  std::unique_ptr<ServiceEngine> engine;
  ArtifactStore store(flags.artifacts.empty() ? "." : flags.artifacts);
  if (journal != nullptr && journal->plan().has_checkpoint) {
    // Checkpoint warm start: the bundle snapshots the fleet as of the
    // checkpointed journal seq; the tail replay below brings it current.
    const ArtifactStore checkpoint(journal->plan().checkpoint_dir);
    Result<std::unique_ptr<ServiceEngine>> loaded =
        ServiceEngine::FromArtifacts(*cluster, checkpoint, options);
    if (loaded.ok()) {
      engine = *std::move(loaded);
      std::fprintf(stderr, "maya_serve: restored %zu deployment(s) from checkpoint\n",
                   engine->registry().Registered().size());
    } else {
      // Externally damaged checkpoint: degrade to cold start + tail replay
      // (mutations compacted into the checkpoint cannot be recovered, but
      // the server still comes up) rather than refusing to serve.
      std::fprintf(stderr, "maya_serve: checkpoint unusable (%s); cold start + replay\n",
                   loaded.status().ToString().c_str());
    }
  }
  if (engine == nullptr && !flags.artifacts.empty() && store.Exists()) {
    Result<std::unique_ptr<ServiceEngine>> loaded =
        ServiceEngine::FromArtifacts(*cluster, store, options);
    if (loaded.ok()) {
      engine = *std::move(loaded);
      std::fprintf(
          stderr, "maya_serve: warm start from %s (%zu deployments, %llu cached estimates)\n",
          flags.artifacts.c_str(), engine->registry().Registered().size(),
          static_cast<unsigned long long>(engine->pipeline().KernelCacheStats().entries +
                                          engine->pipeline().CollectiveCacheStats().entries));
    } else {
      // A corrupt/incompatible bundle degrades to a cold start instead of
      // refusing to serve.
      std::fprintf(stderr, "maya_serve: artifact bundle unusable (%s); falling back to cold start\n",
                   loaded.status().ToString().c_str());
    }
  }
  if (engine == nullptr) {
    std::fprintf(stderr, "maya_serve: cold start, training estimators (%s sweep)...\n",
                 flags.sweep.c_str());
    GroundTruthExecutor profiling_hardware(*cluster, /*seed=*/0x9f0f);
    EstimatorBank bank = TrainEstimators(*cluster, profiling_hardware, *sweep);
    Result<std::unique_ptr<ServiceEngine>> created =
        ServiceEngine::Create(*cluster, std::move(bank), options);
    if (!created.ok()) {
      std::fprintf(stderr, "maya_serve: %s\n", created.status().ToString().c_str());
      return 2;
    }
    engine = *std::move(created);
  }
  // Requested deployments missing from the engine (cold start: all of them;
  // warm start: any the bundle did not carry) train their own per-arch bank.
  for (const std::string& name : extra_deployments) {
    if (engine->registry().IsResident(name)) {
      continue;  // restored from the bundle
    }
    const ClusterSpec spec = *ClusterSpecByName(name);
    std::fprintf(stderr, "maya_serve: training %s bank for deployment '%s'...\n",
                 GpuArchName(spec.gpu.arch), name.c_str());
    GroundTruthExecutor deployment_hardware(spec, /*seed=*/0x9f0f);
    Result<std::shared_ptr<const Deployment>> added = engine->AddDeployment(
        name, spec, TrainEstimators(spec, deployment_hardware, *sweep));
    if (!added.ok()) {
      std::fprintf(stderr, "maya_serve: %s\n", added.status().ToString().c_str());
      return 2;
    }
  }

  // Per-deployment usage counters for checkpoint/save bundles, so a restored
  // server's stats continue instead of resetting.
  const auto collect_usage = [&engine] {
    std::map<std::string, DeploymentUsage> usage;
    const ServiceStats stats = engine->stats();
    for (const DeploymentStats& deployment : stats.per_deployment) {
      DeploymentUsage& entry = usage[deployment.name];
      entry.stage_totals = deployment.stage_totals;
      entry.timed_requests = deployment.timed_requests;
    }
    return usage;
  };

  if (journal != nullptr) {
    // Replay the journal tail through the normal admin path — the journal is
    // not attached yet, so replayed mutations are not re-journaled. Replay
    // is idempotent: a record the checkpoint already reflects (the
    // checkpoint raced an unjournaled registration) is skipped.
    uint64_t replayed = 0;
    for (const FleetJournalRecord& record : journal->plan().replay) {
      ServiceRequest request;
      if (record.op == FleetJournalRecord::Op::kAdd) {
        if (engine->registry().IsResident(record.name)) {
          continue;
        }
        AddDeploymentPayload add;
        add.name = record.name;
        add.cluster = record.cluster;
        add.sweep = record.sweep;
        add.bundle_dir = record.bundle_dir;
        request.payload = std::move(add);
        std::fprintf(stderr, "maya_serve: replaying add '%s' (%s)...\n",
                     record.name.c_str(),
                     record.bundle_dir.empty() ? "cold train" : "bundle restore");
      } else {
        if (!engine->registry().IsResident(record.name)) {
          continue;
        }
        request.payload = RemoveDeploymentPayload{record.name};
      }
      const ServiceResponse response = engine->Submit(std::move(request)).get();
      if (!response.ok) {
        // A record that no longer applies (its bundle was deleted, say)
        // degrades to a warning: the rest of the fleet still recovers.
        std::fprintf(stderr, "maya_serve: journal replay of '%s' failed: %s\n",
                     record.name.c_str(), response.error.c_str());
        continue;
      }
      ++replayed;
    }
    engine->AttachJournal(journal.get());
    if (replayed > 0) {
      std::fprintf(stderr, "maya_serve: replayed %llu journal record(s)\n",
                   static_cast<unsigned long long>(replayed));
    }
    // A long replayed tail means the journal is due for compaction: take the
    // checkpoint now so the NEXT restart is cheap.
    if (journal->CheckpointDue()) {
      if (const Status checkpointed = journal->Checkpoint(engine->registry(), collect_usage());
          !checkpointed.ok()) {
        std::fprintf(stderr, "maya_serve: post-recovery checkpoint failed: %s\n",
                     checkpointed.ToString().c_str());
      }
    }
  }
  std::fprintf(stderr,
               "maya_serve: serving %s with %d workers (queue weight bound %.0f, "
               "%zu registered deployments)\n",
               cluster->ToString().c_str(), flags.workers, flags.queue_weight,
               engine->registry().Registered().size());

  // Graceful-drain signal: no SA_RESTART, so a SIGTERM interrupts the
  // blocking stdin read below instead of being deferred to the next line.
  struct sigaction drain_action;
  std::memset(&drain_action, 0, sizeof(drain_action));
  drain_action.sa_handler = HandleSigterm;
  sigemptyset(&drain_action.sa_mask);
  drain_action.sa_flags = 0;
  sigaction(SIGTERM, &drain_action, nullptr);

  // Responses print in submission order: a writer drains futures FIFO while
  // workers execute concurrently behind them.
  std::deque<std::future<ServiceResponse>> inflight;
  auto drain_ready = [&inflight](bool block) {
    while (!inflight.empty()) {
      if (!block && inflight.front().wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        return;
      }
      std::printf("%s\n", SerializeServiceResponse(inflight.front().get()).c_str());
      std::fflush(stdout);
      inflight.pop_front();
    }
  };

  std::unique_ptr<TcpServer> server;
  if (!flags.listen.empty()) {
    TcpServerOptions net;
    net.host = listen_host;
    net.port = listen_port;
    server = std::make_unique<TcpServer>(engine.get(), net);
    if (const Status started = server->Start(); !started.ok()) {
      std::fprintf(stderr, "--listen: %s\n", started.ToString().c_str());
      return 2;
    }
    // Announced on stderr (with the resolved port) so wrappers using
    // --listen=HOST:0 can discover the endpoint.
    std::fprintf(stderr, "maya_serve: listening on %s:%d\n", listen_host.c_str(),
                 server->port());
    while (!g_sigterm) {
      pause();  // SIGTERM (no SA_RESTART) interrupts
    }
    std::fprintf(stderr, "maya_serve: SIGTERM, draining...\n");
    // Connection-level drain first (stop accepting, answer and flush
    // in-flight frames), then the engine-level drain below is a formality.
    server->Drain();
  }

  std::string line;
  while (server == nullptr && !g_sigterm && std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    if (line == "shutdown") {
      break;
    }
    Result<ServiceRequest> request = ParseServiceRequest(line);
    if (!request.ok()) {
      const ServiceResponse error = ParseFailureResponse(line, request.status());
      drain_ready(/*block=*/true);  // keep ordering even for parse failures
      std::printf("%s\n", SerializeServiceResponse(error).c_str());
      std::fflush(stdout);
      continue;
    }
    const ServiceRequestKind kind = request->kind();
    if (kind == ServiceRequestKind::kMetrics || kind == ServiceRequestKind::kDumpTrace) {
      // Read-your-writes on one stream: these answer synchronously inside
      // Submit, so settle every earlier pipelined request first — a client
      // that sent predict-then-metrics sees its predict in the snapshot.
      drain_ready(/*block=*/true);
    }
    inflight.push_back(engine->Submit(*std::move(request)));
    if (kind == ServiceRequestKind::kMetrics && !flags.metrics_out.empty()) {
      // "metrics" answers synchronously, so the exposition written here is at
      // least as fresh as the response the client is about to read.
      if (const Status written = MetricsExporter(*engine).WriteToFile(flags.metrics_out);
          !written.ok()) {
        std::fprintf(stderr, "maya_serve: --metrics_out write failed: %s\n",
                     written.ToString().c_str());
      }
    }
    drain_ready(/*block=*/false);
  }
  if (server == nullptr && g_sigterm) {
    std::fprintf(stderr, "maya_serve: SIGTERM, draining...\n");
  }
  // Graceful lifecycle: stop admitting, let queued + in-flight work finish
  // and answer, THEN flush artifacts over a quiet engine and shut down.
  engine->Drain();
  drain_ready(/*block=*/true);

  if (!flags.metrics_out.empty()) {
    // Final exposition over the drained engine: every completed request is in.
    if (const Status written = MetricsExporter(*engine).WriteToFile(flags.metrics_out);
        !written.ok()) {
      std::fprintf(stderr, "maya_serve: --metrics_out write failed: %s\n",
                   written.ToString().c_str());
    } else {
      std::fprintf(stderr, "maya_serve: wrote metrics exposition to %s\n",
                   flags.metrics_out.c_str());
    }
  }

  if (journal != nullptr) {
    // Final checkpoint over the drained fleet: the next start replays nothing.
    // Failure is advisory — the journal alone still recovers the fleet.
    if (const Status checkpointed = journal->Checkpoint(engine->registry(), collect_usage());
        !checkpointed.ok()) {
      std::fprintf(stderr, "maya_serve: shutdown checkpoint failed: %s\n",
                   checkpointed.ToString().c_str());
    }
  }

  if (flags.save_artifacts && !flags.artifacts.empty()) {
    // Persist cumulative per-deployment stage totals alongside the caches so
    // a restarted server's stats continue instead of resetting.
    const Status saved = store.SaveRegistry(engine->registry(), collect_usage());
    if (!saved.ok()) {
      std::fprintf(stderr, "failed to save artifact bundle: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "maya_serve: saved v2 artifact bundle (%zu deployments) to %s\n",
                 engine->registry().Registered().size(), flags.artifacts.c_str());
  }
  if (server != nullptr) {
    // The engine drained above, so no response callbacks are outstanding;
    // Stop() just joins the event loop.
    server->Stop();
  }
  engine->Shutdown();
  return 0;
}
