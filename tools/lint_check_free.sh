#!/usr/bin/env sh
# Fails if an aborting CHECK macro appears in a request-reachable translation
# unit of the serving stack. Every status a deserialized ServiceRequest can
# provoke must propagate as Status/Result and surface as a typed wire error
# (INVALID_REQUEST / INTERNAL_ERROR) — a CHECK here turns one poisoned
# request into a fleet-wide abort.
#
# DCHECK (debug-only, internal-invariant) is allowed: the pattern requires
# the character before CHECK to not be part of a longer identifier.
#
# Usage: tools/lint_check_free.sh  (from the repository root)
set -eu

PATTERN='(^|[^A-Z_])CHECK(_[A-Z]+)?\('

# The request-reachable surface: everything a deserialized ServiceRequest
# flows through, from parse to response. Extend this list when new TUs join
# the request path.
FILES="
src/service/service_engine.cc
src/service/service_engine.h
src/service/protocol.cc
src/service/protocol.h
src/service/artifact_store.cc
src/service/artifact_store.h
src/service/service_client.cc
src/service/service_client.h
src/core/pipeline.cc
src/core/pipeline.h
src/search/search_driver.cc
src/search/search_driver.h
src/search/searchers.cc
src/search/searchers.h
src/dlf/train_config.cc
src/dlf/train_config.h
src/dlf/model_config.cc
src/dlf/model_config.h
src/common/fault_injection.cc
src/common/fault_injection.h
src/common/telemetry.cc
src/common/telemetry.h
src/service/metrics_exporter.cc
src/service/metrics_exporter.h
src/service/bundle_merge.cc
src/service/bundle_merge.h
src/net/frame_decoder.cc
src/net/frame_decoder.h
src/net/tcp_server.cc
src/net/tcp_server.h
src/net/tcp_client.cc
src/net/tcp_client.h
src/service/fleet_journal.cc
src/service/fleet_journal.h
src/common/cancellation.h
"

status=0
for file in $FILES; do
  if [ ! -f "$file" ]; then
    echo "lint_check_free: missing file $file (update the list?)" >&2
    status=1
    continue
  fi
  if grep -nE "$PATTERN" "$file"; then
    echo "lint_check_free: $file: CHECK aborts the whole server on a bad" >&2
    echo "  request. Return a Status/Result instead (or DCHECK a genuine" >&2
    echo "  internal invariant)." >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "lint_check_free: OK — no aborting CHECK in request-reachable TUs"
fi
exit "$status"
